//! Workspace-level facade used only to host cross-crate integration tests and examples.
