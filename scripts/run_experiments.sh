#!/bin/bash
# Regenerates every table and figure of the paper into results/.
# XPE_SCALE=1.0 targets the original corpus sizes; 0.1 (the default here)
# keeps the full sweep in the minutes range.
set -eo pipefail
cd "$(dirname "$0")/.."
export XPE_SCALE="${XPE_SCALE:-0.1}" XPE_ATTEMPTS="${XPE_ATTEMPTS:-4000}" XPE_SEED="${XPE_SEED:-42}"
mkdir -p results
for bin in table1 table2 table3 table4 table5 fig9 fig10 fig11 fig12 fig13 ablation markov_comparison error_profile; do
  echo "=== running $bin (scale $XPE_SCALE) ==="
  cargo run -q --release -p xpe-bench --bin "$bin" | tee "results/$bin.txt"
done
echo "all experiments done; outputs in results/"
