#!/usr/bin/env bash
# Perf-floor smoke check over the bench_estimation snapshot.
#
# Reads results/BENCH_estimation.json (or $1) and fails if the XMark
# serial throughput of any kernel row falls below a floor, or if the
# snapshot is structurally wrong (missing a kernel's rows — e.g. a
# regression that silently drops the bitmap kernel from the sweep).
#
# The floor is deliberately conservative: CI runs at XPE_SCALE=0.01 on
# shared runners whose wall clock varies several-fold, so this catches
# order-of-magnitude regressions (an accidentally quadratic kernel, a
# cache that stopped memoizing), not percent-level drift. Local runs at
# scale 0.03 sustain ~65–90k q/s on XMark; the default floor is 8k.
# Override with XPE_PERF_FLOOR_XMARK_QPS.
set -euo pipefail

snapshot="${1:-results/BENCH_estimation.json}"
floor="${XPE_PERF_FLOOR_XMARK_QPS:-8000}"

if [[ ! -f "$snapshot" ]]; then
    echo "perf floor: snapshot $snapshot not found" >&2
    exit 1
fi

SNAPSHOT="$snapshot" FLOOR="$floor" python3 - <<'EOF'
import json
import os
import sys

snapshot = os.environ["SNAPSHOT"]
floor = float(os.environ["FLOOR"])
with open(snapshot) as f:
    data = json.load(f)

rows = data.get("datasets", [])
kernels = {r.get("kernel") for r in rows}
for expected in ("indexed", "bitmap"):
    if expected not in kernels:
        sys.exit(f"perf floor: no '{expected}' kernel rows in {snapshot}")

failures = []
for r in rows:
    if r.get("dataset") != "XMark":
        continue
    qps = float(r["serial_qps"])
    tag = f"XMark[{r['kernel']}]"
    print(f"perf floor: {tag} serial {qps:.0f} q/s (floor {floor:.0f})")
    if qps < floor:
        failures.append(f"{tag} serial {qps:.0f} q/s < floor {floor:.0f}")

if not any(r.get("dataset") == "XMark" for r in rows):
    sys.exit(f"perf floor: no XMark rows in {snapshot}")
if failures:
    sys.exit("perf floor FAILED: " + "; ".join(failures))
print("perf floor: ok")
EOF
