#!/usr/bin/env bash
# Perf-floor smoke check over the bench_estimation snapshot.
#
# Reads results/BENCH_estimation.json (or $1) and fails if the XMark
# serial throughput of any kernel row falls below a floor, or if the
# snapshot is structurally wrong (missing a kernel's rows — e.g. a
# regression that silently drops the bitmap kernel from the sweep).
#
# The floor is deliberately conservative: CI runs at XPE_SCALE=0.01 on
# shared runners whose wall clock varies several-fold, so this catches
# order-of-magnitude regressions (an accidentally quadratic kernel, a
# cache that stopped memoizing), not percent-level drift. Local runs at
# scale 0.03 sustain ~75–100k q/s on XMark; the default floor is 8k.
# Override with XPE_PERF_FLOOR_XMARK_QPS.
#
# A second, ratio-based floor guards the screen phase: after prepared
# plans and the flat per-estimator memos, XMark screen time sits near
# 32–40% of the instrumented join total (plan+screen+fixpoint+finalize);
# before them it was 54–57%. Phase *shares* are robust to runner speed,
# so a share above the cap means the screen phase re-grew per-query
# constants (string lookups, lock round-trips, allocations) — exactly
# the regression the prepared-plan work removed. Override with
# XPE_PERF_MAX_SCREEN_SHARE; snapshots predating the plan lap (no
# plan_ms field) are still accepted, with plan time read as zero.
#
# A third floor guards multi-core scaling via the snapshot's `scaling`
# array (steady-state batch throughput per worker count): on runners
# with ≥2 cores, every bitmap dataset's 2-effective-worker row must
# reach XPE_PERF_MIN_SPEEDUP (default 1.3) over its one-worker row,
# and the 1→2 curve must be monotone non-decreasing up to
# XPE_PERF_SCALING_SLACK (default 0.9 — i.e. the 2-worker row may not
# fall below 0.9× the 1-worker row even on a noisy runner; the speedup
# floor is the real gate). Like the serial floor this is a regression
# tripwire, not a benchmark: it catches the batch path re-growing a
# shared lock on its warm path, not percent-level drift. Snapshots
# without a `scaling` array fail — the array is part of the format.
#
# The script also understands the serve snapshot
# (results/BENCH_serve.json, recognized by a top-level `qps` with no
# `datasets` array): it requires `qps` and the `p50_ms`/`p95_ms`/
# `p99_ms` latency fields to be present and finite, and gates `qps`
# against XPE_PERF_FLOOR_SERVE_QPS (default 200 — again an
# order-of-magnitude tripwire: a 2-core local run at scale 0.05
# sustains >2000 q/s through the full socket path under a hostile mix).
#
# Serve snapshots also carry per-mix `traffic` rows from the
# production-shaped replay (uniform cold, Zipf warm, Zipf warm with the
# estimate cache off). The warm Zipf mix must reach
# XPE_PERF_MIN_WARM_SKEW_SPEEDUP (default 1.05) times the uniform cold
# mix's q/s: skewed steady-state traffic rides the full-query estimate
# cache, so falling to parity with a cold uniform sweep means the
# skew-aware fast path stopped being one. The default is conservative
# because the serve path is socket-bound on small CI runners (local
# 2-core runs measure 1.3–1.5x); the cache's raw effect is gated at
# >=2x engine-level in the estimation snapshot's own traffic rows,
# where no socket hides it. Snapshots without `traffic` rows fail —
# the array is part of the format.
set -euo pipefail

snapshot="${1:-results/BENCH_estimation.json}"
floor="${XPE_PERF_FLOOR_XMARK_QPS:-8000}"
max_screen_share="${XPE_PERF_MAX_SCREEN_SHARE:-0.48}"
min_speedup="${XPE_PERF_MIN_SPEEDUP:-1.3}"
scaling_slack="${XPE_PERF_SCALING_SLACK:-0.9}"
serve_floor="${XPE_PERF_FLOOR_SERVE_QPS:-200}"
min_warm_skew="${XPE_PERF_MIN_WARM_SKEW_SPEEDUP:-1.05}"

if [[ ! -f "$snapshot" ]]; then
    echo "perf floor: snapshot $snapshot not found" >&2
    exit 1
fi

SNAPSHOT="$snapshot" FLOOR="$floor" MAX_SCREEN_SHARE="$max_screen_share" \
MIN_SPEEDUP="$min_speedup" SCALING_SLACK="$scaling_slack" \
SERVE_FLOOR="$serve_floor" MIN_WARM_SKEW="$min_warm_skew" python3 - <<'EOF'
import json
import math
import os
import sys

snapshot = os.environ["SNAPSHOT"]
floor = float(os.environ["FLOOR"])
max_screen_share = float(os.environ["MAX_SCREEN_SHARE"])
min_speedup = float(os.environ["MIN_SPEEDUP"])
scaling_slack = float(os.environ["SCALING_SLACK"])
serve_floor = float(os.environ["SERVE_FLOOR"])
min_warm_skew = float(os.environ["MIN_WARM_SKEW"])
with open(snapshot) as f:
    data = json.load(f)

# Serve snapshot: a flat object with a top-level `qps` and latency
# percentiles instead of per-dataset rows.
if "qps" in data and "datasets" not in data:
    failures = []
    for field in ("qps", "p50_ms", "p95_ms", "p99_ms"):
        if field not in data:
            sys.exit(f"perf floor: serve snapshot {snapshot} lacks '{field}'")
        if not math.isfinite(float(data[field])):
            failures.append(f"{field} is not finite: {data[field]}")
    qps = float(data["qps"])
    print(
        f"perf floor: serve {qps:.0f} q/s (floor {serve_floor:.0f}), "
        f"p50 {float(data['p50_ms']):.3f} ms, p95 {float(data['p95_ms']):.3f} ms, "
        f"p99 {float(data['p99_ms']):.3f} ms"
    )
    if qps < serve_floor:
        failures.append(f"serve {qps:.0f} q/s < floor {serve_floor:.0f}")

    # Per-mix traffic rows: warm Zipf traffic must beat the uniform
    # cold baseline by the skew floor. Rates and latencies must parse.
    traffic = data.get("traffic")
    if traffic is None:
        sys.exit(f"perf floor: no 'traffic' rows in serve snapshot {snapshot}")
    by_mix = {}
    for row in traffic:
        for field in ("qps", "p50_ms", "p99_ms", "estimate_cache_hit_rate"):
            if not math.isfinite(float(row.get(field, float("nan")))):
                failures.append(f"traffic[{row.get('mix')}].{field} is not finite")
        by_mix[row.get("mix")] = row
    for mix in ("uniform_cold", "zipf_warm", "zipf_warm_nocache"):
        if mix not in by_mix:
            failures.append(f"traffic rows lack mix '{mix}'")
    if "uniform_cold" in by_mix and "zipf_warm" in by_mix:
        skew = float(by_mix["zipf_warm"]["qps"]) / float(by_mix["uniform_cold"]["qps"])
        print(
            f"perf floor: serve warm-skew speedup {skew:.2f}x "
            f"(floor {min_warm_skew:.2f}x), warm estimate-cache hit rate "
            f"{float(by_mix['zipf_warm']['estimate_cache_hit_rate']):.1%}"
        )
        if skew < min_warm_skew:
            failures.append(
                f"warm zipf {skew:.2f}x of uniform cold < floor {min_warm_skew:.2f}x"
            )
    if failures:
        sys.exit("perf floor FAILED: " + "; ".join(failures))
    print("perf floor: ok")
    sys.exit(0)

rows = data.get("datasets", [])
kernels = {r.get("kernel") for r in rows}
for expected in ("indexed", "bitmap"):
    if expected not in kernels:
        sys.exit(f"perf floor: no '{expected}' kernel rows in {snapshot}")

failures = []
for r in rows:
    if r.get("dataset") != "XMark":
        continue
    qps = float(r["serial_qps"])
    tag = f"XMark[{r['kernel']}]"
    print(f"perf floor: {tag} serial {qps:.0f} q/s (floor {floor:.0f})")
    if qps < floor:
        failures.append(f"{tag} serial {qps:.0f} q/s < floor {floor:.0f}")

    screen = float(r["screen_ms"])
    total = screen + sum(
        float(r.get(k, 0.0)) for k in ("plan_ms", "fixpoint_ms", "finalize_ms")
    )
    if total > 0:
        share = screen / total
        print(
            f"perf floor: {tag} screen share {share:.1%} "
            f"(cap {max_screen_share:.1%})"
        )
        if share > max_screen_share:
            failures.append(
                f"{tag} screen share {share:.1%} > cap {max_screen_share:.1%}"
            )

if not any(r.get("dataset") == "XMark" for r in rows):
    sys.exit(f"perf floor: no XMark rows in {snapshot}")

# Scaling floor: the `scaling` array must exist, and on multi-core
# runners every bitmap dataset with both a 1- and a 2-effective-worker
# row must scale. Rows are steady-state (warm engine), so the speedup
# here is pure parallelism, not cache warm-up.
scaling = data.get("scaling")
if scaling is None:
    sys.exit(f"perf floor: no 'scaling' array in {snapshot}")
cores = int(data.get("cores", 1))
# Only the two sizable workloads: SSPlays is small enough that worker
# spawn overhead can mask real scaling on a smoke-scale run.
by_curve = {}
for r in scaling:
    if r.get("kernel") != "bitmap" or r.get("dataset") not in ("DBLP", "XMark"):
        continue
    # `threads: 2` and `threads: 0` (auto) collapse to the same
    # effective worker count on a 2-core runner — they are the same
    # configuration measured twice, so keep the best draw, matching the
    # bench's own best-of-REPS policy.
    curve = by_curve.setdefault(r["dataset"], {})
    eff = int(r["effective_threads"])
    curve[eff] = max(curve.get(eff, 0.0), float(r["qps"]))
if cores >= 2:
    for dataset, curve in sorted(by_curve.items()):
        if 1 not in curve or 2 not in curve:
            continue
        speedup = curve[2] / curve[1]
        tag = f"{dataset}[bitmap]"
        print(
            f"perf floor: {tag} scaling 1->2 workers {speedup:.2f}x "
            f"(floor {min_speedup:.2f}x, slack {scaling_slack:.2f})"
        )
        if speedup < scaling_slack:
            failures.append(
                f"{tag} 2-worker throughput {speedup:.2f}x of 1-worker "
                f"(not monotone within slack {scaling_slack:.2f})"
            )
        elif speedup < min_speedup:
            failures.append(
                f"{tag} scaling {speedup:.2f}x < floor {min_speedup:.2f}x"
            )

if failures:
    sys.exit("perf floor FAILED: " + "; ".join(failures))
print("perf floor: ok")
EOF
