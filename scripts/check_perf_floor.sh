#!/usr/bin/env bash
# Perf-floor smoke check over the bench_estimation snapshot.
#
# Reads results/BENCH_estimation.json (or $1) and fails if the XMark
# serial throughput of any kernel row falls below a floor, or if the
# snapshot is structurally wrong (missing a kernel's rows — e.g. a
# regression that silently drops the bitmap kernel from the sweep).
#
# The floor is deliberately conservative: CI runs at XPE_SCALE=0.01 on
# shared runners whose wall clock varies several-fold, so this catches
# order-of-magnitude regressions (an accidentally quadratic kernel, a
# cache that stopped memoizing), not percent-level drift. Local runs at
# scale 0.03 sustain ~75–100k q/s on XMark; the default floor is 8k.
# Override with XPE_PERF_FLOOR_XMARK_QPS.
#
# A second, ratio-based floor guards the screen phase: after prepared
# plans and the flat per-estimator memos, XMark screen time sits near
# 32–40% of the instrumented join total (plan+screen+fixpoint+finalize);
# before them it was 54–57%. Phase *shares* are robust to runner speed,
# so a share above the cap means the screen phase re-grew per-query
# constants (string lookups, lock round-trips, allocations) — exactly
# the regression the prepared-plan work removed. Override with
# XPE_PERF_MAX_SCREEN_SHARE; snapshots predating the plan lap (no
# plan_ms field) are still accepted, with plan time read as zero.
set -euo pipefail

snapshot="${1:-results/BENCH_estimation.json}"
floor="${XPE_PERF_FLOOR_XMARK_QPS:-8000}"
max_screen_share="${XPE_PERF_MAX_SCREEN_SHARE:-0.48}"

if [[ ! -f "$snapshot" ]]; then
    echo "perf floor: snapshot $snapshot not found" >&2
    exit 1
fi

SNAPSHOT="$snapshot" FLOOR="$floor" MAX_SCREEN_SHARE="$max_screen_share" python3 - <<'EOF'
import json
import os
import sys

snapshot = os.environ["SNAPSHOT"]
floor = float(os.environ["FLOOR"])
max_screen_share = float(os.environ["MAX_SCREEN_SHARE"])
with open(snapshot) as f:
    data = json.load(f)

rows = data.get("datasets", [])
kernels = {r.get("kernel") for r in rows}
for expected in ("indexed", "bitmap"):
    if expected not in kernels:
        sys.exit(f"perf floor: no '{expected}' kernel rows in {snapshot}")

failures = []
for r in rows:
    if r.get("dataset") != "XMark":
        continue
    qps = float(r["serial_qps"])
    tag = f"XMark[{r['kernel']}]"
    print(f"perf floor: {tag} serial {qps:.0f} q/s (floor {floor:.0f})")
    if qps < floor:
        failures.append(f"{tag} serial {qps:.0f} q/s < floor {floor:.0f}")

    screen = float(r["screen_ms"])
    total = screen + sum(
        float(r.get(k, 0.0)) for k in ("plan_ms", "fixpoint_ms", "finalize_ms")
    )
    if total > 0:
        share = screen / total
        print(
            f"perf floor: {tag} screen share {share:.1%} "
            f"(cap {max_screen_share:.1%})"
        )
        if share > max_screen_share:
            failures.append(
                f"{tag} screen share {share:.1%} > cap {max_screen_share:.1%}"
            )

if not any(r.get("dataset") == "XMark" for r in rows):
    sys.exit(f"perf floor: no XMark rows in {snapshot}")
if failures:
    sys.exit("perf floor FAILED: " + "; ".join(failures))
print("perf floor: ok")
EOF
