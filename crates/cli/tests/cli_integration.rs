//! End-to-end tests of the `xpe` binary: generate → stats → build →
//! estimate → exact, plus error handling.

use std::path::PathBuf;
use std::process::{Command, Output};

fn xpe(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xpe"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xpe-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline() {
    let dir = tmpdir("pipeline");
    let xml = dir.join("d.xml");
    let xps = dir.join("d.xps");

    // generate
    let o = xpe(&[
        "generate",
        "ssplays",
        "--scale",
        "0.01",
        "--seed",
        "5",
        "-o",
        xml.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("elements written"));

    // stats
    let o = xpe(&["stats", xml.to_str().unwrap()]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("distinct paths"));

    // build
    let o = xpe(&[
        "build",
        xml.to_str().unwrap(),
        "-o",
        xps.to_str().unwrap(),
        "--p-variance",
        "0",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));

    // estimate vs exact must agree for a simple query at variance 0.
    let est = xpe(&["estimate", xps.to_str().unwrap(), "//ACT/SCENE"]);
    let exa = xpe(&["exact", xml.to_str().unwrap(), "//ACT/SCENE"]);
    assert!(est.status.success() && exa.status.success());
    let est_val: f64 = stdout(&est)
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let exa_val: f64 = stdout(&exa)
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(est_val, exa_val);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kernel_flag_selects_without_changing_estimates() {
    let dir = tmpdir("kernel");
    let xml = dir.join("d.xml");
    let xps = dir.join("d.xps");
    let o = xpe(&[
        "generate",
        "ssplays",
        "--scale",
        "0.01",
        "--seed",
        "9",
        "-o",
        xml.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let o = xpe(&["build", xml.to_str().unwrap(), "-o", xps.to_str().unwrap()]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));

    let queries = ["//ACT/SCENE", "//PLAY//SPEECH", "//SCENE[/TITLE]/SPEECH"];
    let mut outputs = Vec::new();
    for kernel in ["naive", "indexed", "bitmap"] {
        let mut args = vec!["estimate", xps.to_str().unwrap(), "--kernel", kernel];
        args.extend(queries);
        let o = xpe(&args);
        assert!(
            o.status.success(),
            "kernel {kernel}: {}",
            String::from_utf8_lossy(&o.stderr)
        );
        outputs.push(stdout(&o));
    }
    assert_eq!(outputs[0], outputs[1], "naive vs indexed");
    assert_eq!(outputs[0], outputs[2], "naive vs bitmap");

    // An unknown kernel name is a clean usage error.
    let o = xpe(&[
        "estimate",
        xps.to_str().unwrap(),
        "--kernel",
        "warp",
        "//ACT",
    ]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("--kernel"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let o = xpe(&[]);
    assert!(o.status.success(), "bare invocation prints usage");
    assert!(String::from_utf8_lossy(&o.stderr).contains("usage"));

    let o = xpe(&["frobnicate"]);
    assert!(!o.status.success());

    let o = xpe(&["stats", "/nonexistent/file.xml"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("error"));

    let o = xpe(&["generate", "nosuchdataset", "-o", "/tmp/x.xml"]);
    assert!(!o.status.success());

    let o = xpe(&["build", "/nonexistent.xml", "-o", "/tmp/x.xps"]);
    assert!(!o.status.success());
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// Every failure mode must produce a one-line diagnostic and a nonzero
/// exit — never a panic backtrace that a calling script can't parse.
fn assert_clean_failure(o: &Output, needle: &str) {
    assert!(!o.status.success(), "expected a nonzero exit");
    let err = stderr(o);
    assert!(
        err.contains("error") && err.contains(needle),
        "stderr should mention '{needle}': {err}"
    );
    assert!(
        !err.contains("panicked") && !err.contains("RUST_BACKTRACE"),
        "diagnostic must not be a panic: {err}"
    );
}

#[test]
fn estimate_fails_cleanly_on_bad_queries() {
    let dir = tmpdir("badq");
    let xml = dir.join("d.xml");
    let xps = dir.join("d.xps");
    xpe(&[
        "generate",
        "ssplays",
        "--scale",
        "0.01",
        "-o",
        xml.to_str().unwrap(),
    ]);
    xpe(&["build", xml.to_str().unwrap(), "-o", xps.to_str().unwrap()]);

    // A malformed query aborts the invocation: diagnostic on stderr,
    // nonzero exit, and no estimate printed for the valid queries either
    // (partial output must not look like success).
    let o = xpe(&["estimate", xps.to_str().unwrap(), "//ACT", "not-a-query["]);
    assert_clean_failure(&o, "not-a-query[");
    assert!(stdout(&o).is_empty(), "no partial output: {}", stdout(&o));

    let o = xpe(&["exact", xml.to_str().unwrap(), "not-a-query["]);
    assert_clean_failure(&o, "not-a-query[");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn estimate_fails_cleanly_on_bad_summary_files() {
    let dir = tmpdir("badsum");
    let xml = dir.join("d.xml");
    let xps = dir.join("d.xps");
    xpe(&[
        "generate",
        "ssplays",
        "--scale",
        "0.01",
        "-o",
        xml.to_str().unwrap(),
    ]);
    xpe(&["build", xml.to_str().unwrap(), "-o", xps.to_str().unwrap()]);

    // Missing summary file.
    let o = xpe(&["estimate", dir.join("nope.xps").to_str().unwrap(), "//ACT"]);
    assert_clean_failure(&o, "nope.xps");

    // Version-mismatched summary (version field lives at byte offset 4).
    let mut bytes = std::fs::read(&xps).unwrap();
    bytes[4] = 99;
    let vers = dir.join("vers.xps");
    std::fs::write(&vers, &bytes).unwrap();
    let o = xpe(&["estimate", vers.to_str().unwrap(), "//ACT"]);
    assert_clean_failure(&o, "version");

    // Trailing garbage after a valid summary.
    let mut bytes = std::fs::read(&xps).unwrap();
    bytes.extend_from_slice(b"garbage");
    let trail = dir.join("trail.xps");
    std::fs::write(&trail, &bytes).unwrap();
    let o = xpe(&["estimate", trail.to_str().unwrap(), "//ACT"]);
    assert_clean_failure(&o, "trailing");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_fails_cleanly_on_malformed_xml() {
    let dir = tmpdir("badxml");
    let xml = dir.join("broken.xml");
    std::fs::write(&xml, "<a><b></a>").unwrap();
    let o = xpe(&[
        "build",
        xml.to_str().unwrap(),
        "-o",
        dir.join("out.xps").to_str().unwrap(),
    ]);
    assert_clean_failure(&o, "broken.xml");
    std::fs::remove_dir_all(&dir).ok();
}

/// Path into the checked-in corrupted-summary corpus (regenerate with
/// `cargo run --example gen_corrupt_corpus` at the workspace root).
fn corpus(name: &str) -> String {
    format!("{}/../../tests/corrupt/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Each checked-in corrupted summary must fail `xpe estimate` cleanly
/// with a diagnostic distinct to its corruption class — no two classes
/// may collapse into one vague message, or operators can't tell a
/// flipped bit from a short copy.
#[test]
fn corrupt_corpus_fails_with_distinct_messages() {
    // The pristine sibling proves the corpus base itself is loadable.
    let o = xpe(&["estimate", &corpus("valid.xps"), "//book/chapter"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).starts_with("5.00\t"), "{}", stdout(&o));

    for (file, needle) in [
        ("bitflip.xps", "checksum mismatch"),
        ("truncated.xps", "input truncated"),
        ("version.xps", "unsupported summary version"),
        ("trailing.xps", "trailing byte(s)"),
        // A hostile count field behind a valid checksum: the structural
        // decoder reports truncation when the promised elements are not
        // there — after a capped, not count-sized, preallocation.
        ("inflated.xps", "input truncated"),
    ] {
        let o = xpe(&["estimate", &corpus(file), "//book/chapter"]);
        assert_clean_failure(&o, needle);
        assert!(stdout(&o).is_empty(), "no estimates for {file}");
    }
}

#[test]
fn estimate_honors_limits_and_deadline_flags() {
    let dir = tmpdir("limits");
    let xml = dir.join("d.xml");
    let xps = dir.join("d.xps");
    xpe(&[
        "generate",
        "ssplays",
        "--scale",
        "0.01",
        "-o",
        xml.to_str().unwrap(),
    ]);
    xpe(&["build", xml.to_str().unwrap(), "-o", xps.to_str().unwrap()]);

    // An admitted query under a generous ceiling behaves exactly like the
    // unconstrained path: numeric estimate first, no status column.
    let o = xpe(&[
        "estimate",
        xps.to_str().unwrap(),
        "//ACT/SCENE",
        "--max-query-nodes",
        "16",
        "--deadline-ms",
        "60000",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(!out.contains('['), "no status column when all ok: {out}");
    let constrained: f64 = out.split_whitespace().next().unwrap().parse().unwrap();
    let free = xpe(&["estimate", xps.to_str().unwrap(), "//ACT/SCENE"]);
    let free_val: f64 = stdout(&free)
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(constrained, free_val, "flags must not perturb estimates");

    // A two-step query over a one-node ceiling is rejected: the line
    // still leads with the (upper-bound) number, then flags the status.
    let o = xpe(&[
        "estimate",
        xps.to_str().unwrap(),
        "//ACT/SCENE",
        "--max-query-nodes",
        "1",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("[rejected:"), "status column present: {out}");
    let bound: f64 = out.split_whitespace().next().unwrap().parse().unwrap();
    assert!(bound.is_finite() && bound >= 0.0);
    assert!(stderr(&o).contains("1 rejected"), "{}", stderr(&o));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn faults_subcommand_reports_and_writes_json() {
    let dir = tmpdir("faults");
    let json = dir.join("faults.json");
    let o = xpe(&[
        "faults",
        "--seed",
        "0xC0FFEE",
        "--cases",
        "4",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("all fault classes contained"), "{out}");
    assert!(
        out.contains("bit-flip") && out.contains("worker-panic"),
        "{out}"
    );

    let report = std::fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"tool\": \"xpe-faults\""));
    assert!(report.contains("\"total_failures\": 0"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_subcommand_reports_and_writes_json() {
    let dir = tmpdir("diff");
    let json = dir.join("report.json");
    let o = xpe(&[
        "diff",
        "--seed",
        "0xC0FFEE",
        "--cases",
        "24",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("all invariants hold"), "{out}");
    assert!(out.contains("exact-simple"));

    let report = std::fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"tool\": \"xpe-diff\""));
    assert!(report.contains("\"total_violations\": 0"));
    assert!(report.contains("\"seed\": 12648430"), "hex seed parsed");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_build_is_byte_identical_to_dom_build() {
    let dir = tmpdir("stream");
    let xml = dir.join("d.xml");

    // One generated corpus per dataset family; both build paths must
    // persist the exact same bytes.
    for (name, scale) in [("ssplays", "0.02"), ("dblp", "0.01"), ("xmark", "0.01")] {
        let o = xpe(&[
            "generate",
            name,
            "--scale",
            scale,
            "--seed",
            "9",
            "-o",
            xml.to_str().unwrap(),
        ]);
        assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));

        let dom = dir.join(format!("{name}-dom.xps"));
        let stream = dir.join(format!("{name}-stream.xps"));
        let o = xpe(&["build", xml.to_str().unwrap(), "-o", dom.to_str().unwrap()]);
        assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
        let o = xpe(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            stream.to_str().unwrap(),
            "--stream",
        ]);
        assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));

        let dom_bytes = std::fs::read(&dom).unwrap();
        let stream_bytes = std::fs::read(&stream).unwrap();
        assert_eq!(dom_bytes, stream_bytes, "{name}: streaming diverged");
    }

    std::fs::remove_dir_all(&dir).ok();
}
