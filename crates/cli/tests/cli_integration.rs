//! End-to-end tests of the `xpe` binary: generate → stats → build →
//! estimate → exact, plus error handling.

use std::path::PathBuf;
use std::process::{Command, Output};

fn xpe(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xpe"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xpe-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline() {
    let dir = tmpdir("pipeline");
    let xml = dir.join("d.xml");
    let xps = dir.join("d.xps");

    // generate
    let o = xpe(&[
        "generate",
        "ssplays",
        "--scale",
        "0.01",
        "--seed",
        "5",
        "-o",
        xml.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("elements written"));

    // stats
    let o = xpe(&["stats", xml.to_str().unwrap()]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("distinct paths"));

    // build
    let o = xpe(&[
        "build",
        xml.to_str().unwrap(),
        "-o",
        xps.to_str().unwrap(),
        "--p-variance",
        "0",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));

    // estimate vs exact must agree for a simple query at variance 0.
    let est = xpe(&["estimate", xps.to_str().unwrap(), "//ACT/SCENE"]);
    let exa = xpe(&["exact", xml.to_str().unwrap(), "//ACT/SCENE"]);
    assert!(est.status.success() && exa.status.success());
    let est_val: f64 = stdout(&est)
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let exa_val: f64 = stdout(&exa)
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(est_val, exa_val);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let o = xpe(&[]);
    assert!(o.status.success(), "bare invocation prints usage");
    assert!(String::from_utf8_lossy(&o.stderr).contains("usage"));

    let o = xpe(&["frobnicate"]);
    assert!(!o.status.success());

    let o = xpe(&["stats", "/nonexistent/file.xml"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("error"));

    let o = xpe(&["generate", "nosuchdataset", "-o", "/tmp/x.xml"]);
    assert!(!o.status.success());

    let o = xpe(&["build", "/nonexistent.xml", "-o", "/tmp/x.xps"]);
    assert!(!o.status.success());
}

#[test]
fn estimate_reports_bad_queries_without_failing() {
    let dir = tmpdir("badq");
    let xml = dir.join("d.xml");
    let xps = dir.join("d.xps");
    xpe(&[
        "generate",
        "ssplays",
        "--scale",
        "0.01",
        "-o",
        xml.to_str().unwrap(),
    ]);
    xpe(&["build", xml.to_str().unwrap(), "-o", xps.to_str().unwrap()]);
    let o = xpe(&["estimate", xps.to_str().unwrap(), "not-a-query["]);
    assert!(o.status.success(), "per-query errors are reported inline");
    assert!(stdout(&o).contains("error"));
    std::fs::remove_dir_all(&dir).ok();
}
