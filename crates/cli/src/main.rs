//! `xpe` — command-line front end for the XPath estimation system.
//!
//! ```text
//! xpe stats <file.xml>                         structural statistics
//! xpe build <file.xml> -o <summary.xps>        build + save a summary
//!     [--p-variance V] [--o-variance V] [--jobs N]
//! xpe estimate <summary.xps> <query>...        estimate selectivities
//!     [--jobs N]
//! xpe exact <file.xml> <query>...              exact selectivities
//! xpe generate <ssplays|dblp|xmark> -o <out.xml>
//!     [--scale S] [--seed N]                   synthesize a corpus
//! ```

use std::process::ExitCode;

use xpe::prelude::*;
use xpe::synopsis::Summary as Syn;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("exact") => cmd_exact(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  xpe stats <file.xml>
  xpe build <file.xml> -o <summary.xps> [--p-variance V] [--o-variance V] [--jobs N]
  xpe estimate <summary.xps> [--jobs N] <query>...
  xpe exact <file.xml> <query>...
  xpe generate <ssplays|dblp|xmark> -o <out.xml> [--scale S] [--seed N]

--jobs N parallelizes summary construction (build) or batches queries
across N workers (estimate); 0 = one worker per core, default 1.";

fn load_doc(path: &str) -> Result<Document, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_document(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// Parsed command-line flags as `(name, value)` pairs.
type Flags = Vec<(String, String)>;

/// Extracts `--flag value` pairs, returning remaining positionals.
fn split_flags(args: &[String]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_owned(), value.clone()));
        } else if a == "-o" {
            let value = it.next().ok_or("-o needs a value")?;
            flags.push(("out".to_owned(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((flags, positional))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse_flag<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag(flags, name) {
        Some(v) => v.parse().map_err(|_| format!("bad value for --{name}")),
        None => Ok(default),
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (_, pos) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("stats takes one file".into());
    };
    let doc = load_doc(path)?;
    let s = xpe::xml::stats::DocumentStats::compute(&doc);
    let lab = Labeling::compute(&doc);
    println!("elements:        {}", s.elements);
    println!("distinct tags:   {}", s.distinct_tags);
    println!("distinct paths:  {}", s.distinct_paths);
    println!("distinct pids:   {}", lab.interner.len());
    println!("max depth:       {}", s.max_depth);
    println!("avg fanout:      {:.2}", s.avg_fanout);
    println!("serialized size: {} bytes", s.serialized_bytes);
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("build takes one input file".into());
    };
    let out = flag(&flags, "out").ok_or("build requires -o <summary.xps>")?;
    let config = SummaryConfig {
        p_variance: parse_flag(&flags, "p-variance", 0.0)?,
        o_variance: parse_flag(&flags, "o-variance", 0.0)?,
        threads: parse_flag(&flags, "jobs", 1usize)?,
    };
    let doc = load_doc(path)?;
    let summary = Syn::build(&doc, config);
    let sizes = summary.sizes();
    summary
        .save_to_file(out)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "summary written to {out}: {} B path info + {} B order info \
         ({} paths, {} pids, {} tags)",
        sizes.path_total(),
        sizes.o_histograms,
        summary.encoding.len(),
        summary.pids.len(),
        summary.tags.len(),
    );
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    let [path, queries @ ..] = pos.as_slice() else {
        return Err("estimate takes a summary file and at least one query".into());
    };
    if queries.is_empty() {
        return Err("estimate needs at least one query".into());
    }
    let jobs = parse_flag(&flags, "jobs", 1usize)?;
    let summary = Syn::load_from_file(path).map_err(|e| format!("loading {path}: {e}"))?;
    let engine = EstimationEngine::new(&summary).with_threads(jobs);
    // Parse everything up front so the parseable queries run as one
    // batch; parse failures report in place without aborting the rest.
    let parsed: Vec<Result<Query, _>> = queries.iter().map(|q| parse_query(q)).collect();
    let batch: Vec<Query> = parsed
        .iter()
        .filter_map(|r| r.as_ref().ok().cloned())
        .collect();
    let mut estimates = engine.estimate_batch(&batch).into_iter();
    for (q, r) in queries.iter().zip(&parsed) {
        match r {
            Ok(_) => {
                let v = estimates.next().expect("one estimate per parsed query");
                println!("{v:.2}\t{q}");
            }
            Err(e) => println!("error: {e}\t{q}"),
        }
    }
    Ok(())
}

fn cmd_exact(args: &[String]) -> Result<(), String> {
    let (_, pos) = split_flags(args)?;
    let [path, queries @ ..] = pos.as_slice() else {
        return Err("exact takes an XML file and at least one query".into());
    };
    if queries.is_empty() {
        return Err("exact needs at least one query".into());
    }
    let doc = load_doc(path)?;
    let order = DocOrder::new(&doc);
    let eval = Evaluator::new(&doc, &order);
    for q in queries {
        match parse_query(q) {
            Ok(query) => println!("{}\t{q}", eval.selectivity(&query)),
            Err(e) => println!("error: {e}\t{q}"),
        }
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    let [name] = pos.as_slice() else {
        return Err("generate takes one dataset name".into());
    };
    let dataset = match name.as_str() {
        "ssplays" => Dataset::SSPlays,
        "dblp" => Dataset::Dblp,
        "xmark" => Dataset::XMark,
        other => return Err(format!("unknown dataset '{other}'")),
    };
    let out = flag(&flags, "out").ok_or("generate requires -o <out.xml>")?;
    let spec = DatasetSpec {
        dataset,
        scale: parse_flag(&flags, "scale", 0.01)?,
        seed: parse_flag(&flags, "seed", 42u64)?,
    };
    let doc = spec.generate();
    std::fs::write(out, xpe::xml::to_string(&doc)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("{} elements written to {out}", doc.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn split_flags_separates_pairs_and_positionals() {
        let (flags, pos) = split_flags(&args(&[
            "file.xml", "--scale", "0.5", "-o", "out.bin", "extra",
        ]))
        .unwrap();
        assert_eq!(pos, vec!["file.xml", "extra"]);
        assert_eq!(flag(&flags, "scale"), Some("0.5"));
        assert_eq!(flag(&flags, "out"), Some("out.bin"));
        assert_eq!(flag(&flags, "missing"), None);
    }

    #[test]
    fn split_flags_rejects_dangling_flag() {
        assert!(split_flags(&args(&["--scale"])).is_err());
        assert!(split_flags(&args(&["-o"])).is_err());
    }

    #[test]
    fn parse_flag_types_and_defaults() {
        let (flags, _) = split_flags(&args(&["--seed", "7", "--scale", "0.25"])).unwrap();
        assert_eq!(parse_flag(&flags, "seed", 0u64).unwrap(), 7);
        assert_eq!(parse_flag(&flags, "scale", 1.0f64).unwrap(), 0.25);
        assert_eq!(parse_flag(&flags, "absent", 42u32).unwrap(), 42);
        let (bad, _) = split_flags(&args(&["--seed", "notanumber"])).unwrap();
        assert!(parse_flag(&bad, "seed", 0u64).is_err());
    }
}
