//! `xpe` — command-line front end for the XPath estimation system.
//!
//! ```text
//! xpe stats <file.xml>                         structural statistics
//! xpe build <file.xml> -o <summary.xps>        build + save a summary
//!     [--p-variance V] [--o-variance V] [--jobs N] [--stream]
//! xpe estimate <summary.xps> <query>...        estimate selectivities
//!     [--jobs N] [--join-cache N] [--estimate-cache N]
//!     [--deadline-ms N] [--max-query-nodes N]
//! xpe exact <file.xml> <query>...              exact selectivities
//! xpe generate <ssplays|dblp|xmark> -o <out.xml>
//!     [--scale S] [--seed N]                   synthesize a corpus
//! xpe workload <ssplays|dblp|xmark> [--scale S] [--seed N]
//!     [--requests N] [--zipf S] [--templates N] [--mix A,B,C]
//!                                              print a skewed query trace
//! xpe serve <summary.xps> [--addr H:P] [--workers N] [--queue N]
//!     [--deadline-ms N] [--max-query-nodes N] [--kernel K]
//!     [--join-cache N] [--estimate-cache N]
//!     [--read-timeout-ms N] [--write-timeout-ms N]
//!     [--max-line-bytes N]                     estimation daemon
//! xpe diff [--seed N] [--cases N] [--json FILE]
//!                                              differential correctness run
//! xpe faults [--seed N] [--cases N] [--json FILE]
//!                                              fault-injection resilience run
//! ```

use std::process::ExitCode;

use xpe::prelude::*;
use xpe::synopsis::Summary as Syn;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("exact") => cmd_exact(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("workload") => cmd_workload(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  xpe stats <file.xml>
  xpe build <file.xml> -o <summary.xps> [--p-variance V] [--o-variance V]
      [--jobs N] [--stream]
  xpe estimate <summary.xps> [--jobs N] [--join-cache N] [--estimate-cache N]
      [--kernel naive|indexed|bitmap]
      [--deadline-ms N] [--max-query-nodes N] <query>...
  xpe exact <file.xml> <query>...
  xpe generate <ssplays|dblp|xmark> -o <out.xml> [--scale S] [--seed N]
  xpe workload <ssplays|dblp|xmark> [--scale S] [--seed N] [--requests N]
      [--zipf S] [--templates N] [--mix SIMPLE,BRANCH,ORDER]
  xpe serve <summary.xps> [--addr HOST:PORT] [--workers N] [--queue N]
      [--deadline-ms N] [--max-query-nodes N] [--kernel naive|indexed|bitmap]
      [--join-cache N] [--estimate-cache N]
      [--read-timeout-ms N] [--write-timeout-ms N]
      [--max-line-bytes N]
  xpe diff [--seed N] [--cases N] [--json FILE]
  xpe faults [--seed N] [--cases N] [--json FILE]

--jobs N parallelizes summary construction (build) or batches queries
across N workers (estimate); 0 = one worker per core, default 1.
--stream builds the summary from the raw bytes in two streaming passes
instead of materializing the document tree; the output is byte-identical
and peak memory is bounded by depth x path count, not node count.
--join-cache N caps the workload-level join cache at N memoized join
results (estimate); 0 disables it. Caches never change estimates.
--estimate-cache N caps the full-query estimate cache at N finished
estimates (estimate, serve); 0 disables the skew-aware fast path. Only
'ok' answers are ever cached, and a serve reload invalidates the cache
atomically with the summary swap.
workload prints a production-shaped query trace on stdout, one
canonical query per line in arrival order: Zipf-skewed template
popularity (--zipf, default 1.1; 0 = uniform) over the paper's §7
workload classes mixed by --mix weights (default 0.5,0.3,0.2 for
simple,branch,order), --templates popularity ranks per class, seeded
and byte-reproducible. Pipe it through `xpe serve` to replay skewed
production traffic.
--kernel selects the path-join kernel (estimate): 'bitmap' (default,
word-parallel pid bitmaps), 'indexed' (adjacency-row lists), or 'naive'
(the paper's Figure-3 reference). All three print identical estimates.
--deadline-ms N gives each estimate a wall-clock budget; a query that
exceeds it prints its tag-frequency upper bound flagged 'degraded'.
--max-query-nodes N rejects queries with more steps before estimating.
serve runs a line-delimited-JSON estimation daemon on --addr (default
127.0.0.1:7878; port 0 picks an ephemeral port, printed on stdout).
Verbs: estimate, stats, reload, ping, shutdown — one JSON object per
line. Every estimate reply carries a status (ok, degraded:*, or
rejected:*) and the epoch of the summary generation that served it;
reload validates a new .xps fully before atomically swapping it in.
--queue bounds pending estimates (an overfull server sheds typed
'overloaded' errors instead of stalling); --read-timeout-ms /
--write-timeout-ms (0 = never) bound how long one connection can sit
idle or refuse to drain responses; --max-line-bytes caps request size.
diff runs the estimator-vs-exact differential battery (seeds accept 0x
hex); it exits nonzero when any invariant is violated.
faults injects every fault class (corruption, panics, exhausted
budgets, oversized queries, plus the serve wire protocol: truncated
requests, oversized lines, invalid UTF-8, garbage-then-valid
pipelining, mid-request disconnects; --cases trials per class) and
exits nonzero if any escapes the typed-error-or-degraded contract.";

fn load_doc(path: &str) -> Result<Document, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_document(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// Parsed command-line flags as `(name, value)` pairs.
type Flags = Vec<(String, String)>;

/// Flags that take no value; present means enabled.
const BOOLEAN_FLAGS: &[&str] = &["stream"];

/// Extracts `--flag value` pairs (and bare boolean flags), returning
/// remaining positionals.
fn split_flags(args: &[String]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&name) {
                flags.push((name.to_owned(), "true".to_owned()));
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_owned(), value.clone()));
        } else if a == "-o" {
            let value = it.next().ok_or("-o needs a value")?;
            flags.push(("out".to_owned(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((flags, positional))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse_flag<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag(flags, name) {
        Some(v) => v.parse().map_err(|_| format!("bad value for --{name}")),
        None => Ok(default),
    }
}

/// Seed values accept decimal or `0x`-prefixed hex (CI pins
/// `--seed 0xC0FFEE`).
fn parse_seed(flags: &[(String, String)], name: &str, default: u64) -> Result<u64, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => {
            let (digits, radix) = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => (hex, 16),
                None => (v, 10),
            };
            u64::from_str_radix(digits, radix).map_err(|_| format!("bad value for --{name}"))
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (_, pos) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("stats takes one file".into());
    };
    let doc = load_doc(path)?;
    let s = xpe::xml::stats::DocumentStats::compute(&doc);
    let lab = Labeling::compute(&doc);
    println!("elements:        {}", s.elements);
    println!("distinct tags:   {}", s.distinct_tags);
    println!("distinct paths:  {}", s.distinct_paths);
    println!("distinct pids:   {}", lab.interner.len());
    println!("max depth:       {}", s.max_depth);
    println!("avg fanout:      {:.2}", s.avg_fanout);
    println!("serialized size: {} bytes", s.serialized_bytes);
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("build takes one input file".into());
    };
    let out = flag(&flags, "out").ok_or("build requires -o <summary.xps>")?;
    let config = SummaryConfig {
        p_variance: parse_flag(&flags, "p-variance", 0.0)?,
        o_variance: parse_flag(&flags, "o-variance", 0.0)?,
        threads: parse_flag(&flags, "jobs", 1usize)?,
        ..SummaryConfig::default()
    };
    let summary = if flag(&flags, "stream").is_some() {
        // Streaming ingest: two tokenizer passes, no DOM; byte-identical
        // output with memory bounded by depth × distinct-path count.
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        Syn::build_streaming(&text, config).map_err(|e| format!("parsing {path}: {e}"))?
    } else {
        Syn::build(&load_doc(path)?, config)
    };
    let sizes = summary.sizes();
    summary
        .save_to_file(out)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "summary written to {out}: {} B path info + {} B order info \
         ({} paths, {} pids, {} tags)",
        sizes.path_total(),
        sizes.o_histograms,
        summary.encoding.len(),
        summary.pids.len(),
        summary.tags.len(),
    );
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    let [path, queries @ ..] = pos.as_slice() else {
        return Err("estimate takes a summary file and at least one query".into());
    };
    if queries.is_empty() {
        return Err("estimate needs at least one query".into());
    }
    let jobs = parse_flag(&flags, "jobs", 1usize)?;
    let join_cache = parse_flag(
        &flags,
        "join-cache",
        xpe::estimator::DEFAULT_JOIN_CACHE_CAPACITY,
    )?;
    let estimate_cache = parse_flag(
        &flags,
        "estimate-cache",
        xpe::estimator::DEFAULT_ESTIMATE_CACHE_CAPACITY,
    )?;
    let deadline_ms: Option<u64> = match flag(&flags, "deadline-ms") {
        Some(v) => Some(v.parse().map_err(|_| "bad value for --deadline-ms")?),
        None => None,
    };
    let max_nodes: Option<usize> = match flag(&flags, "max-query-nodes") {
        Some(v) => Some(v.parse().map_err(|_| "bad value for --max-query-nodes")?),
        None => None,
    };
    let kernel = match flag(&flags, "kernel") {
        Some(v) => xpe::estimator::JoinKernel::parse(v)
            .ok_or_else(|| format!("bad value for --kernel (naive|indexed|bitmap): {v}"))?,
        None => xpe::estimator::JoinKernel::default(),
    };
    let summary = Syn::load_from_file(path).map_err(|e| format!("loading {path}: {e}"))?;
    let engine = EstimationEngine::new(&summary)
        .with_threads(jobs)
        .with_join_cache_capacity(join_cache)
        .with_estimate_cache_capacity(estimate_cache)
        .with_kernel(kernel)
        .with_budget(xpe::estimator::Budget {
            deadline: deadline_ms.map(std::time::Duration::from_millis),
            max_join_edges: None,
        })
        .with_limits(xpe::estimator::QueryLimits {
            max_nodes,
            ..xpe::estimator::QueryLimits::unlimited()
        });
    // Parse everything up front: a malformed query aborts the whole
    // invocation with a diagnostic, before any estimate is printed, so
    // scripts never mistake partial output for a complete run.
    let batch = queries
        .iter()
        .map(|q| parse_query(q).map_err(|e| format!("query '{q}': {e}")))
        .collect::<Result<Vec<Query>, String>>()?;
    if deadline_ms.is_none() && max_nodes.is_none() {
        for (q, v) in queries.iter().zip(engine.estimate_batch(&batch)) {
            println!("{v:.2}\t{q}");
        }
        print_cache_tally(&engine.kernel_stats());
        return Ok(());
    }
    // Resilient path: each line still leads with the numeric estimate;
    // non-Ok outcomes append a status column, and the tally lands on
    // stderr so scripts scraping stdout see only estimates.
    for (q, out) in queries.iter().zip(engine.try_estimate_batch(&batch)) {
        match &out.status {
            xpe::estimator::EstimateStatus::Ok => println!("{:.2}\t{q}", out.value),
            status => println!("{:.2}\t{q}\t[{status}]", out.value),
        }
    }
    let stats = engine.kernel_stats();
    // Same tally type (and formatter) the serve daemon reports, so batch
    // runs and daemon logs read identically.
    let tally = xpe::estimator::OutcomeTally {
        ok: stats.outcomes_ok,
        degraded: stats.outcomes_degraded,
        rejected: stats.outcomes_rejected,
        panics: stats.worker_panics,
        ..xpe::estimator::OutcomeTally::default()
    };
    if tally.degraded > 0 || tally.rejected > 0 {
        eprintln!("outcomes: {tally}");
    }
    print_cache_tally(&stats);
    Ok(())
}

/// Cache effectiveness lands on stderr next to the outcome tally, so
/// stdout stays a pure estimate stream for scripts.
fn print_cache_tally(stats: &xpe::estimator::KernelStats) {
    eprintln!(
        "caches: estimate {} hit / {} miss ({:.1}% hit rate, {} inserted, \
         {} invalidated), join {} hit / {} miss ({:.1}% hit rate)",
        stats.estimate_cache_hits,
        stats.estimate_cache_misses,
        stats.estimate_cache_hit_rate * 100.0,
        stats.estimate_cache_inserts,
        stats.estimate_cache_invalidations,
        stats.join_cache_hits,
        stats.join_cache_misses,
        stats.join_cache_hit_rate * 100.0,
    );
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("serve takes one summary file".into());
    };
    let addr = flag(&flags, "addr").unwrap_or("127.0.0.1:7878");
    let deadline_ms: Option<u64> = match flag(&flags, "deadline-ms") {
        Some(v) => Some(v.parse().map_err(|_| "bad value for --deadline-ms")?),
        None => None,
    };
    let max_nodes: Option<usize> = match flag(&flags, "max-query-nodes") {
        Some(v) => Some(v.parse().map_err(|_| "bad value for --max-query-nodes")?),
        None => None,
    };
    let kernel = match flag(&flags, "kernel") {
        Some(v) => xpe::estimator::JoinKernel::parse(v)
            .ok_or_else(|| format!("bad value for --kernel (naive|indexed|bitmap): {v}"))?,
        None => xpe::estimator::JoinKernel::default(),
    };
    // 0 disables a socket timeout entirely; the defaults mirror
    // ServerConfig::default (30 s read, 10 s write).
    let timeout = |ms: u64| (ms > 0).then(|| std::time::Duration::from_millis(ms));
    let defaults = xpe::estimator::ServerConfig::default();
    let config = xpe::estimator::ServerConfig {
        workers: parse_flag(&flags, "workers", 0usize)?,
        queue_capacity: parse_flag(&flags, "queue", defaults.queue_capacity)?,
        max_line_bytes: parse_flag(&flags, "max-line-bytes", defaults.max_line_bytes)?,
        read_timeout: timeout(parse_flag(&flags, "read-timeout-ms", 30_000u64)?),
        write_timeout: timeout(parse_flag(&flags, "write-timeout-ms", 10_000u64)?),
        limits: xpe::estimator::QueryLimits {
            max_nodes,
            ..xpe::estimator::QueryLimits::unlimited()
        },
        budget: xpe::estimator::Budget {
            deadline: deadline_ms.map(std::time::Duration::from_millis),
            max_join_edges: None,
        },
        kernel,
        join_cache_capacity: parse_flag(
            &flags,
            "join-cache",
            xpe::estimator::DEFAULT_JOIN_CACHE_CAPACITY,
        )?,
        estimate_cache_capacity: parse_flag(
            &flags,
            "estimate-cache",
            xpe::estimator::DEFAULT_ESTIMATE_CACHE_CAPACITY,
        )?,
        ..defaults
    };
    let summary = Syn::load_from_file(path).map_err(|e| format!("loading {path}: {e}"))?;
    let server = xpe::estimator::Server::bind(
        addr,
        std::sync::Arc::new(summary),
        Some(std::path::PathBuf::from(path)),
        config,
    )
    .map_err(|e| format!("binding {addr}: {e}"))?;
    // The resolved address lands on stdout (and is flushed) before any
    // request is served, so scripts binding port 0 can scrape it.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let tally = server.run();
    println!("serve: {tally}");
    Ok(())
}

fn cmd_exact(args: &[String]) -> Result<(), String> {
    let (_, pos) = split_flags(args)?;
    let [path, queries @ ..] = pos.as_slice() else {
        return Err("exact takes an XML file and at least one query".into());
    };
    if queries.is_empty() {
        return Err("exact needs at least one query".into());
    }
    let doc = load_doc(path)?;
    let order = DocOrder::new(&doc);
    let eval = Evaluator::new(&doc, &order);
    let parsed = queries
        .iter()
        .map(|q| parse_query(q).map_err(|e| format!("query '{q}': {e}")))
        .collect::<Result<Vec<Query>, String>>()?;
    for (q, query) in queries.iter().zip(&parsed) {
        println!("{}\t{q}", eval.selectivity(query));
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    let [name] = pos.as_slice() else {
        return Err("generate takes one dataset name".into());
    };
    let dataset = match name.as_str() {
        "ssplays" => Dataset::SSPlays,
        "dblp" => Dataset::Dblp,
        "xmark" => Dataset::XMark,
        other => return Err(format!("unknown dataset '{other}'")),
    };
    let out = flag(&flags, "out").ok_or("generate requires -o <out.xml>")?;
    let spec = DatasetSpec {
        dataset,
        scale: parse_flag(&flags, "scale", 0.01)?,
        seed: parse_flag(&flags, "seed", 42u64)?,
    };
    let doc = spec.generate();
    std::fs::write(out, xpe::xml::to_string(&doc)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("{} elements written to {out}", doc.len());
    Ok(())
}

fn cmd_workload(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    let [name] = pos.as_slice() else {
        return Err("workload takes one dataset name".into());
    };
    let dataset = match name.as_str() {
        "ssplays" => Dataset::SSPlays,
        "dblp" => Dataset::Dblp,
        "xmark" => Dataset::XMark,
        other => return Err(format!("unknown dataset '{other}'")),
    };
    let seed = parse_seed(&flags, "seed", 42)?;
    let mix = match flag(&flags, "mix") {
        None => (0.5, 0.3, 0.2),
        Some(v) => {
            let parts: Vec<f64> = v
                .split(',')
                .map(|p| p.trim().parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|_| "bad value for --mix (want SIMPLE,BRANCH,ORDER)")?;
            let [s, b, o] = parts.as_slice() else {
                return Err("bad value for --mix (want three comma-separated weights)".into());
            };
            (*s, *b, *o)
        }
    };
    let spec = DatasetSpec {
        dataset,
        scale: parse_flag(&flags, "scale", 0.01)?,
        seed,
    };
    let doc = spec.generate();
    let labeling = Labeling::compute(&doc);
    let attempts = parse_flag(&flags, "attempts", 1000usize)?;
    let workload = xpe::datagen::generate_workload(
        &doc,
        &labeling.encoding,
        &xpe::datagen::WorkloadConfig {
            seed,
            simple_attempts: attempts,
            branch_attempts: attempts,
            ..xpe::datagen::WorkloadConfig::default()
        },
    );
    let config = xpe::datagen::TrafficConfig {
        seed,
        zipf_s: parse_flag(&flags, "zipf", 1.1)?,
        templates_per_class: parse_flag(&flags, "templates", 64usize)?,
        requests: parse_flag(&flags, "requests", 4096usize)?,
        mix,
        ..xpe::datagen::TrafficConfig::default()
    };
    let trace = xpe::datagen::generate_traffic(&workload, &config);
    // One canonical query per line in arrival order on stdout; the
    // shape summary goes to stderr so the trace pipes cleanly into a
    // replay client (or straight into `xpe serve`).
    let mut out = String::new();
    for text in trace.texts() {
        out.push_str(text);
        out.push('\n');
    }
    use std::io::Write as _;
    std::io::stdout()
        .write_all(out.as_bytes())
        .map_err(|e| format!("writing trace: {e}"))?;
    let counts = trace.class_counts();
    eprintln!(
        "workload: {} requests over {} templates \
         (simple {} / branch {} / order {}), zipf {}, seed {:#x}",
        trace.requests.len(),
        trace.templates.len(),
        counts[0],
        counts[1],
        counts[2],
        config.zipf_s,
        seed,
    );
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    if !pos.is_empty() {
        return Err(format!(
            "diff takes no positional arguments, got '{}'",
            pos[0]
        ));
    }
    let cfg = xpe::diff::DiffConfig {
        seed: parse_seed(&flags, "seed", 0)?,
        cases: parse_flag(&flags, "cases", 200u64)?,
    };
    let report = xpe::diff::run_diff(&cfg);
    if let Some(path) = flag(&flags, "json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    println!(
        "diff: seed {:#x}, {} cases, {} checks",
        report.seed,
        report.cases,
        report.total_checks()
    );
    for inv in xpe::diff::Invariant::ALL {
        let t = report.tally(inv);
        println!(
            "  {:<16} {:>6} checks  {:>3} violations",
            inv.name(),
            t.checks,
            t.violations
        );
    }
    if report.total_violations() > 0 {
        for v in &report.violations {
            eprintln!(
                "violation[{}] case {} (doc_seed {:#x}, p_variance {}): query {} \
                 estimate {} exact {} — {} (minimized: {})",
                v.invariant.name(),
                v.case,
                v.doc_seed,
                v.p_variance,
                v.query,
                v.estimate,
                v.exact,
                v.detail,
                v.minimized,
            );
        }
        return Err(format!(
            "{} invariant violation(s) in {} checks",
            report.total_violations(),
            report.total_checks()
        ));
    }
    println!("all invariants hold");
    Ok(())
}

fn cmd_faults(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args)?;
    if !pos.is_empty() {
        return Err(format!(
            "faults takes no positional arguments, got '{}'",
            pos[0]
        ));
    }
    let plan = xpe::diff::FaultPlan {
        seed: parse_seed(&flags, "seed", 0)?,
        cases_per_class: parse_flag(&flags, "cases", 25u64)?,
        quiet: true,
    };
    let report = xpe::diff::run_faults(&plan);
    if let Some(path) = flag(&flags, "json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    println!(
        "faults: seed {:#x}, {} cases per class",
        report.seed, report.cases_per_class
    );
    for class in xpe::diff::FaultClass::ALL {
        let t = report.tally(class);
        println!(
            "  {:<16} {:>4} cases  {:>4} typed errors  {:>4} degraded  {:>4} rejected  {:>3} failures",
            class.name(),
            t.cases,
            t.typed_errors,
            t.degraded,
            t.rejected,
            t.failures
        );
    }
    if !report.passed() {
        for f in &report.failures {
            eprintln!("failure[{}] case {}: {}", f.class.name(), f.case, f.detail);
        }
        return Err(format!(
            "{} fault(s) escaped the typed-error-or-degraded contract",
            report.total_failures()
        ));
    }
    println!("all fault classes contained");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn split_flags_separates_pairs_and_positionals() {
        let (flags, pos) = split_flags(&args(&[
            "file.xml", "--scale", "0.5", "-o", "out.bin", "extra",
        ]))
        .unwrap();
        assert_eq!(pos, vec!["file.xml", "extra"]);
        assert_eq!(flag(&flags, "scale"), Some("0.5"));
        assert_eq!(flag(&flags, "out"), Some("out.bin"));
        assert_eq!(flag(&flags, "missing"), None);
    }

    #[test]
    fn split_flags_rejects_dangling_flag() {
        assert!(split_flags(&args(&["--scale"])).is_err());
        assert!(split_flags(&args(&["-o"])).is_err());
    }

    #[test]
    fn split_flags_boolean_stream_takes_no_value() {
        let (flags, pos) = split_flags(&args(&["file.xml", "--stream", "-o", "out.xps"])).unwrap();
        assert_eq!(pos, vec!["file.xml"]);
        assert_eq!(flag(&flags, "stream"), Some("true"));
        assert_eq!(flag(&flags, "out"), Some("out.xps"));
        // Trailing --stream is fine too (no value to consume).
        let (flags, _) = split_flags(&args(&["file.xml", "--stream"])).unwrap();
        assert_eq!(flag(&flags, "stream"), Some("true"));
    }

    #[test]
    fn parse_flag_types_and_defaults() {
        let (flags, _) = split_flags(&args(&["--seed", "7", "--scale", "0.25"])).unwrap();
        assert_eq!(parse_flag(&flags, "seed", 0u64).unwrap(), 7);
        assert_eq!(parse_flag(&flags, "scale", 1.0f64).unwrap(), 0.25);
        assert_eq!(parse_flag(&flags, "absent", 42u32).unwrap(), 42);
        let (bad, _) = split_flags(&args(&["--seed", "notanumber"])).unwrap();
        assert!(parse_flag(&bad, "seed", 0u64).is_err());
    }

    #[test]
    fn parse_seed_accepts_decimal_and_hex() {
        let (flags, _) = split_flags(&args(&["--seed", "0xC0FFEE"])).unwrap();
        assert_eq!(parse_seed(&flags, "seed", 0).unwrap(), 0xC0FFEE);
        let (flags, _) = split_flags(&args(&["--seed", "12648430"])).unwrap();
        assert_eq!(parse_seed(&flags, "seed", 0).unwrap(), 12_648_430);
        assert_eq!(parse_seed(&[], "seed", 7).unwrap(), 7);
        let (bad, _) = split_flags(&args(&["--seed", "0xZZ"])).unwrap();
        assert!(parse_seed(&bad, "seed", 0).is_err());
    }
}
