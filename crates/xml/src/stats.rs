//! Structural statistics over documents.
//!
//! Reproduces the dataset characteristics the paper reports in Table 1
//! (document size, number of distinct element tags, number of elements) plus
//! a few extra shape metrics the dataset generators are calibrated against.

use std::collections::HashSet;

use crate::serialize::to_string;
use crate::tree::Document;

/// Summary of a document's structure.
#[derive(Clone, Debug, PartialEq)]
pub struct DocumentStats {
    /// Serialized size in bytes (compact serialization).
    pub serialized_bytes: usize,
    /// Number of distinct element tags.
    pub distinct_tags: usize,
    /// Total number of element nodes.
    pub elements: usize,
    /// Number of distinct root-to-leaf label paths.
    pub distinct_paths: usize,
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Mean number of children over non-leaf elements.
    pub avg_fanout: f64,
}

impl DocumentStats {
    /// Computes all statistics in two linear passes (one of which
    /// serializes the document to measure its size).
    pub fn compute(doc: &Document) -> Self {
        let serialized_bytes = to_string(doc).len();
        Self::compute_with_size(doc, serialized_bytes)
    }

    /// Computes statistics with an externally supplied serialized size,
    /// avoiding the serialization pass (used by the harness on large
    /// generated documents where the size is already known).
    pub fn compute_with_size(doc: &Document, serialized_bytes: usize) -> Self {
        let mut max_depth = 0usize;
        let mut internal = 0usize;
        let mut child_edges = 0usize;
        let mut depths = vec![0u32; doc.len()];
        let mut leaf_paths: HashSet<Vec<u32>> = HashSet::new();

        for id in doc.node_ids() {
            let depth = match doc.parent(id) {
                Some(p) => depths[p.index()] + 1,
                None => 0,
            };
            depths[id.index()] = depth;
            max_depth = max_depth.max(depth as usize);
            let kids = doc.children(id).len();
            if kids > 0 {
                internal += 1;
                child_edges += kids;
            } else {
                let path: Vec<u32> = doc
                    .root_path(id)
                    .into_iter()
                    .map(|t| t.index() as u32)
                    .collect();
                leaf_paths.insert(path);
            }
        }

        DocumentStats {
            serialized_bytes,
            distinct_tags: doc.tags().len(),
            elements: doc.len(),
            distinct_paths: leaf_paths.len(),
            max_depth,
            avg_fanout: if internal == 0 {
                0.0
            } else {
                child_edges as f64 / internal as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn stats_of_paper_figure1_shape() {
        // Same structure as the paper's Figure 1(a).
        let doc = parse(
            "<Root>\
               <A><B><D/></B><C><E/><F/></C></A>\
               <A><B><D/><E/></B><C><E/></C><B><D/></B></A>\
               <A><B><D/></B></A>\
             </Root>",
        )
        .unwrap();
        let s = DocumentStats::compute(&doc);
        assert_eq!(s.elements, 18);
        assert_eq!(s.distinct_tags, 7); // Root A B C D E F
        assert_eq!(s.distinct_paths, 4); // the paper's four encodings
        assert_eq!(s.max_depth, 3);
    }

    #[test]
    fn single_node_stats() {
        let doc = parse("<only/>").unwrap();
        let s = DocumentStats::compute(&doc);
        assert_eq!(s.elements, 1);
        assert_eq!(s.distinct_tags, 1);
        assert_eq!(s.distinct_paths, 1);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.avg_fanout, 0.0);
    }

    #[test]
    fn fanout_counts_only_internal_nodes() {
        let doc = parse("<r><a/><a/><a/><a/></r>").unwrap();
        let s = DocumentStats::compute(&doc);
        assert_eq!(s.avg_fanout, 4.0);
    }

    #[test]
    fn recursive_tags_yield_distinct_paths() {
        let doc = parse("<l><l><l/></l><l/></l>").unwrap();
        let s = DocumentStats::compute(&doc);
        // Leaf paths: l/l/l and l/l — two distinct.
        assert_eq!(s.distinct_paths, 2);
        assert_eq!(s.distinct_tags, 1);
    }
}
