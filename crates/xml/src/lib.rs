//! Ordered XML tree substrate for the XPath estimation system.
//!
//! The ICDE'06 estimation framework operates on XML modelled as an *ordered
//! tree pattern*: element nodes carry a tag, children are totally ordered,
//! and document order is significant (the order-based XPath axes
//! `preceding(-sibling)` / `following(-sibling)` are defined over it).
//!
//! This crate provides:
//!
//! * [`Document`] — an arena-backed ordered element tree with interned tags,
//!   built either through [`TreeBuilder`] or by parsing XML text with
//!   [`parse`]/[`parse_document`].
//! * [`StreamParser`] / [`StreamEvent`] — a pull-based tokenizer over raw
//!   bytes with O(depth) state, sharing the DOM parser's grammar and
//!   resource caps (the DOM parser is a driver over it), for consumers
//!   that never need the materialized tree.
//! * [`TagInterner`] / [`TagId`] — compact tag identifiers shared by every
//!   downstream table and histogram.
//! * [`nav`] — navigation and document-order utilities (descendant
//!   iteration, pre/post order numbering, sibling and preceding/following
//!   relationships).
//! * [`stats`] — structural statistics used by the experiment harness to
//!   reproduce Table 1 of the paper.
//!
//! # Example
//!
//! ```
//! use xpe_xml::{parse_document, nav::DocOrder};
//!
//! let doc = parse_document("<a><b/><c><b/></c></a>").unwrap();
//! assert_eq!(doc.len(), 4);
//! let order = DocOrder::new(&doc);
//! let root = doc.root();
//! let kids = doc.children(root);
//! assert!(order.pre(kids[0]) < order.pre(kids[1]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod serialize;
mod stream;
mod tag;
mod tree;

pub mod fixtures;
pub mod nav;
pub mod stats;
pub mod wire;

pub use parse::{parse, parse_document, ParseError, ParseErrorKind, MAX_DEPTH, MAX_NAME_LEN};
pub use serialize::{to_string, to_string_pretty};
pub use stream::{StreamEvent, StreamParser};
pub use tag::{TagId, TagInterner};
pub use tree::{Document, Node, NodeId, TreeBuilder, TreeError};
