//! A small, dependency-free XML parser.
//!
//! Handles the subset of XML that the corpora in the paper (Shakespeare
//! plays, DBLP, XMark) actually use: elements, attributes, character data,
//! the five predefined entities plus numeric character references, CDATA
//! sections, comments, processing instructions and a document type
//! declaration (skipped). Namespaces are treated lexically (prefixes stay
//! part of the tag name), matching how the estimation tables key on raw tag
//! strings.
//!
//! Tokenization lives in [`crate::stream`]: [`parse_document`] is a thin
//! driver that feeds [`StreamParser`](crate::StreamParser) events into a
//! [`TreeBuilder`], so the DOM and streaming ingest paths share one
//! grammar, one set of resource caps and one error surface.

use std::fmt;

use crate::stream::{StreamEvent, StreamParser};
use crate::tree::{Document, TreeBuilder, TreeError};

/// Maximum element nesting depth the parser accepts. Real corpora stay in
/// the tens; the cap bounds the open-element stack a hostile document can
/// force on the tokenizer (and on every streaming consumer whose state is
/// proportional to depth).
pub const MAX_DEPTH: usize = 256;

/// Maximum length, in bytes, of a single tag, attribute or entity name.
/// Real-world names are tens of bytes; the cap bounds the memory a hostile
/// document can force into interner tables and error messages through one
/// token.
pub const MAX_NAME_LEN: usize = 1024;

/// Position-annotated parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the failure was detected.
    pub offset: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The category of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A literal character other than the one required was found.
    Expected(char),
    /// A tag, attribute or entity name was malformed or missing.
    BadName,
    /// An end tag did not match the open element.
    MismatchedTag {
        /// Tag that was open.
        open: String,
        /// Tag found in the end tag.
        found: String,
    },
    /// `&...;` did not name a supported entity.
    BadEntity(String),
    /// Structural violation (unbalanced, multiple roots, empty document).
    Tree(TreeError),
    /// Element nesting exceeded [`MAX_DEPTH`] (the limit keeps hostile
    /// inputs from growing the open-element stack without bound).
    TooDeep,
    /// A single name token exceeded [`MAX_NAME_LEN`] bytes.
    TokenTooLong,
    /// Content found after the root element closed.
    TrailingContent,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: ", self.offset)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::Expected(c) => write!(f, "expected {c:?}"),
            ParseErrorKind::BadName => write!(f, "malformed name"),
            ParseErrorKind::MismatchedTag { open, found } => {
                write!(f, "end tag </{found}> does not match open <{open}>")
            }
            ParseErrorKind::BadEntity(e) => write!(f, "unsupported entity &{e};"),
            ParseErrorKind::Tree(e) => write!(f, "{e}"),
            ParseErrorKind::TooDeep => {
                write!(f, "element nesting exceeds {MAX_DEPTH} levels")
            }
            ParseErrorKind::TokenTooLong => {
                write!(f, "name token exceeds {MAX_NAME_LEN} bytes")
            }
            ParseErrorKind::TrailingContent => write!(f, "content after root element"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses an XML document into a [`Document`].
///
/// Convenience alias of [`parse_document`].
pub fn parse(input: &str) -> Result<Document, ParseError> {
    parse_document(input)
}

/// Parses an XML document into a [`Document`].
///
/// # Example
///
/// ```
/// let doc = xpe_xml::parse_document(r#"<?xml version="1.0"?>
///   <PLAY><TITLE>Hamlet</TITLE><ACT/></PLAY>"#).unwrap();
/// assert_eq!(doc.tag_name(doc.root()), "PLAY");
/// ```
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    let mut parser = StreamParser::new(input.as_bytes());
    let mut builder = TreeBuilder::new();
    while let Some(event) = parser.next_event()? {
        match event {
            StreamEvent::Open { name } => {
                builder.begin_element(&name);
            }
            StreamEvent::Close => builder.end_element().map_err(|e| ParseError {
                offset: parser.pos(),
                kind: ParseErrorKind::Tree(e),
            })?,
            StreamEvent::Text(text) => builder.text(&text),
        }
    }
    builder.finish().map_err(|e| ParseError {
        offset: parser.pos(),
        kind: ParseErrorKind::Tree(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.len(), 1);
        assert_eq!(doc.tag_name(doc.root()), "a");
    }

    #[test]
    fn parses_nested_with_text() {
        let doc = parse("<a>hi<b>there</b> again</a>").unwrap();
        assert_eq!(doc.len(), 2);
        assert_eq!(doc.node(doc.root()).text, "hi again");
        let b = doc.children(doc.root())[0];
        assert_eq!(doc.node(b).text, "there");
    }

    #[test]
    fn parses_attributes_without_storing() {
        let doc = parse(r#"<item id="5" cat='a"b'><name x=""/></item>"#).unwrap();
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn parses_prolog_doctype_comments_pis() {
        let input = r#"<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE PLAY [ <!ELEMENT PLAY (ACT*)> ]>
<!-- shakespeare -->
<PLAY><?pi data?><!-- inner --><ACT/></PLAY>
<!-- trailing -->"#;
        let doc = parse(input).unwrap();
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn entities_and_cdata() {
        let doc = parse("<a>&lt;x&gt; &amp; <![CDATA[<raw> & stuff]]> &#65;&#x42;</a>").unwrap();
        assert_eq!(doc.node(doc.root()).text, "<x> & <raw> & stuff AB");
    }

    #[test]
    fn mismatched_tag_rejected() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn trailing_content_rejected() {
        let e = parse("<a/><b/>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            parse("<a><b>").unwrap_err().kind,
            ParseErrorKind::UnexpectedEof
        ));
        assert!(matches!(
            parse("<a").unwrap_err().kind,
            ParseErrorKind::UnexpectedEof
        ));
        assert!(matches!(
            parse("<a><![CDATA[oops").unwrap_err().kind,
            ParseErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn bad_entity_rejected() {
        let e = parse("<a>&nope;</a>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::BadEntity(n) if n == "nope"));
    }

    #[test]
    fn bad_name_rejected() {
        assert!(matches!(
            parse("<1a/>").unwrap_err().kind,
            ParseErrorKind::BadName
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse("").is_err());
        assert!(parse("   \n  ").is_err());
    }

    #[test]
    fn namespaced_tags_kept_lexically() {
        let doc = parse("<ns:a><ns:b/></ns:a>").unwrap();
        assert_eq!(doc.tag_name(doc.root()), "ns:a");
    }

    #[test]
    fn depth_limit_enforced() {
        // Run with a generous stack: the bounded recursion is fine on the
        // main thread but debug-build frames are fat for test threads.
        std::thread::Builder::new()
            .stack_size(16 * 1024 * 1024)
            .spawn(|| {
                let mut deep = String::new();
                for _ in 0..MAX_DEPTH + 1 {
                    deep.push_str("<a>");
                }
                for _ in 0..MAX_DEPTH + 1 {
                    deep.push_str("</a>");
                }
                assert!(matches!(
                    parse(&deep).unwrap_err().kind,
                    ParseErrorKind::TooDeep
                ));
                // Just inside the limit parses fine.
                let mut ok = String::new();
                for _ in 0..MAX_DEPTH {
                    ok.push_str("<a>");
                }
                for _ in 0..MAX_DEPTH {
                    ok.push_str("</a>");
                }
                assert_eq!(parse(&ok).unwrap().len(), MAX_DEPTH);
            })
            .expect("spawn")
            .join()
            .expect("no panic");
    }

    /// Depth cap boundary, exhaustively: one below the limit and exactly
    /// at the limit parse; one past the limit is the typed `TooDeep`
    /// error. (The ±1 cases pin the off-by-one a refactor of the open
    /// stack would introduce.)
    #[test]
    fn depth_cap_boundary_plus_minus_one() {
        std::thread::Builder::new()
            .stack_size(16 * 1024 * 1024)
            .spawn(|| {
                let nested = |depth: usize| {
                    let mut s = String::with_capacity(depth * 7);
                    for _ in 0..depth {
                        s.push_str("<a>");
                    }
                    for _ in 0..depth {
                        s.push_str("</a>");
                    }
                    s
                };
                assert_eq!(parse(&nested(MAX_DEPTH - 1)).unwrap().len(), MAX_DEPTH - 1);
                assert_eq!(parse(&nested(MAX_DEPTH)).unwrap().len(), MAX_DEPTH);
                assert!(matches!(
                    parse(&nested(MAX_DEPTH + 1)).unwrap_err().kind,
                    ParseErrorKind::TooDeep
                ));
            })
            .expect("spawn")
            .join()
            .expect("no panic");
    }

    /// Name-token cap boundary: names of `MAX_NAME_LEN - 1` and exactly
    /// `MAX_NAME_LEN` bytes parse; one byte more is the typed
    /// `TokenTooLong` error — for tags, attributes, and entity names.
    #[test]
    fn oversized_tokens_rejected_at_boundary() {
        for len in [MAX_NAME_LEN - 1, MAX_NAME_LEN] {
            let tag = "t".repeat(len);
            let doc = parse(&format!("<{tag}></{tag}>")).unwrap();
            assert_eq!(doc.tag_name(doc.root()).len(), len);
        }
        let long = "t".repeat(MAX_NAME_LEN + 1);
        assert!(matches!(
            parse(&format!("<{long}/>")).unwrap_err().kind,
            ParseErrorKind::TokenTooLong
        ));
        // Oversized attribute name.
        let e = parse(&format!("<a {long}=\"v\"/>")).unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::TokenTooLong));
        // Oversized entity name (never a valid entity, but must fail with
        // a bounded typed error, not an unbounded scan-and-allocate).
        let e = parse(&format!("<a>&{long};</a>")).unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::TokenTooLong));
    }

    /// Truncated documents of every flavor produce `UnexpectedEof`, never
    /// a panic: cut mid-tag, mid-attribute, mid-text, mid-comment,
    /// mid-CDATA, mid-entity, and every prefix of a well-formed document.
    #[test]
    fn truncated_documents_yield_typed_errors() {
        for input in [
            "<",
            "<a",
            "<a ",
            "<a x",
            "<a x=",
            "<a x=\"v",
            "<a><b>text",
            "<a><!-- comment",
            "<a><![CDATA[data",
            "<a>&am",
            "<a></a",
            "<?xml",
            "<!DOCTYPE a [",
        ] {
            // EOF inside a name surfaces as `BadName` (no name bytes were
            // consumed); everywhere else truncation is `UnexpectedEof`.
            assert!(
                matches!(
                    parse(input).unwrap_err().kind,
                    ParseErrorKind::UnexpectedEof | ParseErrorKind::BadName
                ),
                "{input:?}"
            );
        }
        let full = r#"<a x="1"><b>hi &amp; <![CDATA[raw]]></b><!-- c --></a>"#;
        assert!(parse(full).is_ok());
        for cut in 1..full.len() {
            // Every strict prefix must fail with some typed error.
            assert!(parse(&full[..cut]).is_err(), "prefix of length {cut}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let e = parse("<a>&bad;</a>").unwrap_err();
        assert!(e.offset > 0);
        let msg = e.to_string();
        assert!(msg.contains("byte"));
    }
}
