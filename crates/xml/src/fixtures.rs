//! Shared test/example fixture: the paper's running example.

use crate::parse::parse_document;
use crate::tree::Document;

/// The XML instance of the paper's Figure 1(a), reconstructed from the
/// published path-id tables.
///
/// Structure (document order):
///
/// ```text
/// Root
/// ├── A(p8=1100)  B(p8){ D, E }
/// ├── A(p7=1011)  B(p5){ D },  C(p3){ E, F },  B(p5){ D }
/// └── A(p6=1010)  C(p2){ E },  B(p5){ D }
/// ```
///
/// This yields exactly the paper's tables: four distinct root-to-leaf paths
/// (1 = Root/A/B/D, 2 = Root/A/B/E, 3 = Root/A/C/E, 4 = Root/A/C/F), the
/// nine distinct path ids of Figure 1(c), the pathId-frequency table of
/// Figure 2(a) (e.g. `B: {(p8,1), (p5,3)}`, `D: {(p5,4)}`), and the
/// path-order table of Figure 2(b) (one `B(p5)` before `C`, two after).
/// Estimator tests reproduce the paper's worked Examples 4.1–5.3 on it.
pub fn paper_figure1() -> Document {
    parse_document(
        "<Root>\
           <A><B><D/><E/></B></A>\
           <A><B><D/></B><C><E/><F/></C><B><D/></B></A>\
           <A><C><E/></C><B><D/></B></A>\
         </Root>",
    )
    .expect("fixture is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let doc = paper_figure1();
        assert_eq!(doc.len(), 18);
        assert_eq!(doc.tags().len(), 7);
        assert_eq!(doc.children(doc.root()).len(), 3);
    }
}
