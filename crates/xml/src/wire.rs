//! Minimal little-endian wire format used by summary persistence.
//!
//! A summary is built once per document (possibly over millions of
//! elements) but consulted by every query compilation, so being able to
//! save and reload it matters in practice. The format is deliberately
//! simple — fixed-width little-endian scalars, length-prefixed strings —
//! and versioned by the top-level [`crate::TagInterner`]/summary encoders;
//! no external serialization dependency is needed.

use std::fmt;

/// CRC-32 (IEEE 802.3, the ubiquitous zlib/PNG polynomial) lookup table,
/// built at compile time so the checksum needs no runtime initialization.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the integrity trailer summary persistence
/// appends so a bit-flipped or silently-truncated file is rejected with a
/// typed error instead of decoding into a subtly wrong synopsis.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Ceiling on the element count any decoder preallocates from an
/// untrusted length prefix. Collections grow to their true size as
/// elements actually decode; the cap only bounds the *speculative*
/// allocation, so a corrupt or hostile count field (e.g. `0xFFFF_FFFF`)
/// costs at most this many slots before the truncation check fires
/// instead of a multi-gigabyte `Vec::with_capacity`.
pub const MAX_PREALLOC: usize = 4096;

/// The capacity to preallocate for a length-prefixed collection whose
/// count field `n` has not yet been validated: `min(n, MAX_PREALLOC)`.
/// Use for every `Vec::with_capacity`/`HashMap::with_capacity` whose
/// size comes off the wire.
#[inline]
pub fn cap_alloc(n: usize) -> usize {
    n.min(MAX_PREALLOC)
}

/// Appends a `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64`.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, u32::try_from(s.len()).expect("string too long"));
    buf.extend_from_slice(s.as_bytes());
}

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the expected field.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A header or version check failed.
    BadHeader(&'static str),
    /// A well-formed payload was followed by unconsumed bytes — the input
    /// is longer than the encoding it claims to hold.
    TrailingBytes {
        /// Number of bytes left after the payload.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::BadHeader(what) => write!(f, "bad header: {what}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after a complete payload")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Sequential reader over an encoded buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Byte offset of the next read — with [`bytes`](Self::bytes), the
    /// primitive zero-copy section walkers use to record where a record
    /// starts and ends without materializing it.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of unconsumed bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Succeeds only when every byte has been consumed; otherwise reports
    /// the leftover count. Top-level decoders call this after the last
    /// field so over-long inputs are rejected, not silently accepted.
    pub fn expect_exhausted(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(WireError::TrailingBytes { remaining }),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads `n` raw bytes, borrowed from the underlying buffer — the
    /// zero-copy primitive: no allocation, the slice lives as long as
    /// the buffer. Also how section walkers skip over records they do
    /// not materialize.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string as a slice borrowed from the
    /// buffer: validated in place, never copied.
    pub fn str_ref(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a length-prefixed UTF-8 string (owned).
    pub fn str(&mut self) -> Result<String, WireError> {
        self.str_ref().map(str::to_owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -1.5);
        put_str(&mut buf, "héllo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), -1.5);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        let mut r = Reader::new(&buf[..2]);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        // String length pointing past the end.
        let mut buf = Vec::new();
        put_u32(&mut buf, 100);
        buf.extend_from_slice(b"short");
        let mut r = Reader::new(&buf);
        assert_eq!(r.str(), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        let mut r = Reader::new(&buf);
        r.u32().unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.expect_exhausted(), Ok(()));
        buf.extend_from_slice(&[1, 2, 3]);
        let mut r = Reader::new(&buf);
        r.u32().unwrap();
        assert_eq!(r.remaining(), 3);
        assert_eq!(
            r.expect_exhausted(),
            Err(WireError::TrailingBytes { remaining: 3 })
        );
    }

    #[test]
    fn crc32_known_vectors() {
        // Reference values of the IEEE polynomial (same as zlib's crc32).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut data = b"xpe summary payload bytes".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at byte {byte} bit {bit}");
                data[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&data), clean);
    }

    #[test]
    fn bad_utf8_detected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.str(), Err(WireError::BadUtf8));
    }
}
