//! Tag interning.
//!
//! Every table in the estimation system (pathId-frequency table, path-order
//! table, histograms) is keyed by element tag. Interning tags once per
//! document keeps those keys at four bytes and makes tag comparison a
//! word-compare instead of a string-compare on the hot path-join path.

use std::collections::HashMap;
use std::fmt;

/// A compact identifier for an element tag, valid within the
/// [`TagInterner`] that produced it.
///
/// Ids are assigned densely from zero in first-interned order, so they can
/// index `Vec`-based per-tag tables directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub(crate) u32);

impl TagId {
    /// Returns the id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TagId` from a dense index previously obtained through
    /// [`TagId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        TagId(u32::try_from(index).expect("tag index overflows u32"))
    }
}

impl fmt::Debug for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TagId({})", self.0)
    }
}

/// Bidirectional map between tag names and [`TagId`]s.
///
/// The interner is append-only: tags are never removed, so any `TagId` it
/// hands out stays valid for its lifetime.
#[derive(Default, Clone)]
pub struct TagInterner {
    names: Vec<Box<str>>,
    ids: HashMap<Box<str>, TagId>,
}

impl TagInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = TagId(u32::try_from(self.names.len()).expect("too many distinct tags"));
        self.names.push(name.into());
        self.ids.insert(name.into(), id);
        id
    }

    /// Looks up the id of `name` without interning it.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.ids.get(name).copied()
    }

    /// Returns the name for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different interner and is out of
    /// range for this one.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct tags interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no tag has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId(i as u32), n.as_ref()))
    }

    /// Serializes the interner (summary persistence).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        crate::wire::put_u32(buf, self.names.len() as u32);
        for name in &self.names {
            crate::wire::put_str(buf, name);
        }
    }

    /// Deserializes an interner encoded by [`encode`](Self::encode). Ids
    /// are preserved (insertion order is stored).
    pub fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::WireError> {
        let n = r.u32()? as usize;
        let mut t = TagInterner::new();
        for _ in 0..n {
            let name = r.str()?;
            t.intern(&name);
        }
        Ok(t)
    }
}

impl fmt::Debug for TagInterner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.names.iter().enumerate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = TagInterner::new();
        let a = t.intern("ACT");
        let b = t.intern("SCENE");
        assert_eq!(t.intern("ACT"), a);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = TagInterner::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            let id = t.intern(name);
            assert_eq!(id.index(), i);
            assert_eq!(TagId::from_index(i), id);
        }
    }

    #[test]
    fn name_round_trips() {
        let mut t = TagInterner::new();
        let id = t.intern("SPEECH");
        assert_eq!(t.name(id), "SPEECH");
        assert_eq!(t.get("SPEECH"), Some(id));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut t = TagInterner::new();
        t.intern("x");
        t.intern("y");
        let collected: Vec<_> = t.iter().map(|(id, n)| (id.index(), n.to_owned())).collect();
        assert_eq!(collected, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn empty_interner() {
        let t = TagInterner::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
