//! Pull-based streaming XML tokenizer.
//!
//! [`StreamParser`] yields [`StreamEvent`]s (`Open`/`Close`/`Text`) over a
//! byte slice without building a tree, so downstream consumers can keep
//! memory bounded by document *depth* rather than node count. It accepts
//! exactly the dialect of [`parse_document`](crate::parse_document) — in
//! fact the DOM parser is a thin driver over this tokenizer (it feeds the
//! events into a [`TreeBuilder`](crate::TreeBuilder)), so the entity
//! rules, the [`MAX_DEPTH`] / [`MAX_NAME_LEN`] caps and every
//! [`ParseError`] variant are shared by construction: a document the DOM
//! parser rejects is rejected by the event stream with the same error, and
//! vice versa.
//!
//! # Example
//!
//! ```
//! use xpe_xml::{StreamEvent, StreamParser};
//!
//! let mut p = StreamParser::new(b"<a>hi<b/></a>");
//! let mut opens = 0;
//! while let Some(ev) = p.next_event().unwrap() {
//!     if matches!(ev, StreamEvent::Open { .. }) {
//!         opens += 1;
//!     }
//! }
//! assert_eq!(opens, 2);
//! ```

use std::borrow::Cow;

use crate::parse::{ParseError, ParseErrorKind, MAX_DEPTH, MAX_NAME_LEN};

/// One tokenizer event.
///
/// Attributes are validated but not reported (the estimation system
/// summarises element structure only), comments/PIs/DOCTYPE are skipped,
/// and entity references are decoded into `Text`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamEvent<'a> {
    /// An element opened. Fires for `<a>` and for `<a/>` (the latter is
    /// immediately followed by its `Close`).
    Open {
        /// The tag name, borrowed from the input where it is valid UTF-8.
        name: Cow<'a, str>,
    },
    /// The most recently opened element closed.
    Close,
    /// A run of character data (one contiguous text segment, one decoded
    /// entity reference, or one CDATA section). Consecutive `Text` events
    /// belong to the same element and concatenate.
    Text(Cow<'a, str>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Before the root element: XML declaration, comments, DOCTYPE.
    Prolog,
    /// Inside the root element.
    Content,
    /// After the root element closed: whitespace, comments, PIs only.
    Epilog,
    /// Input exhausted or a previous call returned an error.
    Done,
}

/// Pull parser yielding [`StreamEvent`]s over a complete document held in
/// (or mapped into) a byte slice.
///
/// State is O(depth): a stack of open tag names plus a cursor. Call
/// [`next_event`](Self::next_event) until it returns `Ok(None)`; after an
/// error the parser is poisoned and keeps returning `Ok(None)`.
#[derive(Debug)]
pub struct StreamParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Open tag names, innermost last (bounds nesting at [`MAX_DEPTH`]).
    open: Vec<String>,
    state: State,
    /// A `<a/>` produced its `Open`; its `Close` is owed next.
    pending_close: bool,
    events: u64,
}

impl<'a> StreamParser<'a> {
    /// Creates a tokenizer over a full document.
    pub fn new(bytes: &'a [u8]) -> Self {
        StreamParser {
            bytes,
            pos: 0,
            open: Vec::new(),
            state: State::Prolog,
            pending_close: false,
            events: 0,
        }
    }

    /// Current byte offset into the input.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Current element nesting depth.
    #[inline]
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Number of events yielded so far.
    #[inline]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The next event, `Ok(None)` at end of document.
    pub fn next_event(&mut self) -> Result<Option<StreamEvent<'a>>, ParseError> {
        let r = self.step();
        match &r {
            Err(_) => self.state = State::Done,
            Ok(Some(_)) => self.events += 1,
            Ok(None) => {}
        }
        r
    }

    fn step(&mut self) -> Result<Option<StreamEvent<'a>>, ParseError> {
        if self.pending_close {
            self.pending_close = false;
            return Ok(Some(self.emit_close()));
        }
        match self.state {
            State::Done => Ok(None),
            State::Prolog => {
                self.prolog()?;
                self.open_tag().map(Some)
            }
            State::Content => self.content_step(),
            State::Epilog => self.epilog_step(),
        }
    }

    /// Pops the innermost element; leaving the root moves to the epilog.
    fn emit_close(&mut self) -> StreamEvent<'a> {
        self.open.pop();
        if self.open.is_empty() {
            self.state = State::Epilog;
        }
        StreamEvent::Close
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            offset: self.pos,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else if self.peek().is_none() {
            Err(self.err(ParseErrorKind::UnexpectedEof))
        } else {
            Err(self.err(ParseErrorKind::Expected(c as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), ParseError> {
        match find_sub(&self.bytes[self.pos..], end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => {
                self.pos = self.bytes.len();
                Err(self.err(ParseErrorKind::UnexpectedEof))
            }
        }
    }

    fn prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.bump(2);
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.bump(4);
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips a DOCTYPE declaration, including a bracketed internal subset.
    fn doctype(&mut self) -> Result<(), ParseError> {
        self.bump("<!DOCTYPE".len());
        let mut depth = 0usize;
        loop {
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                Some(b'[') => {
                    depth += 1;
                    self.pos += 1;
                }
                Some(b']') => {
                    depth = depth.saturating_sub(1);
                    self.pos += 1;
                }
                Some(b'>') if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Consumes a name token, returning its byte range in the input.
    fn name_range(&mut self) -> Result<(usize, usize), ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok =
                c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') || c >= 0x80;
            if ok {
                if self.pos - start >= MAX_NAME_LEN {
                    return Err(ParseError {
                        offset: start,
                        kind: ParseErrorKind::TokenTooLong,
                    });
                }
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err(ParseErrorKind::BadName));
        }
        // Names must not start with a digit, '-' or '.'.
        let first = self.bytes[start];
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return Err(ParseError {
                offset: start,
                kind: ParseErrorKind::BadName,
            });
        }
        Ok((start, self.pos))
    }

    fn open_tag(&mut self) -> Result<StreamEvent<'a>, ParseError> {
        if self.open.len() >= MAX_DEPTH {
            return Err(self.err(ParseErrorKind::TooDeep));
        }
        self.expect(b'<')?;
        let (start, end) = self.name_range()?;
        let name = String::from_utf8_lossy(&self.bytes[start..end]);
        self.open.push(name.clone().into_owned());
        self.attributes()?;
        self.skip_ws();
        if self.starts_with("/>") {
            self.bump(2);
            self.pending_close = true;
        } else {
            self.expect(b'>')?;
        }
        self.state = State::Content;
        Ok(StreamEvent::Open { name })
    }

    fn close_tag(&mut self) -> Result<StreamEvent<'a>, ParseError> {
        self.bump(2);
        let (start, end) = self.name_range()?;
        let found = String::from_utf8_lossy(&self.bytes[start..end]);
        self.skip_ws();
        self.expect(b'>')?;
        let open = self.open.last().map(String::as_str).unwrap_or_default();
        if open != found {
            return Err(self.err(ParseErrorKind::MismatchedTag {
                open: open.to_owned(),
                found: found.into_owned(),
            }));
        }
        Ok(self.emit_close())
    }

    fn attributes(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(()),
                _ => {}
            }
            self.name_range()?;
            self.skip_ws();
            self.expect(b'=')?;
            self.skip_ws();
            let quote = match self.peek() {
                Some(q @ (b'"' | b'\'')) => q,
                Some(_) => return Err(self.err(ParseErrorKind::Expected('"'))),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            };
            self.pos += 1;
            // Attribute values are validated but not reported: the
            // estimation system summarises element structure only.
            while let Some(c) = self.peek() {
                if c == quote {
                    break;
                }
                self.pos += 1;
            }
            self.expect(quote)?;
        }
    }

    fn content_step(&mut self) -> Result<Option<StreamEvent<'a>>, ParseError> {
        loop {
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                Some(b'<') => {
                    if self.starts_with("</") {
                        return self.close_tag().map(Some);
                    } else if self.starts_with("<!--") {
                        self.bump(4);
                        self.skip_until("-->")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.bump(9);
                        let start = self.pos;
                        match find_sub(&self.bytes[self.pos..], b"]]>") {
                            Some(i) => {
                                self.pos = start + i + 3;
                                return Ok(Some(StreamEvent::Text(String::from_utf8_lossy(
                                    &self.bytes[start..start + i],
                                ))));
                            }
                            None => {
                                self.pos = self.bytes.len();
                                return Err(self.err(ParseErrorKind::UnexpectedEof));
                            }
                        }
                    } else if self.starts_with("<?") {
                        self.bump(2);
                        self.skip_until("?>")?;
                    } else {
                        return self.open_tag().map(Some);
                    }
                }
                Some(b'&') => {
                    let c = self.entity()?;
                    return Ok(Some(StreamEvent::Text(Cow::Owned(c.to_string()))));
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' || c == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    return Ok(Some(StreamEvent::Text(String::from_utf8_lossy(
                        &self.bytes[start..self.pos],
                    ))));
                }
            }
        }
    }

    fn epilog_step(&mut self) -> Result<Option<StreamEvent<'a>>, ParseError> {
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                self.state = State::Done;
                return Ok(None);
            }
            if self.starts_with("<!--") {
                self.bump(4);
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.bump(2);
                self.skip_until("?>")?;
            } else {
                return Err(self.err(ParseErrorKind::TrailingContent));
            }
        }
    }

    fn entity(&mut self) -> Result<char, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b';' {
                break;
            }
            if !c.is_ascii_alphanumeric() && c != b'#' && c != b'x' {
                break;
            }
            if self.pos - start >= MAX_NAME_LEN {
                return Err(ParseError {
                    offset: start,
                    kind: ParseErrorKind::TokenTooLong,
                });
            }
            self.pos += 1;
        }
        let name = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.expect(b';')?;
        match name.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "apos" => Ok('\''),
            "quot" => Ok('"'),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                u32::from_str_radix(&name[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| self.err(ParseErrorKind::BadEntity(name.clone())))
            }
            _ if name.starts_with('#') => name[1..]
                .parse::<u32>()
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| self.err(ParseErrorKind::BadEntity(name.clone()))),
            _ => Err(self.err(ParseErrorKind::BadEntity(name))),
        }
    }
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<StreamEvent<'_>>, ParseError> {
        let mut p = StreamParser::new(input.as_bytes());
        let mut out = Vec::new();
        while let Some(ev) = p.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }

    fn open(name: &str) -> StreamEvent<'_> {
        StreamEvent::Open {
            name: Cow::Borrowed(name),
        }
    }

    #[test]
    fn yields_open_text_close() {
        let evs = events("<a>hi<b>there</b> again</a>").unwrap();
        assert_eq!(
            evs,
            vec![
                open("a"),
                StreamEvent::Text(Cow::Borrowed("hi")),
                open("b"),
                StreamEvent::Text(Cow::Borrowed("there")),
                StreamEvent::Close,
                StreamEvent::Text(Cow::Borrowed(" again")),
                StreamEvent::Close,
            ]
        );
    }

    #[test]
    fn self_closing_yields_open_then_close() {
        let evs = events("<a><b/></a>").unwrap();
        assert_eq!(
            evs,
            vec![open("a"), open("b"), StreamEvent::Close, StreamEvent::Close]
        );
    }

    #[test]
    fn entities_decode_to_text_segments() {
        let evs = events("<a>&lt;&#65;</a>").unwrap();
        let text: String = evs
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Text(t) => Some(t.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(text, "<A");
    }

    #[test]
    fn prolog_and_epilog_produce_no_events() {
        let evs = events("<?xml version=\"1.0\"?><!-- c --><a/><!-- d -->").unwrap();
        assert_eq!(evs, vec![open("a"), StreamEvent::Close]);
    }

    #[test]
    fn poisoned_after_error() {
        let mut p = StreamParser::new(b"<a><b></a></b>");
        let last = loop {
            match p.next_event() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(matches!(
            last.unwrap_err().kind,
            ParseErrorKind::MismatchedTag { .. }
        ));
        // After the error the stream stays terminated.
        assert!(matches!(p.next_event(), Ok(None)));
    }

    #[test]
    fn depth_is_bounded_state() {
        let mut p = StreamParser::new(b"<a><b><c/></b></a>");
        let mut max_depth = 0;
        while let Some(_ev) = p.next_event().unwrap() {
            max_depth = max_depth.max(p.depth());
        }
        assert_eq!(max_depth, 3);
        assert_eq!(p.depth(), 0);
    }
}
