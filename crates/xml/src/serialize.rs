//! Serialization of [`Document`]s back to XML text.

use std::fmt::Write;

use crate::tree::{Document, NodeId};

/// Serializes `doc` to compact XML (no added whitespace).
///
/// Character data is escaped, so `parse(to_string(doc))` reconstructs the
/// same element structure and text — a property-tested invariant.
pub fn to_string(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.len() * 8);
    write_node(doc, doc.root(), &mut out, None, 0);
    out
}

/// Serializes `doc` with two-space indentation, one element per line.
///
/// Intended for debugging and examples; indentation whitespace becomes part
/// of parent text when re-parsed, so round-trip comparisons should use
/// [`to_string`].
pub fn to_string_pretty(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.len() * 12);
    write_node(doc, doc.root(), &mut out, Some("  "), 0);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String, indent: Option<&str>, depth: usize) {
    let node = doc.node(id);
    let tag = doc.tag_name(id);
    if let Some(unit) = indent {
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
    if node.children.is_empty() && node.text.is_empty() {
        let _ = write!(out, "<{tag}/>");
        if indent.is_some() {
            out.push('\n');
        }
        return;
    }
    let _ = write!(out, "<{tag}>");
    escape_into(&node.text, out);
    if !node.children.is_empty() {
        if indent.is_some() {
            out.push('\n');
        }
        for &child in &node.children {
            write_node(doc, child, out, indent, depth + 1);
        }
        if let Some(unit) = indent {
            for _ in 0..depth {
                out.push_str(unit);
            }
        }
    }
    let _ = write!(out, "</{tag}>");
    if indent.is_some() {
        out.push('\n');
    }
}

fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::tree::TreeBuilder;

    #[test]
    fn compact_round_trip() {
        let src = "<a>x<b><c/></b>y &amp; &lt;z&gt;</a>";
        let doc = parse(src).unwrap();
        let ser = to_string(&doc);
        let doc2 = parse(&ser).unwrap();
        assert_eq!(doc.len(), doc2.len());
        assert_eq!(to_string(&doc2), ser);
    }

    #[test]
    fn empty_element_self_closes() {
        let mut b = TreeBuilder::new();
        b.begin_element("solo");
        b.end_element().unwrap();
        let doc = b.finish().unwrap();
        assert_eq!(to_string(&doc), "<solo/>");
    }

    #[test]
    fn pretty_output_is_indented() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let pretty = to_string_pretty(&doc);
        assert!(pretty.contains("\n  <b>"));
        assert!(pretty.contains("\n    <c/>"));
        // Structure survives the added whitespace.
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(reparsed.len(), 3);
    }

    #[test]
    fn text_is_escaped() {
        let mut b = TreeBuilder::new();
        b.begin_element("t");
        b.text("a<b&c>d");
        b.end_element().unwrap();
        let doc = b.finish().unwrap();
        assert_eq!(to_string(&doc), "<t>a&lt;b&amp;c&gt;d</t>");
    }
}
