//! Arena-backed ordered element tree.

use std::fmt;

use crate::tag::{TagId, TagInterner};

/// Index of a node in a [`Document`] arena.
///
/// `NodeId`s are dense: the root is always id 0 and ids are assigned in the
/// order nodes are created, which for both [`TreeBuilder`] and the parser is
/// *document order* (pre-order). Several downstream components rely on this
/// invariant; it holds because a freshly created node is appended after
/// every node created before it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns this id as a dense `usize` index into the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

/// One element node of a [`Document`].
#[derive(Clone, Debug)]
pub struct Node {
    /// Interned tag of this element.
    pub tag: TagId,
    /// Parent element, `None` for the document root.
    pub parent: Option<NodeId>,
    /// Element children in document order.
    pub children: Vec<NodeId>,
    /// Concatenated character data directly inside this element (text nodes
    /// are not modelled as tree nodes — the estimation system only
    /// summarises element structure — but the content is preserved so that
    /// parse→serialize round-trips).
    pub text: String,
}

/// Errors raised by [`TreeBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// `end_element` was called with no element open.
    UnbalancedEnd,
    /// `finish` was called while elements were still open.
    UnclosedElements(usize),
    /// A second root element was started after the first was closed.
    MultipleRoots,
    /// `finish` was called before any element was started.
    EmptyDocument,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnbalancedEnd => write!(f, "end_element without matching begin_element"),
            TreeError::UnclosedElements(n) => write!(f, "{n} element(s) left open at finish"),
            TreeError::MultipleRoots => write!(f, "document may contain only one root element"),
            TreeError::EmptyDocument => write!(f, "document contains no elements"),
        }
    }
}

impl std::error::Error for TreeError {}

/// An ordered tree of element nodes with interned tags.
///
/// The arena layout (`Vec<Node>`) keeps traversal cache-friendly; statistic
/// collection over documents with hundreds of thousands of elements (the
/// paper's DBLP snapshot has 1.7M) is a linear scan.
#[derive(Clone, Debug)]
pub struct Document {
    nodes: Vec<Node>,
    tags: TagInterner,
}

impl Document {
    /// The root element. Every non-empty document has one.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of element nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document has no elements. Documents produced by
    /// [`TreeBuilder::finish`] or the parser are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Tag of `id`.
    #[inline]
    pub fn tag(&self, id: NodeId) -> TagId {
        self.nodes[id.index()].tag
    }

    /// Tag name of `id`.
    #[inline]
    pub fn tag_name(&self, id: NodeId) -> &str {
        self.tags.name(self.tag(id))
    }

    /// Parent of `id` (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Children of `id` in document order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// The tag interner for this document.
    #[inline]
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// Iterates over all node ids in document (pre-)order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Depth of `id`: the root has depth 0.
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// True when `anc` is a proper ancestor of `desc`.
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        let mut cur = self.parent(desc);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// The sequence of tag ids on the path from the root down to `id`
    /// (inclusive).
    pub fn root_path(&self, id: NodeId) -> Vec<TagId> {
        let mut path = Vec::with_capacity(self.depth(id) + 1);
        let mut cur = Some(id);
        while let Some(n) = cur {
            path.push(self.tag(n));
            cur = self.parent(n);
        }
        path.reverse();
        path
    }
}

/// Incremental, event-style constructor for [`Document`].
///
/// Drive it with `begin_element` / `text` / `end_element` in document order;
/// the parser and every dataset generator are built on top of it.
///
/// # Example
///
/// ```
/// use xpe_xml::TreeBuilder;
///
/// let mut b = TreeBuilder::new();
/// b.begin_element("Play");
/// b.begin_element("Act");
/// b.end_element().unwrap();
/// b.end_element().unwrap();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.len(), 2);
/// assert_eq!(doc.tag_name(doc.root()), "Play");
/// ```
#[derive(Default)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
    tags: TagInterner,
    stack: Vec<NodeId>,
    root_closed: bool,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new element with the given tag name as a child of the
    /// currently open element (or as the root), and returns its id.
    ///
    /// Starting a second root after the first was closed is detected at
    /// [`finish`](Self::finish) time via [`TreeError::MultipleRoots`]; we
    /// record the violation here so event producers need not track it.
    pub fn begin_element(&mut self, tag: &str) -> NodeId {
        let tag = self.tags.intern(tag);
        self.begin_element_id(tag)
    }

    /// Like [`begin_element`](Self::begin_element) but with an already
    /// interned tag (the interner is exposed via [`tags_mut`](Self::tags_mut)).
    pub fn begin_element_id(&mut self, tag: TagId) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        let parent = self.stack.last().copied();
        if parent.is_none() && !self.nodes.is_empty() {
            self.root_closed = true; // will surface as MultipleRoots
        }
        self.nodes.push(Node {
            tag,
            parent,
            children: Vec::new(),
            text: String::new(),
        });
        if let Some(p) = parent {
            self.nodes[p.index()].children.push(id);
        }
        self.stack.push(id);
        id
    }

    /// Appends character data to the currently open element. Text outside
    /// any element is ignored (whitespace between a prolog and the root).
    pub fn text(&mut self, data: &str) {
        if let Some(&cur) = self.stack.last() {
            self.nodes[cur.index()].text.push_str(data);
        }
    }

    /// Closes the most recently opened element.
    pub fn end_element(&mut self) -> Result<(), TreeError> {
        self.stack.pop().map(|_| ()).ok_or(TreeError::UnbalancedEnd)
    }

    /// Mutable access to the tag interner, for callers that want to
    /// pre-intern a vocabulary (the dataset generators do).
    pub fn tags_mut(&mut self) -> &mut TagInterner {
        &mut self.tags
    }

    /// Finalises the builder into a [`Document`].
    pub fn finish(self) -> Result<Document, TreeError> {
        if !self.stack.is_empty() {
            return Err(TreeError::UnclosedElements(self.stack.len()));
        }
        if self.root_closed {
            return Err(TreeError::MultipleRoots);
        }
        if self.nodes.is_empty() {
            return Err(TreeError::EmptyDocument);
        }
        Ok(Document {
            nodes: self.nodes,
            tags: self.tags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_figure1() -> Document {
        // The running example of the paper (Figure 1a).
        let mut b = TreeBuilder::new();
        b.begin_element("Root");
        {
            b.begin_element("A"); // A(p8)
            b.begin_element("B");
            b.begin_element("D");
            b.end_element().unwrap();
            b.end_element().unwrap();
            b.begin_element("C");
            b.begin_element("E");
            b.end_element().unwrap();
            b.begin_element("F");
            b.end_element().unwrap();
            b.end_element().unwrap();
            b.end_element().unwrap();
        }
        {
            b.begin_element("A"); // A(p7)
            b.begin_element("B");
            b.begin_element("D");
            b.end_element().unwrap();
            b.begin_element("E");
            b.end_element().unwrap();
            b.end_element().unwrap();
            b.begin_element("C");
            b.begin_element("E");
            b.end_element().unwrap();
            b.end_element().unwrap();
            b.begin_element("B");
            b.begin_element("D");
            b.end_element().unwrap();
            b.end_element().unwrap();
            b.end_element().unwrap();
        }
        {
            b.begin_element("A"); // A(p6)
            b.begin_element("B");
            b.begin_element("D");
            b.end_element().unwrap();
            b.end_element().unwrap();
            b.end_element().unwrap();
        }
        b.end_element().unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_constructs_figure1() {
        let doc = paper_figure1();
        assert_eq!(doc.tag_name(doc.root()), "Root");
        assert_eq!(doc.children(doc.root()).len(), 3);
        // 1 Root + 3 A + 4 B + 2 C + 4 D + 3 E + 1 F = 18 elements.
        assert_eq!(doc.len(), 18);
    }

    #[test]
    fn depth_and_root_path() {
        let doc = paper_figure1();
        let a = doc.children(doc.root())[0];
        let b = doc.children(a)[0];
        let d = doc.children(b)[0];
        assert_eq!(doc.depth(doc.root()), 0);
        assert_eq!(doc.depth(d), 3);
        let names: Vec<_> = doc
            .root_path(d)
            .into_iter()
            .map(|t| doc.tags().name(t).to_owned())
            .collect();
        assert_eq!(names, ["Root", "A", "B", "D"]);
    }

    #[test]
    fn is_ancestor_basics() {
        let doc = paper_figure1();
        let a = doc.children(doc.root())[0];
        let b = doc.children(a)[0];
        let d = doc.children(b)[0];
        assert!(doc.is_ancestor(doc.root(), d));
        assert!(doc.is_ancestor(a, d));
        assert!(!doc.is_ancestor(d, a));
        assert!(!doc.is_ancestor(a, a), "ancestor is proper");
    }

    #[test]
    fn node_ids_are_preorder() {
        let doc = paper_figure1();
        // Parent id always smaller than child id under pre-order creation.
        for id in doc.node_ids() {
            if let Some(p) = doc.parent(id) {
                assert!(p < id);
            }
        }
    }

    #[test]
    fn unbalanced_end_detected() {
        let mut b = TreeBuilder::new();
        assert_eq!(b.end_element(), Err(TreeError::UnbalancedEnd));
    }

    #[test]
    fn unclosed_detected() {
        let mut b = TreeBuilder::new();
        b.begin_element("a");
        assert!(matches!(b.finish(), Err(TreeError::UnclosedElements(1))));
    }

    #[test]
    fn multiple_roots_detected() {
        let mut b = TreeBuilder::new();
        b.begin_element("a");
        b.end_element().unwrap();
        b.begin_element("b");
        b.end_element().unwrap();
        assert_eq!(b.finish().unwrap_err(), TreeError::MultipleRoots);
    }

    #[test]
    fn empty_document_detected() {
        let b = TreeBuilder::new();
        assert_eq!(b.finish().unwrap_err(), TreeError::EmptyDocument);
    }

    #[test]
    fn text_accumulates() {
        let mut b = TreeBuilder::new();
        b.begin_element("p");
        b.text("hello ");
        b.text("world");
        b.end_element().unwrap();
        let doc = b.finish().unwrap();
        assert_eq!(doc.node(doc.root()).text, "hello world");
    }
}
