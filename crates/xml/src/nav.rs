//! Navigation and document-order utilities.
//!
//! The order-based XPath axes are defined over *document order* — the
//! pre-order sequence of elements. [`DocOrder`] precomputes pre/post
//! numbers so that ancestor tests and preceding/following classification are
//! O(1), which the exact evaluator (the experiments' ground-truth oracle)
//! leans on heavily.

use crate::tree::{Document, NodeId};

/// Pre/post-order numbering of a document.
///
/// For two distinct nodes `x`, `y`:
/// * `x` is an ancestor of `y`  iff `pre(x) < pre(y) && post(x) > post(y)`;
/// * `x` precedes `y` in document order iff `pre(x) < pre(y)`;
/// * `y` is in `x`'s *following* axis iff `pre(y) > pre(x) && post(y) > post(x)`
///   (after `x`, not a descendant);
/// * `y` is in `x`'s *preceding* axis iff `pre(y) < pre(x) && post(y) < post(x)`.
#[derive(Clone, Debug)]
pub struct DocOrder {
    pre: Vec<u32>,
    post: Vec<u32>,
}

impl DocOrder {
    /// Computes the numbering with one iterative traversal.
    pub fn new(doc: &Document) -> Self {
        let n = doc.len();
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut pre_counter = 0u32;
        let mut post_counter = 0u32;
        // Iterative DFS carrying an "enter or exit" marker.
        let mut stack: Vec<(NodeId, bool)> = vec![(doc.root(), false)];
        while let Some((id, exiting)) = stack.pop() {
            if exiting {
                post[id.index()] = post_counter;
                post_counter += 1;
            } else {
                pre[id.index()] = pre_counter;
                pre_counter += 1;
                stack.push((id, true));
                for &c in doc.children(id).iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        DocOrder { pre, post }
    }

    /// Pre-order (document-order) rank of `id`, starting at 0 for the root.
    #[inline]
    pub fn pre(&self, id: NodeId) -> u32 {
        self.pre[id.index()]
    }

    /// Post-order rank of `id`.
    #[inline]
    pub fn post(&self, id: NodeId) -> u32 {
        self.post[id.index()]
    }

    /// True when `anc` is a proper ancestor of `desc`.
    #[inline]
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.pre(anc) < self.pre(desc) && self.post(anc) > self.post(desc)
    }

    /// True when `b` is on `a`'s `following` axis: after `a` in document
    /// order and not a descendant of `a`.
    #[inline]
    pub fn is_following(&self, a: NodeId, b: NodeId) -> bool {
        self.pre(b) > self.pre(a) && self.post(b) > self.post(a)
    }

    /// True when `b` is on `a`'s `preceding` axis: before `a` in document
    /// order and not an ancestor of `a`.
    #[inline]
    pub fn is_preceding(&self, a: NodeId, b: NodeId) -> bool {
        self.pre(b) < self.pre(a) && self.post(b) < self.post(a)
    }
}

/// Iterates over the descendants of `id` (excluding `id`) in document order.
pub fn descendants(doc: &Document, id: NodeId) -> Descendants<'_> {
    Descendants {
        doc,
        stack: doc.children(id).iter().rev().copied().collect(),
    }
}

/// Iterator returned by [`descendants`].
pub struct Descendants<'d> {
    doc: &'d Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        self.stack
            .extend(self.doc.children(id).iter().rev().copied());
        Some(id)
    }
}

/// Returns `id`'s index within its parent's child list, or `None` for the
/// root.
pub fn sibling_position(doc: &Document, id: NodeId) -> Option<usize> {
    let parent = doc.parent(id)?;
    doc.children(parent).iter().position(|&c| c == id)
}

/// The siblings strictly after `id`, in document order.
pub fn following_siblings(doc: &Document, id: NodeId) -> &[NodeId] {
    match (doc.parent(id), sibling_position(doc, id)) {
        (Some(p), Some(i)) => &doc.children(p)[i + 1..],
        _ => &[],
    }
}

/// The siblings strictly before `id`, in document order.
pub fn preceding_siblings(doc: &Document, id: NodeId) -> &[NodeId] {
    match (doc.parent(id), sibling_position(doc, id)) {
        (Some(p), Some(i)) => &doc.children(p)[..i],
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn doc() -> Document {
        parse("<r><a><b/><c/></a><d><e/></d></r>").unwrap()
    }

    #[test]
    fn pre_order_matches_creation_order() {
        let d = doc();
        let order = DocOrder::new(&d);
        for id in d.node_ids() {
            assert_eq!(order.pre(id) as usize, id.index());
        }
    }

    #[test]
    fn ancestor_via_prepost_matches_tree_walk() {
        let d = doc();
        let order = DocOrder::new(&d);
        for x in d.node_ids() {
            for y in d.node_ids() {
                assert_eq!(
                    order.is_ancestor(x, y),
                    d.is_ancestor(x, y),
                    "x={x:?} y={y:?}"
                );
            }
        }
    }

    #[test]
    fn following_and_preceding_partition() {
        let d = doc();
        let order = DocOrder::new(&d);
        for x in d.node_ids() {
            for y in d.node_ids() {
                if x == y {
                    continue;
                }
                // Exactly one of: ancestor, descendant, preceding, following.
                let classes = [
                    order.is_ancestor(x, y),
                    order.is_ancestor(y, x),
                    order.is_following(x, y),
                    order.is_preceding(x, y),
                ];
                assert_eq!(classes.iter().filter(|&&b| b).count(), 1);
            }
        }
    }

    #[test]
    fn descendants_in_document_order() {
        let d = doc();
        let descs: Vec<usize> = descendants(&d, d.root()).map(|n| n.index()).collect();
        assert_eq!(descs, vec![1, 2, 3, 4, 5]);
        let a = d.children(d.root())[0];
        let under_a: Vec<usize> = descendants(&d, a).map(|n| n.index()).collect();
        assert_eq!(under_a, vec![2, 3]);
    }

    #[test]
    fn sibling_slices() {
        let d = doc();
        let a = d.children(d.root())[0];
        let b = d.children(a)[0];
        let c = d.children(a)[1];
        assert_eq!(following_siblings(&d, b), &[c]);
        assert_eq!(preceding_siblings(&d, c), &[b]);
        assert!(following_siblings(&d, d.root()).is_empty());
        assert!(preceding_siblings(&d, d.root()).is_empty());
        assert_eq!(sibling_position(&d, c), Some(1));
        assert_eq!(sibling_position(&d, d.root()), None);
    }
}
