//! Hostile-input parity: draining [`StreamParser`] directly must accept and
//! reject exactly the same inputs as the DOM-building [`parse`] entry point,
//! with the same typed [`ParseError`] (kind *and* offset). The DOM parser is
//! a driver over the stream parser, so any future divergence means the two
//! pipelines stopped sharing tokenization rules.

use xpe_xml::{
    parse, ParseError, ParseErrorKind, StreamEvent, StreamParser, MAX_DEPTH, MAX_NAME_LEN,
};

/// Drains the stream parser to completion, returning the (open, close, text)
/// event tally or the first error.
fn drain(input: &str) -> Result<(u64, u64, u64), ParseError> {
    let mut parser = StreamParser::new(input.as_bytes());
    let (mut opens, mut closes, mut texts) = (0, 0, 0);
    while let Some(event) = parser.next_event()? {
        match event {
            StreamEvent::Open { .. } => opens += 1,
            StreamEvent::Close => closes += 1,
            StreamEvent::Text(_) => texts += 1,
        }
    }
    Ok((opens, closes, texts))
}

/// Asserts stream and DOM agree on accept/reject, and on the exact error.
fn assert_parity(input: &str) {
    let stream = drain(input);
    let dom = parse(input);
    match (&stream, &dom) {
        (Ok((opens, closes, _)), Ok(doc)) => {
            assert_eq!(opens, closes, "unbalanced events for {input:?}");
            assert_eq!(
                *opens,
                doc.len() as u64,
                "event/node count mismatch for {input:?}"
            );
        }
        (Err(se), Err(de)) => {
            assert_eq!(se, de, "error mismatch for {input:?}");
        }
        _ => panic!(
            "accept/reject divergence for {input:?}: stream={stream:?} dom-ok={}",
            dom.is_ok()
        ),
    }
}

fn nested(depth: usize) -> String {
    let mut xml = String::new();
    for _ in 0..depth {
        xml.push_str("<a>");
    }
    for _ in 0..depth {
        xml.push_str("</a>");
    }
    xml
}

#[test]
fn depth_cap_parity_at_boundary() {
    for depth in [MAX_DEPTH - 1, MAX_DEPTH, MAX_DEPTH + 1] {
        assert_parity(&nested(depth));
    }
    // The over-cap case must be the typed TooDeep error on both sides.
    let deep = nested(MAX_DEPTH + 1);
    assert!(matches!(
        drain(&deep).unwrap_err().kind,
        ParseErrorKind::TooDeep
    ));
}

#[test]
fn oversized_token_parity_at_boundary() {
    let fit = "n".repeat(MAX_NAME_LEN);
    let over = "n".repeat(MAX_NAME_LEN + 1);
    // Element names, attribute names, and entity names at the cap ±1.
    for xml in [
        format!("<{fit}/>"),
        format!("<{over}/>"),
        format!("<a {fit}=\"v\"/>"),
        format!("<a {over}=\"v\"/>"),
        format!("<a>&{fit};</a>"),
        format!("<a>&{over};</a>"),
    ] {
        assert_parity(&xml);
    }
    let err = drain(&format!("<{over}/>")).unwrap_err();
    assert!(matches!(err.kind, ParseErrorKind::TokenTooLong));
    // The offset points at the start of the offending token.
    assert_eq!(err.offset, 1);
}

#[test]
fn truncated_document_parity() {
    for input in [
        "",
        "<",
        "<a",
        "<a ",
        "<a x",
        "<a x=",
        "<a x=\"v",
        "<a><b>text",
        "<a><!-- comment",
        "<a><![CDATA[data",
        "<a>&am",
        "<a></a",
        "<?xml",
        "<!DOCTYPE a [",
    ] {
        assert_parity(input);
    }
    // Every strict prefix of a well-formed document fails identically.
    let full = r#"<a x="1"><b>hi &amp; <![CDATA[raw]]></b><!-- c --></a>"#;
    assert_parity(full);
    for cut in 1..full.len() {
        assert_parity(&full[..cut]);
    }
}

#[test]
fn malformed_structure_parity() {
    for input in [
        "<a><b></a>",     // mismatched close
        "<a></a><b></b>", // trailing content after root
        "<a></a>junk",    // trailing text
        "<a>&bogus;</a>", // unknown entity
        "<a>&#xZZ;</a>",  // bad numeric entity
        "<1a/>",          // bad leading name byte
        "< a/>",          // space before name
        "text<a/>",       // text before root
        "<a/><a/>",       // two roots
    ] {
        assert_parity(input);
    }
}
