//! Fuzz-style property tests: the parser must never panic, whatever the
//! input, and must accept exactly what it can round-trip.

use proptest::prelude::*;
use xpe_xml::{parse, to_string};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: parse returns Ok or Err, never panics.
    #[test]
    fn parser_total_on_arbitrary_input(input in ".{0,256}") {
        let _ = parse(&input);
    }

    /// XML-ish soup: strings built from XML punctuation fragments hit the
    /// parser's interesting branches without panicking.
    #[test]
    fn parser_total_on_xmlish_input(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<a>".to_owned()),
                Just("</a>".to_owned()),
                Just("<a/>".to_owned()),
                Just("<!--x-->".to_owned()),
                Just("<![CDATA[y]]>".to_owned()),
                Just("<?pi?>".to_owned()),
                Just("&amp;".to_owned()),
                Just("&#65;".to_owned()),
                Just("&bogus;".to_owned()),
                Just("text".to_owned()),
                Just("<".to_owned()),
                Just(">".to_owned()),
                Just("\"".to_owned()),
                Just("<a b='c'>".to_owned()),
                Just("<!DOCTYPE x [<!ELEMENT y>]>".to_owned()),
            ],
            0..24,
        )
    ) {
        let input: String = parts.concat();
        if let Ok(doc) = parse(&input) {
            // Anything accepted must survive a serialize→parse round trip.
            let re = parse(&to_string(&doc)).expect("round trip of accepted input");
            prop_assert_eq!(re.len(), doc.len());
        }
    }
}
