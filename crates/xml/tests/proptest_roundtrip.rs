//! Property tests: random documents survive serialize→parse round trips and
//! the document-order invariants hold on arbitrary trees.

use proptest::prelude::*;
use xpe_xml::{nav::DocOrder, parse, to_string, Document, TreeBuilder};

/// Strategy producing a random ordered tree as nested (tag, children) pairs.
fn arb_tree() -> impl Strategy<Value = TreeSpec> {
    let leaf = (0u8..6).prop_map(|t| TreeSpec {
        tag: t,
        text: None,
        children: vec![],
    });
    leaf.prop_recursive(4, 64, 5, |inner| {
        (
            0u8..6,
            proptest::option::of("[ -~&&[^<&>]]{0,8}"),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(tag, text, children)| TreeSpec {
                tag,
                text,
                children,
            })
    })
}

#[derive(Debug, Clone)]
struct TreeSpec {
    tag: u8,
    text: Option<String>,
    children: Vec<TreeSpec>,
}

fn build(spec: &TreeSpec) -> Document {
    let mut b = TreeBuilder::new();
    fn rec(b: &mut TreeBuilder, s: &TreeSpec) {
        b.begin_element(&format!("t{}", s.tag));
        if let Some(t) = &s.text {
            b.text(t);
        }
        for c in &s.children {
            rec(b, c);
        }
        b.end_element().expect("balanced by construction");
    }
    rec(&mut b, spec);
    b.finish().expect("single root by construction")
}

proptest! {
    #[test]
    fn serialize_parse_round_trip(spec in arb_tree()) {
        let doc = build(&spec);
        let ser = to_string(&doc);
        let reparsed = parse(&ser).unwrap();
        prop_assert_eq!(doc.len(), reparsed.len());
        // Structural equality: tags along pre-order, parent indices, text.
        for id in doc.node_ids() {
            prop_assert_eq!(doc.tag_name(id), reparsed.tag_name(id));
            prop_assert_eq!(
                doc.parent(id).map(|p| p.index()),
                reparsed.parent(id).map(|p| p.index())
            );
        }
        // Serialization is a fixpoint after one round.
        prop_assert_eq!(to_string(&reparsed), ser);
    }

    #[test]
    fn node_classification_is_a_partition(spec in arb_tree()) {
        let doc = build(&spec);
        let order = DocOrder::new(&doc);
        for x in doc.node_ids() {
            for y in doc.node_ids() {
                if x == y { continue; }
                let n = [
                    order.is_ancestor(x, y),
                    order.is_ancestor(y, x),
                    order.is_following(x, y),
                    order.is_preceding(x, y),
                ].iter().filter(|&&b| b).count();
                prop_assert_eq!(n, 1);
            }
        }
    }

    #[test]
    fn pre_order_equals_creation_order(spec in arb_tree()) {
        let doc = build(&spec);
        let order = DocOrder::new(&doc);
        for id in doc.node_ids() {
            prop_assert_eq!(order.pre(id) as usize, id.index());
        }
    }
}
