//! Deterministic data parallelism on scoped OS threads.
//!
//! The build environment has no registry access, so instead of `rayon`
//! this tiny crate provides the one primitive the workspace needs: an
//! order-preserving indexed parallel map with an atomic work queue,
//! built on `std::thread::scope`. Results are returned in index order
//! regardless of completion order, so a parallel map over a pure function
//! is **bit-identical** to the serial loop it replaces — the property the
//! summary-construction and batch-estimation equivalence tests pin down.
//!
//! Worker threads pull index *ranges* from a shared atomic counter (work
//! stealing at chunk granularity), which amortizes the counter traffic
//! over many items while still keeping cores busy under skewed per-item
//! cost — p-histogram rows vary by orders of magnitude between tags. The
//! chunk size adapts to the input: small enough for stealing to balance
//! skew, large enough that cheap items (sub-microsecond estimates) are
//! not dominated by `fetch_add` contention. A panicking item panics the
//! calling thread after the scope joins, like rayon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A panic caught while mapping one item in
/// [`par_map_init_chunked_isolated`]: the item's index slot carries this
/// instead of a result, and the rest of the batch completes normally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemPanic {
    /// The panic payload rendered as text (`&str`/`String` payloads are
    /// passed through; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked: {}", self.message)
    }
}

impl std::error::Error for ItemPanic {}

/// Renders a caught panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Acquires `m` even if a previous holder panicked. Every critical
/// section in this crate only pushes whole `(index, value)` records into
/// a collection vector, so a poisoned lock cannot expose a half-written
/// record — recovery is always sound here, and it keeps one panicking
/// worker from cascading an unrelated `PoisonError` panic through every
/// other worker's result flush.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Resolves a thread-count knob: `0` means one worker per available core,
/// anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    match requested {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// Runs serially when `threads <= 1` (after [`resolve_threads`]) or when
/// there are fewer than two items; otherwise fans out over
/// `min(threads, n)` scoped workers. `f` must be pure for the parallel
/// and serial paths to agree (every caller in this workspace satisfies
/// that; the equivalence tests enforce it end to end).
pub fn par_map_indexed<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_init(threads, n, || (), |(), i| f(i))
}

/// [`par_map_indexed`] with per-worker state: each worker (or the calling
/// thread, when serial) builds one `S` via `init` and threads it through
/// every item it processes. This is how the batch estimator gives each
/// worker a single reusable scratch arena instead of one per item. `S`
/// never crosses threads, so it needs no `Send`/`Sync` bounds.
pub fn par_map_init<S, R, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    par_map_init_chunked(threads, n, 0, init, f)
}

/// [`par_map_init`] with an explicit dispatch chunk size: workers claim
/// `chunk` consecutive indices per `fetch_add` instead of one. `0` picks
/// automatically — roughly 16 steals per worker, clamped to `1..=64` —
/// which is the right grain for workloads of cheap uniform items; pass an
/// explicit size for workloads with known extreme skew. Results are in
/// index order for any chunking, so every setting is bit-identical to the
/// serial loop.
pub fn par_map_init_chunked<S, R, I, F>(
    threads: usize,
    n: usize,
    chunk: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = match chunk {
        0 => (n / (workers * 16)).clamp(1, 64),
        c => c,
    };

    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        local.push((i, f(&mut state, i)));
                    }
                }
                lock_ignore_poison(&done).extend(local);
            });
        }
    });

    let mut tagged = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    debug_assert_eq!(tagged.len(), n);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map_init_chunked`] with a per-chunk `flush` hook: after a worker
/// finishes each claimed chunk (and once more before it exits), `flush`
/// runs against its state. This is the lazy-merge seam for per-worker
/// caches — workers batch their writes privately and `flush` publishes
/// them to shared structures at chunk boundaries, so the shared lock is
/// taken once per chunk instead of once per item. On the serial path the
/// whole range is one chunk: `flush` runs once, after the last item.
///
/// `flush` must not affect `f`'s *results* (publishing memoized values
/// earlier or later may change speed, never outputs) for the parallel and
/// serial paths to stay bit-identical.
pub fn par_map_init_flushed<S, R, I, F, X>(
    threads: usize,
    n: usize,
    chunk: usize,
    init: I,
    f: F,
    flush: X,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
    X: Fn(&mut S) + Sync,
{
    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        let mut state = init();
        let out: Vec<R> = (0..n).map(|i| f(&mut state, i)).collect();
        flush(&mut state);
        return out;
    }
    let chunk = match chunk {
        0 => (n / (workers * 16)).clamp(1, 64),
        c => c,
    };

    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        local.push((i, f(&mut state, i)));
                    }
                    flush(&mut state);
                }
                flush(&mut state);
                lock_ignore_poison(&done).extend(local);
            });
        }
    });

    let mut tagged = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    debug_assert_eq!(tagged.len(), n);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map_init_chunked`] with **panic isolation**: each item's `f`
/// call runs under [`catch_unwind`], so a panicking item yields
/// `Err(ItemPanic)` in its slot while every other item still completes
/// and returns in order. This is the serving-layer primitive: one
/// poisoned query must cost one answer, not the whole batch.
///
/// Two containment rules keep the isolation sound:
///
/// * a worker whose item panicked **discards its per-worker state** and
///   rebuilds it with `init` before the next item — `f` holds `&mut S`
///   when it panics, so `S` may be mid-mutation and is never reused
///   (this is also what makes the `AssertUnwindSafe` below honest);
/// * result collection recovers from poisoned locks instead of
///   propagating them (`lock_ignore_poison`), so a panic elsewhere
///   never aborts the flush of completed results.
///
/// `init` itself is *not* isolated: it builds caches/scratch from trusted
/// state, and a panic there is a programming error that should propagate.
/// On the non-panicking path, results are bit-identical to
/// [`par_map_init_chunked`] for any thread count and chunk size.
pub fn par_map_init_chunked_isolated<S, R, I, F>(
    threads: usize,
    n: usize,
    chunk: usize,
    init: I,
    f: F,
) -> Vec<Result<R, ItemPanic>>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    // One isolated step: run item `i`, replacing worker state on panic.
    let step = |state: &mut Option<S>, i: usize| -> Result<R, ItemPanic> {
        let s = state.get_or_insert_with(&init);
        match catch_unwind(AssertUnwindSafe(|| f(s, i))) {
            Ok(r) => Ok(r),
            Err(payload) => {
                *state = None; // state may be mid-mutation: rebuild lazily
                Err(ItemPanic {
                    message: panic_message(payload),
                })
            }
        }
    };

    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        let mut state = None;
        return (0..n).map(|i| step(&mut state, i)).collect();
    }
    let chunk = match chunk {
        0 => (n / (workers * 16)).clamp(1, 64),
        c => c,
    };

    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state: Option<S> = None;
                let mut local: Vec<(usize, Result<R, ItemPanic>)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        local.push((i, step(&mut state, i)));
                    }
                }
                lock_ignore_poison(&done).extend(local);
            });
        }
    });

    let mut tagged = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    debug_assert_eq!(tagged.len(), n);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over a slice, preserving order; the parallel analogue of
/// `items.iter().map(f).collect()`.
pub fn par_map_slice<'a, T, R, F>(threads: usize, items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    par_map_indexed(threads, items.len(), |i| f(&items[i]))
}

/// Why [`BoundedQueue::try_push`] refused an item; the item comes back so
/// the producer can report it (e.g. as a typed `overloaded` reply).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity. Shed the work — pushing never blocks.
    Full(T),
    /// The queue was closed; no further work is accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue for serving workers.
///
/// The contract is shed-don't-stall on the producer side and
/// drain-then-stop on the consumer side:
///
/// * [`try_push`](Self::try_push) never blocks — a full queue returns
///   [`PushError::Full`] immediately so the producer (a connection
///   thread) can answer `overloaded` instead of wedging on a slow pool;
/// * [`pop`](Self::pop) blocks while the queue is open and empty, and
///   returns `None` only once the queue is **closed and drained** — so
///   closing lets workers finish every admitted job before exiting
///   (graceful drain), while jobs arriving after [`close`](Self::close)
///   are refused with [`PushError::Closed`].
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item` without blocking; `Err` returns it when the queue
    /// is full (shed) or closed (draining).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = lock_ignore_poison(&self.inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_ignore_poison(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: later pushes fail with [`PushError::Closed`],
    /// already-admitted items remain poppable, and blocked consumers wake
    /// (returning `None` once the backlog drains). Idempotent.
    pub fn close(&self) {
        let mut inner = lock_ignore_poison(&self.inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Whether [`close`](Self::close) has run.
    pub fn is_closed(&self) -> bool {
        lock_ignore_poison(&self.inner).closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.inner).items.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map() {
        let serial: Vec<u64> = (0..103).map(|i| (i as u64).wrapping_mul(31)).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let par = par_map_indexed(threads, 103, |i| (i as u64).wrapping_mul(31));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn slice_variant_preserves_order() {
        let words = ["a", "bb", "ccc", "dddd"];
        let lens = par_map_slice(3, &words, |w| w.len());
        assert_eq!(lens, vec![1, 2, 3, 4]);
    }

    #[test]
    fn resolve_threads_semantics() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn skewed_workloads_complete() {
        // Items with wildly different costs still all arrive, in order.
        let out = par_map_indexed(4, 40, |i| {
            if i % 7 == 0 {
                (0..(i * 1000)).map(|x| x as u64).sum::<u64>()
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 40);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Each worker counts how many items it processed; the counts must
        // sum to n, proving state persists across items instead of being
        // rebuilt per item.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        struct Counter<'a>(usize, &'a AtomicUsize);
        impl Drop for Counter<'_> {
            fn drop(&mut self) {
                self.1.fetch_add(self.0, Ordering::Relaxed);
            }
        }
        let out = par_map_init(
            3,
            50,
            || Counter(0, &total),
            |c, i| {
                c.0 += 1;
                i * 2
            },
        );
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(total.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn chunked_dispatch_matches_serial_for_any_chunk() {
        let serial: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(131)).collect();
        for chunk in [0, 1, 2, 7, 64, 200] {
            for threads in [2, 3, 8] {
                let par = par_map_init_chunked(
                    threads,
                    97,
                    chunk,
                    || (),
                    |(), i| (i as u64).wrapping_mul(131),
                );
                assert_eq!(par, serial, "chunk={chunk} threads={threads}");
            }
        }
    }

    #[test]
    fn chunked_dispatch_covers_every_index_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let counts: Vec<AtomicUsize> = (0..53).map(|_| AtomicUsize::new(0)).collect();
        par_map_init_chunked(
            4,
            53,
            5,
            || (),
            |(), i| counts[i].fetch_add(1, Ordering::Relaxed),
        );
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn flushed_dispatch_matches_serial_and_flushes_every_item() {
        use std::sync::atomic::AtomicUsize;
        let serial: Vec<u64> = (0..91).map(|i| (i as u64).wrapping_mul(17)).collect();
        for threads in [1, 2, 4] {
            for chunk in [0, 1, 5] {
                // State buffers items since the last flush; flush drains
                // into the shared tally. Everything processed must be
                // flushed by the time the call returns.
                let flushed = AtomicUsize::new(0);
                let par = par_map_init_flushed(
                    threads,
                    91,
                    chunk,
                    || 0usize,
                    |buffered, i| {
                        *buffered += 1;
                        (i as u64).wrapping_mul(17)
                    },
                    |buffered| {
                        flushed.fetch_add(*buffered, Ordering::Relaxed);
                        *buffered = 0;
                    },
                );
                assert_eq!(par, serial, "threads={threads} chunk={chunk}");
                assert_eq!(
                    flushed.load(Ordering::Relaxed),
                    91,
                    "threads={threads} chunk={chunk}: every item flushed"
                );
            }
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            par_map_indexed(4, 16, |i| {
                if i == 11 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(res.is_err());
    }

    /// A quiet panic hook for isolation tests: the default hook prints a
    /// backtrace banner per caught panic, which floods test output.
    fn hushed<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn isolated_map_matches_serial_when_nothing_panics() {
        let serial: Vec<u64> = (0..103).map(|i| (i as u64).wrapping_mul(31)).collect();
        for threads in [0, 1, 2, 8] {
            let out = par_map_init_chunked_isolated(
                threads,
                103,
                0,
                || (),
                |(), i| (i as u64).wrapping_mul(31),
            );
            let vals: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(vals, serial, "threads={threads}");
        }
    }

    #[test]
    fn one_poisoned_item_yields_one_error_slot() {
        hushed(|| {
            for threads in [1, 4] {
                let out = par_map_init_chunked_isolated(
                    threads,
                    40,
                    3,
                    || (),
                    |(), i| {
                        if i == 17 {
                            panic!("poisoned query 17");
                        }
                        i * 2
                    },
                );
                assert_eq!(out.len(), 40);
                for (i, r) in out.iter().enumerate() {
                    if i == 17 {
                        let e = r.as_ref().unwrap_err();
                        assert!(e.message.contains("poisoned query 17"), "{e}");
                    } else {
                        assert_eq!(*r.as_ref().unwrap(), i * 2, "slot {i}");
                    }
                }
            }
        });
    }

    #[test]
    fn every_item_panicking_still_returns_full_batch() {
        hushed(|| {
            let out = par_map_init_chunked_isolated::<(), usize, _, _>(
                4,
                25,
                0,
                || (),
                |(), _| panic!("all poisoned"),
            );
            assert_eq!(out.len(), 25);
            assert!(out.iter().all(|r| r.is_err()));
        });
    }

    /// Worker state contaminated by a panicking item is discarded: items
    /// processed after a panic on the same worker see freshly-initialized
    /// state, never the mid-mutation leftovers.
    #[test]
    fn state_is_rebuilt_after_a_panic() {
        hushed(|| {
            // Serial (1 thread) so one worker handles every item: state
            // counts items since (re)init; item 5 corrupts it and panics.
            let out = par_map_init_chunked_isolated(
                1,
                10,
                1,
                || 0usize,
                |seen, i| {
                    *seen += 1000; // corrupt first…
                    if i == 5 {
                        panic!("die mid-mutation");
                    }
                    *seen -= 999; // …then repair: net +1 per clean item
                    *seen
                },
            );
            // Items 0..5 count 1..=5; item 5 errors; items 6..10 restart
            // from rebuilt state, counting 1..=4 again.
            let want: Vec<Result<usize, ()>> = (1..=5)
                .map(Ok)
                .chain([Err(())])
                .chain((1..=4).map(Ok))
                .collect();
            let got: Vec<Result<usize, ()>> = out.into_iter().map(|r| r.map_err(|_| ())).collect();
            assert_eq!(got, want);
        });
    }

    #[test]
    fn non_string_panic_payloads_are_described() {
        hushed(|| {
            let out = par_map_init_chunked_isolated::<(), (), _, _>(
                1,
                1,
                1,
                || (),
                |(), _| std::panic::panic_any(42u32),
            );
            assert_eq!(
                out[0].as_ref().unwrap_err().message,
                "non-string panic payload"
            );
        });
    }

    #[test]
    fn bounded_queue_sheds_when_full_and_refuses_after_close() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
        // Admitted items drain in FIFO order, then the closed queue ends.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_queue_zero_capacity_still_admits_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(7), Ok(()));
        assert_eq!(q.try_push(8), Err(PushError::Full(8)));
    }

    #[test]
    fn bounded_queue_wakes_blocked_consumers() {
        let q = std::sync::Arc::new(BoundedQueue::new(16));
        let total = 200u64;
        let consumed: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let q = std::sync::Arc::clone(&q);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = q.pop() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let mut pushed = 0;
            while pushed < total {
                if q.try_push(pushed).is_ok() {
                    pushed += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            q.close();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = consumed;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn push_error_returns_the_item() {
        assert_eq!(PushError::Full("job").into_inner(), "job");
        assert_eq!(PushError::Closed(9).into_inner(), 9);
    }
}
