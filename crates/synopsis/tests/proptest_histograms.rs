//! Property tests of the histogram invariants the paper's Algorithms 1–2
//! promise: intra-bucket deviation bounded by the threshold, complete
//! coverage, and losslessness at variance 0.

use proptest::prelude::*;

use xpe_pathid::{Labeling, Pid};
use xpe_synopsis::{
    OHistogramSet, PHistogram, PHistogramSet, PathIdFrequencyTable, PathOrderTable, Region,
};
use xpe_xml::{Document, TreeBuilder};

fn arb_row() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..64, 0..24)
}

fn row_of(freqs: &[u64]) -> Vec<(Pid, u64)> {
    freqs
        .iter()
        .enumerate()
        .map(|(i, &f)| (Pid::from_index(i), f))
        .collect()
}

fn deviation(freqs: &[f64]) -> f64 {
    let k = freqs.len() as f64;
    let mean = freqs.iter().sum::<f64>() / k;
    (freqs.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / k).sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every bucket built at threshold v has deviation ≤ v, covers every
    /// pid exactly once, and stores the true bucket average.
    #[test]
    fn p_histogram_invariants(freqs in arb_row(), v in 0.0f64..8.0) {
        let row = row_of(&freqs);
        let h = PHistogram::build(&row, v);
        let mut seen = std::collections::HashSet::new();
        for b in h.buckets() {
            prop_assert!(!b.pids.is_empty());
            let bucket_freqs: Vec<f64> = b
                .pids
                .iter()
                .map(|p| freqs[p.index()] as f64)
                .collect();
            prop_assert!(deviation(&bucket_freqs) <= v + 1e-9);
            let mean = bucket_freqs.iter().sum::<f64>() / bucket_freqs.len() as f64;
            prop_assert!((b.avg - mean).abs() < 1e-9);
            for p in &b.pids {
                prop_assert!(seen.insert(*p), "pid in two buckets");
            }
        }
        prop_assert_eq!(seen.len(), freqs.len());
    }

    /// Variance 0 is lossless; the average absolute per-pid error never
    /// increases as the threshold tightens from v to 0.
    #[test]
    fn p_histogram_lossless_at_zero(freqs in arb_row(), v in 0.0f64..8.0) {
        let row = row_of(&freqs);
        let exact = PHistogram::build(&row, 0.0);
        let loose = PHistogram::build(&row, v);
        for &(p, f) in &row {
            prop_assert_eq!(exact.frequency(p), Some(f as f64));
            prop_assert!(loose.frequency(p).is_some());
        }
        prop_assert!(loose.size_bytes() <= exact.size_bytes());
    }
}

// ---------------------------------------------------------------------------
// Whole-document invariants.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct TreeSpec {
    tag: u8,
    children: Vec<TreeSpec>,
}

fn arb_doc() -> impl Strategy<Value = TreeSpec> {
    let leaf = (0u8..4).prop_map(|t| TreeSpec {
        tag: t,
        children: vec![],
    });
    leaf.prop_recursive(3, 40, 5, |inner| {
        (0u8..4, prop::collection::vec(inner, 0..5))
            .prop_map(|(tag, children)| TreeSpec { tag, children })
    })
}

fn build_doc(spec: &TreeSpec) -> Document {
    let mut b = TreeBuilder::new();
    fn rec(b: &mut TreeBuilder, s: &TreeSpec) {
        b.begin_element(&format!("t{}", s.tag));
        for c in &s.children {
            rec(b, c);
        }
        b.end_element().unwrap();
    }
    b.begin_element("R");
    rec(&mut b, spec);
    b.end_element().unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// At o-variance 0, every non-empty path-order cell reads back exactly
    /// through the o-histogram, for both regions.
    #[test]
    fn o_histogram_lossless_at_zero(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let lab = Labeling::compute(&doc);
        let freq = PathIdFrequencyTable::build(&doc, &lab);
        let order = PathOrderTable::build(&doc, &lab);
        let phist = PHistogramSet::build(&freq, 0.0);
        let ohist = OHistogramSet::build(&order, &phist, doc.tags(), 0.0);
        for (tag, _) in doc.tags().iter() {
            for (pid, y, cell) in order.cells_of(tag) {
                if cell.before > 0 {
                    prop_assert_eq!(
                        ohist.count(tag, pid, y, Region::Before),
                        cell.before as f64
                    );
                }
                if cell.after > 0 {
                    prop_assert_eq!(
                        ohist.count(tag, pid, y, Region::After),
                        cell.after as f64
                    );
                }
            }
        }
    }

    /// Histogram memory never grows as the variance loosens.
    #[test]
    fn sizes_monotone_in_variance(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let lab = Labeling::compute(&doc);
        let freq = PathIdFrequencyTable::build(&doc, &lab);
        let order = PathOrderTable::build(&doc, &lab);
        let mut last_p = usize::MAX;
        let mut last_o = usize::MAX;
        for v in [0.0, 1.0, 4.0, 16.0] {
            let p = PHistogramSet::build(&freq, v);
            let o = OHistogramSet::build(&order, &p, doc.tags(), v);
            prop_assert!(p.size_bytes() <= last_p);
            prop_assert!(o.size_bytes() <= last_o);
            last_p = p.size_bytes();
            last_o = o.size_bytes();
        }
    }

    /// The single-cell ablation variant is lossless and at least as large
    /// as the box-grown histogram.
    #[test]
    fn single_cell_variant_lossless_and_larger(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let lab = Labeling::compute(&doc);
        let freq = PathIdFrequencyTable::build(&doc, &lab);
        let order = PathOrderTable::build(&doc, &lab);
        let phist = PHistogramSet::build(&freq, 0.0);
        let grown = OHistogramSet::build(&order, &phist, doc.tags(), 0.0);
        let cells = OHistogramSet::build_single_cell(&order, &phist, doc.tags());
        prop_assert!(cells.size_bytes() >= grown.size_bytes());
        for (tag, _) in doc.tags().iter() {
            for (pid, y, cell) in order.cells_of(tag) {
                if cell.before > 0 {
                    prop_assert_eq!(
                        cells.count(tag, pid, y, Region::Before),
                        cell.before as f64
                    );
                }
            }
        }
    }
}
