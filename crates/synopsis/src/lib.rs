//! Statistical summaries of the ICDE'06 XPath estimation system.
//!
//! Two exact statistics are collected from a labeled document (paper §3):
//!
//! * [`PathIdFrequencyTable`] — per tag, every path id and its frequency;
//! * [`PathOrderTable`] — per tag and path id, how many elements occur
//!   before/after each sibling tag.
//!
//! Both are then compressed into variance-bounded histograms (paper §6):
//!
//! * [`PHistogram`] / [`PHistogramSet`] — buckets over the
//!   frequency-sorted pathId list (Algorithm 1);
//! * [`OHistogram`] / [`OHistogramSet`] — rectangular buckets over the
//!   sparse path-order grid (Algorithm 2).
//!
//! [`Summary`] bundles the histograms with the encoding table and the
//! compressed path-id binary tree: the complete data structure the
//! estimator queries, with per-phase construction timings and the byte
//! accounting used to reproduce Tables 3–5 and Figure 9.
//!
//! # Example
//!
//! ```
//! use xpe_synopsis::{Summary, SummaryConfig};
//!
//! let doc = xpe_xml::fixtures::paper_figure1();
//! let summary = Summary::build(&doc, SummaryConfig::default());
//!
//! // At variance 0 the p-histogram stores exact frequencies:
//! let d = summary.phistogram("D").unwrap();
//! let total: f64 = d.entries().map(|(_, f)| f).sum();
//! assert_eq!(total, 4.0); // four D elements in Figure 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod freq;
mod ohistogram;
mod order;
mod persist;
mod phistogram;
mod rootpids;
mod stream;
mod summary;
mod view;

pub use freq::PathIdFrequencyTable;
pub use ohistogram::{OBucket, OHistogram, OHistogramSet, Region};
pub use order::{OrderCell, PathOrderTable};
pub use persist::LoadError;
pub use phistogram::{PBucket, PHistogram, PHistogramSet};
pub use rootpids::RootPidIndex;
pub use summary::{BuildTimings, Summary, SummaryConfig, SummarySizes, DEFAULT_PARALLEL_THRESHOLD};
pub use view::{SectionSpan, SectionSpans, SummaryView};
