//! The path-order table (paper §3, Figure 2(b)).
//!
//! For each element tag `X`, the table records — per path id of `X` and per
//! sibling tag `Y` — how many `X` elements occur *before* some `Y` sibling
//! (the paper's `+element` region) and how many occur *after* some `Y`
//! sibling (the `element+` region). An `X` element with `Y` siblings on
//! both sides is counted in both regions (paper §3, final remark).

use std::collections::HashMap;

use xpe_pathid::{Labeling, Pid};
use xpe_xml::{Document, TagId};

/// Before/after counts of one `(pid, sibling tag)` cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderCell {
    /// Number of `X` elements with this pid occurring before a `Y` sibling
    /// (`+element` region).
    pub before: u64,
    /// Number occurring after a `Y` sibling (`element+` region).
    pub after: u64,
}

/// Sibling-order statistics for every tag.
#[derive(Clone, Debug)]
pub struct PathOrderTable {
    /// `rows[x_tag.index()]`: sparse cells keyed by `(pid of X, sibling tag)`.
    rows: Vec<HashMap<(Pid, TagId), OrderCell>>,
}

impl PathOrderTable {
    /// Collects sibling order information in one pass over all parents.
    pub fn build(doc: &Document, labeling: &Labeling) -> Self {
        let tag_count = doc.tags().len();
        let mut rows: Vec<HashMap<(Pid, TagId), OrderCell>> = vec![HashMap::new(); tag_count];
        // Scratch: first/last sibling position per tag, reset per parent.
        let mut first = vec![usize::MAX; tag_count];
        let mut last = vec![usize::MAX; tag_count];
        let mut touched: Vec<usize> = Vec::new();

        for parent in doc.node_ids() {
            let children = doc.children(parent);
            if children.len() < 2 {
                continue;
            }
            for (k, &c) in children.iter().enumerate() {
                let t = doc.tag(c).index();
                if first[t] == usize::MAX {
                    first[t] = k;
                    touched.push(t);
                }
                last[t] = k;
            }
            for (k, &c) in children.iter().enumerate() {
                let x = doc.tag(c).index();
                let pid = labeling.pid(c);
                for &y in &touched {
                    let y_tag = TagId::from_index(y);
                    // `c` occurs before some Y sibling?
                    if last[y] > k {
                        rows[x].entry((pid, y_tag)).or_default().before += 1;
                    }
                    // `c` occurs after some Y sibling?
                    if first[y] < k {
                        rows[x].entry((pid, y_tag)).or_default().after += 1;
                    }
                }
            }
            for &t in &touched {
                first[t] = usize::MAX;
                last[t] = usize::MAX;
            }
            touched.clear();
        }
        PathOrderTable { rows }
    }

    /// Assembles a table from already-aggregated rows, one per tag in
    /// `TagId` index order. Cell iteration order is irrelevant downstream
    /// (the o-histogram lays cells out positionally by the p-histogram's
    /// pid order), so only the contents must match what
    /// [`build`](Self::build) computes — which is how the streaming ingest
    /// path can aggregate cells at element close events.
    pub fn from_rows(rows: Vec<HashMap<(Pid, TagId), OrderCell>>) -> Self {
        PathOrderTable { rows }
    }

    /// The cell for `X` elements with `pid` relative to sibling tag `y`.
    pub fn cell(&self, x: TagId, pid: Pid, y: TagId) -> OrderCell {
        self.rows
            .get(x.index())
            .and_then(|r| r.get(&(pid, y)))
            .copied()
            .unwrap_or_default()
    }

    /// Number of `X` elements with `pid` occurring before a `y` sibling.
    pub fn before_count(&self, x: TagId, pid: Pid, y: TagId) -> u64 {
        self.cell(x, pid, y).before
    }

    /// Number of `X` elements with `pid` occurring after a `y` sibling.
    pub fn after_count(&self, x: TagId, pid: Pid, y: TagId) -> u64 {
        self.cell(x, pid, y).after
    }

    /// All non-empty cells of tag `x`, unordered.
    pub fn cells_of(&self, x: TagId) -> impl Iterator<Item = (Pid, TagId, OrderCell)> + '_ {
        self.rows
            .get(x.index())
            .into_iter()
            .flat_map(|r| r.iter().map(|(&(p, y), &c)| (p, y, c)))
    }

    /// Number of tags (row groups).
    pub fn tag_count(&self) -> usize {
        self.rows.len()
    }

    /// Total number of non-empty `(tag, pid, sibling-tag)` cells, counting
    /// the two regions separately as the paper's grid does.
    pub fn nonzero_cells(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.values())
            .map(|c| usize::from(c.before > 0) + usize::from(c.after > 0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2b_path_order_for_b() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let table = PathOrderTable::build(&doc, &lab);
        let tags = doc.tags();
        let (b, c) = (tags.get("B").unwrap(), tags.get("C").unwrap());

        // p5 = 1000: the pid of the three plain B elements.
        let p5 = lab
            .interner
            .iter()
            .find(|(_, bits)| bits.to_string() == "1000")
            .map(|(p, _)| p)
            .unwrap();

        // Paper Example 3.2: one B(p5) before C, two B(p5) after C.
        assert_eq!(table.before_count(b, p5, c), 1);
        assert_eq!(table.after_count(b, p5, c), 2);

        // Symmetric view from C: one C before a B, two C after B? The
        // middle A has B,C,B (C both before and after a B); the last A has
        // C,B (C before B). So: C before B = 2, C after B = 1.
        let c_pids: Vec<Pid> = lab
            .interner
            .iter()
            .filter(|(_, bits)| {
                let s = bits.to_string();
                s == "0010" || s == "0011"
            })
            .map(|(p, _)| p)
            .collect();
        let before: u64 = c_pids.iter().map(|&p| table.before_count(c, p, b)).sum();
        let after: u64 = c_pids.iter().map(|&p| table.after_count(c, p, b)).sum();
        assert_eq!(before, 2);
        assert_eq!(after, 1);
    }

    #[test]
    fn both_sides_counted_twice() {
        // x between two ys: counted in both regions relative to y.
        let doc = xpe_xml::parse_document("<r><y/><x/><y/></r>").unwrap();
        let lab = Labeling::compute(&doc);
        let table = PathOrderTable::build(&doc, &lab);
        let tags = doc.tags();
        let (x, y) = (tags.get("x").unwrap(), tags.get("y").unwrap());
        let pid = lab.pid(doc.children(doc.root())[1]);
        assert_eq!(table.before_count(x, pid, y), 1);
        assert_eq!(table.after_count(x, pid, y), 1);
    }

    #[test]
    fn same_tag_siblings_count() {
        let doc = xpe_xml::parse_document("<r><x/><x/><x/></r>").unwrap();
        let lab = Labeling::compute(&doc);
        let table = PathOrderTable::build(&doc, &lab);
        let x = doc.tags().get("x").unwrap();
        let pid = lab.pid(doc.children(doc.root())[0]);
        // Two x's have an x after them; two have an x before them.
        assert_eq!(table.before_count(x, pid, x), 2);
        assert_eq!(table.after_count(x, pid, x), 2);
    }

    #[test]
    fn only_children_contribute_nothing() {
        let doc = xpe_xml::parse_document("<r><a><b/></a></r>").unwrap();
        let lab = Labeling::compute(&doc);
        let table = PathOrderTable::build(&doc, &lab);
        assert_eq!(table.nonzero_cells(), 0);
    }

    #[test]
    fn cells_of_enumerates_sparse_entries() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let table = PathOrderTable::build(&doc, &lab);
        let b = doc.tags().get("B").unwrap();
        let cells: Vec<_> = table.cells_of(b).collect();
        assert!(!cells.is_empty());
        for (_, _, c) in cells {
            assert!(c.before > 0 || c.after > 0);
        }
    }
}
