//! The o-histogram (paper §6, Figure 8, Algorithm 2).
//!
//! Summarizes each tag's path-order table as a set of rectangular buckets
//! `(x.start, y.start, x.end, y.end, frequency)` over a grid whose columns
//! are the tag's path ids *in p-histogram order* and whose rows are the
//! `+element` region (one row per tag, alphabetically) followed by the
//! `element+` region. Buckets grow from each uncovered non-empty cell —
//! first along the row, then across subsequent rows — while the box's
//! frequency deviation stays within the threshold.

use std::collections::HashMap;

use xpe_pathid::Pid;
use xpe_xml::{TagId, TagInterner};

use crate::order::PathOrderTable;
use crate::phistogram::PHistogramSet;

/// Which region of the path-order table a lookup addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// `+element`: X occurs before the sibling tag.
    Before,
    /// `element+`: X occurs after the sibling tag.
    After,
}

/// One rectangular bucket (coordinates are 0-based, inclusive).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OBucket {
    /// First column.
    pub x_start: u32,
    /// First row.
    pub y_start: u32,
    /// Last column (inclusive).
    pub x_end: u32,
    /// Last row (inclusive).
    pub y_end: u32,
    /// Average frequency over every cell in the box (zeros included).
    pub avg: f64,
}

impl OBucket {
    fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x_start && x <= self.x_end && y >= self.y_start && y <= self.y_end
    }
}

/// The o-histogram of one element tag.
#[derive(Clone, Debug, Default)]
pub struct OHistogram {
    buckets: Vec<OBucket>,
    /// Column of each path id (p-histogram order).
    col_of: HashMap<Pid, u32>,
}

impl OHistogram {
    /// Estimated `g(pid, y_tag)` for the given region; 0 when the cell is
    /// outside every bucket.
    pub fn count(&self, pid: Pid, y_row: u32) -> f64 {
        let Some(&x) = self.col_of.get(&pid) else {
            return 0.0;
        };
        self.buckets
            .iter()
            .find(|b| b.contains(x, y_row))
            .map(|b| b.avg)
            .unwrap_or(0.0)
    }

    /// The buckets of this histogram.
    pub fn buckets(&self) -> &[OBucket] {
        &self.buckets
    }

    /// Serializes the histogram (summary persistence).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        xpe_xml::wire::put_u32(buf, self.buckets.len() as u32);
        for b in &self.buckets {
            xpe_xml::wire::put_u32(buf, b.x_start);
            xpe_xml::wire::put_u32(buf, b.y_start);
            xpe_xml::wire::put_u32(buf, b.x_end);
            xpe_xml::wire::put_u32(buf, b.y_end);
            xpe_xml::wire::put_f64(buf, b.avg);
        }
        xpe_xml::wire::put_u32(buf, self.col_of.len() as u32);
        let mut cols: Vec<(Pid, u32)> = self.col_of.iter().map(|(&p, &c)| (p, c)).collect();
        cols.sort_unstable_by_key(|&(p, _)| p);
        for (p, c) in cols {
            xpe_xml::wire::put_u32(buf, p.index() as u32);
            xpe_xml::wire::put_u32(buf, c);
        }
    }

    /// Deserializes a histogram encoded by [`encode`](Self::encode).
    pub fn decode(r: &mut xpe_xml::wire::Reader<'_>) -> Result<Self, xpe_xml::wire::WireError> {
        let nb = r.u32()? as usize;
        let mut buckets = Vec::with_capacity(xpe_xml::wire::cap_alloc(nb));
        for _ in 0..nb {
            buckets.push(OBucket {
                x_start: r.u32()?,
                y_start: r.u32()?,
                x_end: r.u32()?,
                y_end: r.u32()?,
                avg: r.f64()?,
            });
        }
        let nc = r.u32()? as usize;
        let mut col_of = HashMap::with_capacity(xpe_xml::wire::cap_alloc(nc));
        for _ in 0..nc {
            let p = Pid::from_index(r.u32()? as usize);
            let c = r.u32()?;
            col_of.insert(p, c);
        }
        Ok(OHistogram { buckets, col_of })
    }

    /// Byte size: five fields of the paper's bucket format — four 2-byte
    /// coordinates plus a 4-byte frequency.
    pub fn size_bytes(&self) -> usize {
        self.buckets.len() * 12
    }
}

/// O-histograms for every tag, plus the shared row layout.
#[derive(Clone, Debug)]
pub struct OHistogramSet {
    per_tag: Vec<OHistogram>,
    /// Alphabetical rank of every tag (row order within a region).
    rank_of: Vec<u32>,
    tag_count: usize,
    variance: f64,
}

impl OHistogramSet {
    /// Builds one histogram per tag (paper Algorithm 2). Columns follow
    /// each tag's p-histogram pid order; rows are the `+element` region
    /// rows (tags alphabetically) followed by the `element+` region rows.
    pub fn build(
        order: &PathOrderTable,
        phist: &PHistogramSet,
        tags: &TagInterner,
        variance: f64,
    ) -> Self {
        Self::build_impl(order, phist, tags, variance, true, 1)
    }

    /// Like [`build`](Self::build) but fans the independent per-tag grids
    /// across `threads` workers (`0` = one per core, `1` = serial).
    /// Results merge in tag order, so the output is bit-identical to the
    /// serial build.
    pub fn build_with_threads(
        order: &PathOrderTable,
        phist: &PHistogramSet,
        tags: &TagInterner,
        variance: f64,
        threads: usize,
    ) -> Self {
        Self::build_impl(order, phist, tags, variance, true, threads)
    }

    /// Ablation variant: one bucket per non-empty cell — no box growth.
    /// Lossless like variance 0, but without the space savings of merged
    /// rectangles; the `ablation` harness uses it to quantify what
    /// Algorithm 2's box growth buys.
    pub fn build_single_cell(
        order: &PathOrderTable,
        phist: &PHistogramSet,
        tags: &TagInterner,
    ) -> Self {
        Self::build_impl(order, phist, tags, 0.0, false, 1)
    }

    fn build_impl(
        order: &PathOrderTable,
        phist: &PHistogramSet,
        tags: &TagInterner,
        variance: f64,
        grow: bool,
        threads: usize,
    ) -> Self {
        let tag_count = tags.len();
        let mut by_name: Vec<TagId> = tags.iter().map(|(t, _)| t).collect();
        by_name.sort_by_key(|&t| tags.name(t));
        let mut rank_of = vec![0u32; tag_count];
        for (rank, &t) in by_name.iter().enumerate() {
            rank_of[t.index()] = rank as u32;
        }

        let rank_of_ref = &rank_of;
        let per_tag = xpe_par::par_map_indexed(threads, tag_count, |x| {
            let x_tag = TagId::from_index(x);
            let col_of: HashMap<Pid, u32> = phist
                .histogram(x_tag)
                .entries()
                .enumerate()
                .map(|(i, (p, _))| (p, i as u32))
                .collect();
            let cols = col_of.len();
            let rows = 2 * tag_count;
            let mut grid = vec![0.0f64; rows * cols];
            for (pid, y_tag, cell) in order.cells_of(x_tag) {
                let Some(&col) = col_of.get(&pid) else {
                    continue;
                };
                let before_row = rank_of_ref[y_tag.index()] as usize;
                let after_row = tag_count + before_row;
                if cell.before > 0 {
                    grid[before_row * cols + col as usize] = cell.before as f64;
                }
                if cell.after > 0 {
                    grid[after_row * cols + col as usize] = cell.after as f64;
                }
            }
            let buckets = if grow {
                build_buckets(&grid, rows, cols, variance)
            } else {
                single_cell_buckets(&grid, rows, cols)
            };
            OHistogram { buckets, col_of }
        });

        OHistogramSet {
            per_tag,
            rank_of,
            tag_count,
            variance,
        }
    }

    /// Estimated number of `x_tag` elements with `pid` occurring
    /// before/after a `y_tag` sibling.
    pub fn count(&self, x_tag: TagId, pid: Pid, y_tag: TagId, region: Region) -> f64 {
        let rank = self.rank_of[y_tag.index()];
        let row = match region {
            Region::Before => rank,
            Region::After => self.tag_count as u32 + rank,
        };
        self.per_tag[x_tag.index()].count(pid, row)
    }

    /// The histogram of one tag.
    pub fn histogram(&self, tag: TagId) -> &OHistogram {
        &self.per_tag[tag.index()]
    }

    /// Serializes the set (summary persistence).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        xpe_xml::wire::put_f64(buf, self.variance);
        xpe_xml::wire::put_u32(buf, self.tag_count as u32);
        for &rank in &self.rank_of {
            xpe_xml::wire::put_u32(buf, rank);
        }
        for h in &self.per_tag {
            h.encode(buf);
        }
    }

    /// Deserializes a set encoded by [`encode`](Self::encode).
    pub fn decode(r: &mut xpe_xml::wire::Reader<'_>) -> Result<Self, xpe_xml::wire::WireError> {
        let variance = r.f64()?;
        let tag_count = r.u32()? as usize;
        let mut rank_of = Vec::with_capacity(xpe_xml::wire::cap_alloc(tag_count));
        for _ in 0..tag_count {
            rank_of.push(r.u32()?);
        }
        let mut per_tag = Vec::with_capacity(xpe_xml::wire::cap_alloc(tag_count));
        for _ in 0..tag_count {
            per_tag.push(OHistogram::decode(r)?);
        }
        Ok(OHistogramSet {
            per_tag,
            rank_of,
            tag_count,
            variance,
        })
    }

    /// The construction threshold.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Total byte size across tags.
    pub fn size_bytes(&self) -> usize {
        self.per_tag.iter().map(OHistogram::size_bytes).sum()
    }

    /// Total bucket count across tags.
    pub fn bucket_count(&self) -> usize {
        self.per_tag.iter().map(|h| h.buckets.len()).sum()
    }
}

/// The bucket-growing pass of Algorithm 2 on a dense row-major grid.
///
/// Exposed within the crate for direct unit testing and for the ablation
/// benchmark that compares box growth against single-cell buckets.
pub(crate) fn build_buckets(grid: &[f64], rows: usize, cols: usize, variance: f64) -> Vec<OBucket> {
    let mut covered = vec![false; rows * cols];
    let mut buckets = Vec::new();
    if cols == 0 {
        return buckets;
    }
    let at = |y: usize, x: usize| grid[y * cols + x];

    for y in 0..rows {
        for x in 0..cols {
            if at(y, x) == 0.0 || covered[y * cols + x] {
                continue;
            }
            // Step 1: extend along the row while cells are non-empty,
            // uncovered, and the deviation stays within the threshold.
            let mut sum = at(y, x);
            let mut sumsq = sum * sum;
            let mut n = 1usize;
            let mut x_end = x;
            while x_end + 1 < cols {
                let v = at(y, x_end + 1);
                if v == 0.0 || covered[y * cols + x_end + 1] {
                    break;
                }
                let (ns, nsq, nn) = (sum + v, sumsq + v * v, n + 1);
                if deviation(ns, nsq, nn) > variance {
                    break;
                }
                sum = ns;
                sumsq = nsq;
                n = nn;
                x_end += 1;
            }
            // Step 2: extend the box to subsequent rows until a fully
            // empty row segment, a covered cell, or a deviation overflow.
            let mut y_end = y;
            'rows: while y_end + 1 < rows {
                let ny = y_end + 1;
                let mut rsum = 0.0;
                let mut rsumsq = 0.0;
                let mut any = false;
                for cx in x..=x_end {
                    if covered[ny * cols + cx] {
                        break 'rows;
                    }
                    let v = at(ny, cx);
                    if v != 0.0 {
                        any = true;
                    }
                    rsum += v;
                    rsumsq += v * v;
                }
                if !any {
                    break;
                }
                let (ns, nsq, nn) = (sum + rsum, sumsq + rsumsq, n + (x_end - x + 1));
                if deviation(ns, nsq, nn) > variance {
                    break;
                }
                sum = ns;
                sumsq = nsq;
                n = nn;
                y_end = ny;
            }
            for cy in y..=y_end {
                for cx in x..=x_end {
                    covered[cy * cols + cx] = true;
                }
            }
            buckets.push(OBucket {
                x_start: x as u32,
                y_start: y as u32,
                x_end: x_end as u32,
                y_end: y_end as u32,
                avg: sum / n as f64,
            });
        }
    }
    buckets
}

/// One bucket per non-empty cell (the no-box-growth ablation).
fn single_cell_buckets(grid: &[f64], rows: usize, cols: usize) -> Vec<OBucket> {
    let mut buckets = Vec::new();
    if cols == 0 {
        return buckets;
    }
    for y in 0..rows {
        for x in 0..cols {
            let v = grid[y * cols + x];
            if v != 0.0 {
                buckets.push(OBucket {
                    x_start: x as u32,
                    y_start: y as u32,
                    x_end: x as u32,
                    y_end: y as u32,
                    avg: v,
                });
            }
        }
    }
    buckets
}

fn deviation(sum: f64, sumsq: f64, n: usize) -> f64 {
    let k = n as f64;
    (sumsq / k - (sum / k) * (sum / k)).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::PathIdFrequencyTable;
    use xpe_pathid::Labeling;

    fn grid(rows: usize, cols: usize, cells: &[(usize, usize, f64)]) -> Vec<f64> {
        let mut g = vec![0.0; rows * cols];
        for &(y, x, v) in cells {
            g[y * cols + x] = v;
        }
        g
    }

    #[test]
    fn single_cells_become_single_buckets_at_variance_0() {
        let g = grid(3, 3, &[(0, 0, 1.0), (2, 2, 5.0)]);
        let b = build_buckets(&g, 3, 3, 0.0);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].avg, 1.0);
        assert_eq!(b[1].avg, 5.0);
    }

    #[test]
    fn row_extension_merges_equal_neighbours() {
        let g = grid(2, 4, &[(0, 0, 3.0), (0, 1, 3.0), (0, 2, 3.0)]);
        let b = build_buckets(&g, 2, 4, 0.0);
        assert_eq!(b.len(), 1);
        assert_eq!((b[0].x_start, b[0].x_end), (0, 2));
        assert_eq!(b[0].avg, 3.0);
    }

    #[test]
    fn row_extension_stops_at_empty_cell() {
        let g = grid(1, 5, &[(0, 0, 2.0), (0, 1, 2.0), (0, 3, 2.0)]);
        let b = build_buckets(&g, 1, 5, 10.0);
        assert_eq!(b.len(), 2, "gap splits buckets");
    }

    #[test]
    fn box_extension_spans_rows() {
        let g = grid(3, 2, &[(0, 0, 4.0), (0, 1, 4.0), (1, 0, 4.0), (1, 1, 4.0)]);
        let b = build_buckets(&g, 3, 2, 0.0);
        assert_eq!(b.len(), 1);
        assert_eq!((b[0].y_start, b[0].y_end), (0, 1));
    }

    #[test]
    fn box_extension_respects_variance() {
        let g = grid(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 100.0), (1, 1, 100.0)],
        );
        let b = build_buckets(&g, 2, 2, 0.5);
        assert_eq!(b.len(), 2, "second row deviates too much");
    }

    #[test]
    fn box_average_includes_zero_cells() {
        // Row 1 has one filled and one empty cell; merging makes avg 3.
        let g = grid(2, 2, &[(0, 0, 4.0), (0, 1, 4.0), (1, 0, 4.0)]);
        let b = build_buckets(&g, 2, 2, 2.0);
        assert_eq!(b.len(), 1);
        assert!((b[0].avg - 3.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_is_complete_and_disjoint() {
        let g = grid(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 1, 3.0),
                (2, 3, 9.0),
                (3, 0, 4.0),
            ],
        );
        for v in [0.0, 1.0, 5.0, 100.0] {
            let buckets = build_buckets(&g, 4, 4, v);
            // Every non-empty cell is in exactly one bucket.
            for y in 0..4u32 {
                for x in 0..4u32 {
                    let covering = buckets.iter().filter(|b| b.contains(x, y)).count();
                    if g[(y * 4 + x) as usize] != 0.0 {
                        assert_eq!(covering, 1, "cell ({x},{y}) at v={v}");
                    } else {
                        assert!(covering <= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn set_reproduces_figure_2b_at_variance_0() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let freq = PathIdFrequencyTable::build(&doc, &lab);
        let order = PathOrderTable::build(&doc, &lab);
        let phist = PHistogramSet::build(&freq, 0.0);
        let ohist = OHistogramSet::build(&order, &phist, doc.tags(), 0.0);

        let tags = doc.tags();
        let (b, c) = (tags.get("B").unwrap(), tags.get("C").unwrap());
        let p5 = lab
            .interner
            .iter()
            .find(|(_, bits)| bits.to_string() == "1000")
            .map(|(p, _)| p)
            .unwrap();
        // Example 3.2 / 5.1: one B(p5) before C, two B(p5) after C.
        assert_eq!(ohist.count(b, p5, c, Region::Before), 1.0);
        assert_eq!(ohist.count(b, p5, c, Region::After), 2.0);
        // Unrelated cells read as zero.
        let f = tags.get("F").unwrap();
        assert_eq!(ohist.count(b, p5, f, Region::Before), 0.0);
    }

    #[test]
    fn size_shrinks_with_variance() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let freq = PathIdFrequencyTable::build(&doc, &lab);
        let order = PathOrderTable::build(&doc, &lab);
        let phist = PHistogramSet::build(&freq, 0.0);
        let tight = OHistogramSet::build(&order, &phist, doc.tags(), 0.0);
        let loose = OHistogramSet::build(&order, &phist, doc.tags(), 100.0);
        assert!(loose.bucket_count() <= tight.bucket_count());
        assert!(loose.size_bytes() <= tight.size_bytes());
        assert!(tight.size_bytes() > 0);
    }
}
