//! Depth-0 pid precomputation for root-pinned queries.
//!
//! A `/`-rooted query pins its first step to the document root, which the
//! join implements by keeping only path ids that carry the step's tag at
//! depth 0. Deciding that per pid means walking the pid's encoding bits
//! and resolving each path — work that depends only on the summary, not
//! the query, yet the join used to redo it for every `/`-rooted query in
//! the workload (and for every pid of the root step's tag). This index
//! answers it once per summary.

use std::collections::{HashMap, HashSet};

use xpe_pathid::{EncodingTable, Pid, PidInterner};
use xpe_xml::TagId;

/// For each tag occurring at depth 0 of some root-to-leaf path, the set of
/// pids carrying at least one such path. In a single-rooted document only
/// the root tag has an entry, covering every pid.
#[derive(Clone, Debug, Default)]
pub struct RootPidIndex {
    by_tag: HashMap<TagId, HashSet<Pid>>,
}

impl RootPidIndex {
    /// Builds the index by resolving every pid's encoding bits once.
    pub fn build(encoding: &EncodingTable, pids: &PidInterner) -> Self {
        let mut by_tag: HashMap<TagId, HashSet<Pid>> = HashMap::new();
        for (pid, bits) in pids.iter() {
            for enc in bits.ones() {
                if let Some(&first) = encoding.path(enc).first() {
                    by_tag.entry(first).or_default().insert(pid);
                }
            }
        }
        RootPidIndex { by_tag }
    }

    /// Whether `pid` has a root-to-leaf path starting with `tag` — the
    /// precomputed form of
    /// `pids.bits(pid).ones().any(|enc| encoding.path(enc).first() == Some(&tag))`.
    #[inline]
    pub fn pid_starts_with(&self, tag: TagId, pid: Pid) -> bool {
        self.by_tag.get(&tag).is_some_and(|s| s.contains(&pid))
    }

    /// Number of tags occurring at depth 0 (1 for single-rooted documents).
    pub fn tag_count(&self) -> usize {
        self.by_tag.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_pathid::Labeling;

    #[test]
    fn matches_per_query_rederivation() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let idx = RootPidIndex::build(&lab.encoding, &lab.interner);
        for (t, _) in doc.tags().iter() {
            for (pid, bits) in lab.interner.iter() {
                let rederived = bits
                    .ones()
                    .any(|enc| lab.encoding.path(enc).first() == Some(&t));
                assert_eq!(idx.pid_starts_with(t, pid), rederived, "{t:?} {pid:?}");
            }
        }
    }

    #[test]
    fn single_rooted_document_has_one_entry() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let idx = RootPidIndex::build(&lab.encoding, &lab.interner);
        assert_eq!(idx.tag_count(), 1);
        let root = doc.tags().get("Root").unwrap();
        // Every pid carries some path, and all paths start at Root.
        for (pid, _) in lab.interner.iter() {
            assert!(idx.pid_starts_with(root, pid));
        }
        let d = doc.tags().get("D").unwrap();
        for (pid, _) in lab.interner.iter() {
            assert!(!idx.pid_starts_with(d, pid), "D never sits at depth 0");
        }
    }
}
