//! Streaming summary construction: raw XML bytes → [`Summary`], without
//! materializing the document tree.
//!
//! [`Summary::build_streaming`] makes two passes over the input with
//! [`StreamParser`]: pass A ([`xpe_pathid::PathScan`]) fixes the tag
//! vocabulary and the encoding table (and thus the path-id width); pass B
//! ([`xpe_pathid::StreamLabeler`]) labels elements with an open-element
//! stack and retires each one into the accumulators below at its close
//! event. Peak live state is O(depth × width) parser/labeler stack plus
//! the output tables themselves — never O(node count) like the DOM path's
//! arena, per-node pid vector and child lists.
//!
//! The result is **bit-identical** to `Summary::build(parse(input))`:
//! every persisted component either comes out in the same order by
//! construction (tags intern at open events; leaf paths intern at leaf
//! close events, which occur in leaf pre-order) or is explicitly
//! reordered to the DOM's first-encounter pre-order using the minimal
//! pre-order index the labeler tracks per distinct pid (the interner
//! numbering and the frequency-table row order, whose ties the
//! p-histogram's stable sort exposes). The order table is keyed, not
//! ordered, so equal contents suffice.

use std::collections::HashMap;
use std::time::Instant;

use xpe_pathid::{PathIdTree, PathScan, Pid, StreamLabeler, StreamSink};
use xpe_xml::{ParseError, StreamEvent, StreamParser, TagId};

use crate::freq::PathIdFrequencyTable;
use crate::ohistogram::OHistogramSet;
use crate::order::{OrderCell, PathOrderTable};
use crate::phistogram::PHistogramSet;
use crate::rootpids::RootPidIndex;
use crate::summary::{BuildTimings, Summary, SummaryConfig};

/// Accumulates the two exact statistics tables from retirement events.
/// Pids are the labeler's temporary ids until the final remap.
struct StatsSink {
    /// Per tag: pid → (frequency, minimal pre-order index).
    freq: Vec<HashMap<Pid, (u64, u64)>>,
    /// Per tag: the path-order cells.
    order: Vec<HashMap<(Pid, TagId), OrderCell>>,
}

impl StatsSink {
    fn new(tag_count: usize) -> Self {
        StatsSink {
            freq: vec![HashMap::new(); tag_count],
            order: vec![HashMap::new(); tag_count],
        }
    }
}

impl StreamSink for StatsSink {
    fn element(&mut self, tag: TagId, pid: Pid, pre_index: u64) {
        let entry = self.freq[tag.index()].entry(pid).or_insert((0, pre_index));
        entry.0 += 1;
        entry.1 = entry.1.min(pre_index);
    }

    fn sibling_after(&mut self, x: TagId, pid: Pid, y: TagId) {
        self.order[x.index()].entry((pid, y)).or_default().after += 1;
    }

    fn sibling_before(&mut self, x: TagId, pid: Pid, y: TagId, count: u64) {
        self.order[x.index()].entry((pid, y)).or_default().before += count;
    }
}

impl Summary {
    /// Builds the full summary directly from XML text, bit-identically to
    /// `Summary::build(&parse_document(input)?, config)` but with memory
    /// bounded by document depth × distinct-path count instead of node
    /// count. Malformed input surfaces the same [`ParseError`] the DOM
    /// parser reports.
    pub fn build_streaming(input: &str, config: SummaryConfig) -> Result<Self, ParseError> {
        let t0 = Instant::now();

        // Pass A: vocabulary. Fixes tag ids, path encodings, pid width.
        let mut scan = PathScan::new();
        let mut parser = StreamParser::new(input.as_bytes());
        while let Some(event) = parser.next_event()? {
            match event {
                StreamEvent::Open { name } => scan.open(&name),
                StreamEvent::Close => scan.close(),
                StreamEvent::Text(_) => {}
            }
        }
        let (tags, encoding, elements) = scan.finish();

        // Pass B: label and retire every element at its close event.
        let mut labeler = StreamLabeler::new(&tags, &encoding);
        let mut sink = StatsSink::new(tags.len());
        let mut parser = StreamParser::new(input.as_bytes());
        while let Some(event) = parser.next_event()? {
            match event {
                StreamEvent::Open { name } => labeler.open(&name),
                StreamEvent::Close => labeler.close(&mut sink),
                StreamEvent::Text(_) => {}
            }
        }
        let labeling = labeler.finish();
        let collect_path = t0.elapsed();

        // Remap temporary pids to the final pre-order numbering and
        // restore the DOM tables' row orders.
        let t2 = Instant::now();
        let freq_rows: Vec<Vec<(Pid, u64)>> = sink
            .freq
            .into_iter()
            .map(|row| {
                let mut entries: Vec<(Pid, u64, u64)> = row
                    .into_iter()
                    .map(|(temp, (count, min_pre))| (labeling.resolve(temp), count, min_pre))
                    .collect();
                // First-encounter order within the tag = ascending minimal
                // pre-order index (unique per entry: an element has one
                // tag and one pid).
                entries.sort_by_key(|&(_, _, min_pre)| min_pre);
                entries.into_iter().map(|(p, c, _)| (p, c)).collect()
            })
            .collect();
        let freq = PathIdFrequencyTable::from_rows(freq_rows);
        let order_rows: Vec<HashMap<(Pid, TagId), OrderCell>> = sink
            .order
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|((temp, y), cell)| ((labeling.resolve(temp), y), cell))
                    .collect()
            })
            .collect();
        let order = PathOrderTable::from_rows(order_rows);
        let collect_order = t2.elapsed();

        let threads = config.effective_threads(elements as usize);
        let t1 = Instant::now();
        let phist = PHistogramSet::build_with_threads(&freq, config.p_variance, threads);
        let build_p = t1.elapsed();
        let t3 = Instant::now();
        let ohist =
            OHistogramSet::build_with_threads(&order, &phist, &tags, config.o_variance, threads);
        let build_o = t3.elapsed();

        let pid_tree = PathIdTree::new(&labeling.interner);
        let root_pids = RootPidIndex::build(&encoding, &labeling.interner);
        Ok(Summary {
            tags,
            encoding,
            pids: labeling.interner,
            pid_tree,
            phist,
            ohist,
            config,
            timings: BuildTimings {
                collect_path,
                build_p,
                collect_order,
                build_o,
            },
            root_pids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xml::parse_document;

    fn assert_bit_identical(input: &str, config: SummaryConfig) {
        let doc = parse_document(input).unwrap();
        let dom = Summary::build(&doc, config).to_bytes();
        let stream = Summary::build_streaming(input, config).unwrap().to_bytes();
        assert_eq!(dom, stream, "summaries diverged for {input:?}");
    }

    const FIG1: &str = "<Root><A><B><D/><D/><E/></B></A>\
                        <A><B><D/></B><C><E/></C><B><D/></B></A>\
                        <A><C><E/><F/></C></A></Root>";

    #[test]
    fn streaming_build_is_bit_identical_on_figure1() {
        for (pv, ov) in [(0.0, 0.0), (1.0, 2.0), (16.0, 16.0)] {
            assert_bit_identical(
                FIG1,
                SummaryConfig {
                    p_variance: pv,
                    o_variance: ov,
                    ..SummaryConfig::default()
                },
            );
        }
    }

    #[test]
    fn streaming_build_is_bit_identical_on_edge_shapes() {
        for input in [
            "<only/>",
            "<a><b/></a>",
            "<a>text<b/>more<b/>tail</a>",
            "<a><b><a><b><a/></b></a></b></a>",
            "<r><x/><y/><x/><z/><y/><x/></r>",
            "<r>  <x/>\n  <y/>\t<x/>  </r>",
        ] {
            assert_bit_identical(input, SummaryConfig::default());
        }
    }

    #[test]
    fn streaming_surfaces_parse_errors() {
        let dom_err = parse_document("<a><b></a>").unwrap_err();
        let stream_err =
            Summary::build_streaming("<a><b></a>", SummaryConfig::default()).unwrap_err();
        assert_eq!(dom_err, stream_err);
    }

    #[test]
    fn effective_threads_demotes_small_documents() {
        let config = SummaryConfig::default().with_threads(8);
        assert_eq!(config.effective_threads(10), 1);
        assert_eq!(
            config.effective_threads(crate::summary::DEFAULT_PARALLEL_THRESHOLD),
            8
        );
        let forced = config.with_parallel_threshold(0);
        assert_eq!(forced.effective_threads(10), 8);
    }
}
