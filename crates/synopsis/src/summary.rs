//! The complete estimation summary: everything the estimator keeps after
//! the document itself is thrown away.
//!
//! Mirrors the paper's storage layout: encoding table + path-id binary tree
//! (+ interned ids) + p-histograms for path information, and o-histograms
//! for order information. Construction is timed per phase so the harness
//! can reproduce Tables 4 and 5.

use std::time::{Duration, Instant};

use xpe_pathid::{
    ContainmentAdjacency, EncodingTable, JoinIndexCache, Labeling, PathIdTree, Pid, PidInterner,
};
use xpe_xml::{Document, TagId, TagInterner};

use crate::freq::PathIdFrequencyTable;
use crate::ohistogram::{OHistogramSet, Region};
use crate::order::PathOrderTable;
use crate::phistogram::{PHistogram, PHistogramSet};
use crate::rootpids::RootPidIndex;

/// Construction thresholds (paper: p-histogram variance 0–2 and o-histogram
/// variance 0–4 "typically perform well").
#[derive(Clone, Copy, Debug)]
pub struct SummaryConfig {
    /// Intra-bucket deviation bound for p-histograms.
    pub p_variance: f64,
    /// Intra-bucket deviation bound for o-histograms.
    pub o_variance: f64,
    /// Worker threads for histogram construction: `1` builds serially
    /// (the default), `0` uses one worker per available core, any other
    /// value is taken literally. Per-tag histograms are independent, so
    /// the parallel build is bit-identical to the serial one.
    pub threads: usize,
    /// Documents below this many elements always build serially, whatever
    /// `threads` says: at small scale thread spawn/join overhead exceeds
    /// the per-tag histogram work (the bench harness measured parallel ≥
    /// serial on every small dataset), and serial and parallel builds are
    /// bit-identical anyway. Set to 0 to honor `threads` unconditionally.
    pub parallel_threshold: usize,
}

/// Default for [`SummaryConfig::parallel_threshold`]: roughly where the
/// per-tag histogram work starts to dwarf worker spawn/join overhead.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 50_000;

impl SummaryConfig {
    /// Returns the config with the construction thread count set.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the config with the serial-fallback threshold set.
    pub fn with_parallel_threshold(mut self, parallel_threshold: usize) -> Self {
        self.parallel_threshold = parallel_threshold;
        self
    }

    /// The thread count to actually build with for a document of
    /// `elements` elements: `threads`, demoted to serial below the
    /// threshold.
    pub fn effective_threads(&self, elements: usize) -> usize {
        if elements < self.parallel_threshold {
            1
        } else {
            self.threads
        }
    }
}

impl Default for SummaryConfig {
    fn default() -> Self {
        SummaryConfig {
            p_variance: 0.0,
            o_variance: 0.0,
            threads: 1,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

/// `threads` and `parallel_threshold` are execution knobs, not semantic
/// parameters: they never change the summary that gets built (and are not
/// persisted), so configs differing only in them compare equal.
impl PartialEq for SummaryConfig {
    fn eq(&self, other: &Self) -> bool {
        self.p_variance == other.p_variance && self.o_variance == other.o_variance
    }
}

/// Wall-clock cost of each construction phase (Tables 4 and 5).
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildTimings {
    /// Labeling the document and collecting the pathId-frequency table
    /// (Table 4 "Collecting Path Time").
    pub collect_path: Duration,
    /// Building all p-histograms (Table 4 "P-Histo Construction Time").
    pub build_p: Duration,
    /// Collecting the path-order table (Table 5 "Collecting Order Time").
    pub collect_order: Duration,
    /// Building all o-histograms (Table 5 "O-Histo Construction Time").
    pub build_o: Duration,
}

/// Byte sizes of every summary component (Tables 3–5, Figure 9).
#[derive(Clone, Copy, Debug, Default)]
pub struct SummarySizes {
    /// Encoding table.
    pub encoding_table: usize,
    /// Flat path-id table (for comparison with the tree).
    pub pid_table: usize,
    /// Compressed path-id binary tree.
    pub pid_tree: usize,
    /// All p-histograms.
    pub p_histograms: usize,
    /// All o-histograms.
    pub o_histograms: usize,
}

impl SummarySizes {
    /// Memory the proposed method needs for queries *without* order axes
    /// (what Figure 11 plots against XSketch): encoding table + pid tree +
    /// p-histograms.
    pub fn path_total(&self) -> usize {
        self.encoding_table + self.pid_tree + self.p_histograms
    }

    /// Everything, including order summaries.
    pub fn total(&self) -> usize {
        self.path_total() + self.o_histograms
    }
}

/// The estimation summary of one document.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Tag dictionary (shared vocabulary with the source document).
    pub tags: TagInterner,
    /// Distinct root-to-leaf paths.
    pub encoding: EncodingTable,
    /// Distinct path ids.
    pub pids: PidInterner,
    /// Compressed index over the ids.
    pub pid_tree: PathIdTree,
    /// Path summaries.
    pub phist: PHistogramSet,
    /// Order summaries.
    pub ohist: OHistogramSet,
    /// Thresholds used at construction.
    pub config: SummaryConfig,
    /// Wall-clock phase costs.
    pub timings: BuildTimings,
    /// Depth-0 pids per tag — derived from `encoding` + `pids` at
    /// construction (and on decode), never persisted. Lets the join's
    /// root-pinning check skip re-deriving path encodings per query.
    pub root_pids: RootPidIndex,
}

impl Summary {
    /// Builds the full summary for `doc`.
    pub fn build(doc: &Document, config: SummaryConfig) -> Self {
        let threads = config.effective_threads(doc.len());
        let t0 = Instant::now();
        let labeling = Labeling::compute(doc);
        let freq = PathIdFrequencyTable::build(doc, &labeling);
        let collect_path = t0.elapsed();

        // Phases stay sequential — only the per-tag work inside each
        // histogram phase fans out — so each BuildTimings field remains
        // that phase's wall-clock time under any thread count.
        let t1 = Instant::now();
        let phist = PHistogramSet::build_with_threads(&freq, config.p_variance, threads);
        let build_p = t1.elapsed();

        let t2 = Instant::now();
        let order = PathOrderTable::build(doc, &labeling);
        let collect_order = t2.elapsed();

        let t3 = Instant::now();
        let ohist = OHistogramSet::build_with_threads(
            &order,
            &phist,
            doc.tags(),
            config.o_variance,
            threads,
        );
        let build_o = t3.elapsed();

        let pid_tree = PathIdTree::new(&labeling.interner);
        let root_pids = RootPidIndex::build(&labeling.encoding, &labeling.interner);

        Summary {
            tags: doc.tags().clone(),
            encoding: labeling.encoding,
            pids: labeling.interner,
            pid_tree,
            phist,
            ohist,
            config,
            timings: BuildTimings {
                collect_path,
                build_p,
                collect_order,
                build_o,
            },
            root_pids,
        }
    }

    /// Rebuilds only the histograms at new thresholds, reusing the
    /// labeling-derived statistics. The harness uses this to sweep variance
    /// values without re-labeling multi-hundred-thousand-element documents.
    pub fn rebuild_histograms(doc: &Document, labeling: &Labeling, config: SummaryConfig) -> Self {
        let t0 = Instant::now();
        let freq = PathIdFrequencyTable::build(doc, labeling);
        let collect_path = t0.elapsed();
        let t2 = Instant::now();
        let order = PathOrderTable::build(doc, labeling);
        let collect_order = t2.elapsed();
        let mut s = Self::from_statistics(doc.tags(), labeling, &freq, &order, config);
        s.timings.collect_path = collect_path;
        s.timings.collect_order = collect_order;
        s
    }

    /// Builds a summary from already collected exact statistics — the
    /// cheapest path for variance sweeps over large documents (only the
    /// histograms are rebuilt). `collect_*` timings are zero; the
    /// histogram-construction timings are measured.
    pub fn from_statistics(
        tags: &TagInterner,
        labeling: &Labeling,
        freq: &PathIdFrequencyTable,
        order: &PathOrderTable,
        config: SummaryConfig,
    ) -> Self {
        let threads = config.effective_threads(freq.total_elements() as usize);
        let t1 = Instant::now();
        let phist = PHistogramSet::build_with_threads(freq, config.p_variance, threads);
        let build_p = t1.elapsed();
        let t3 = Instant::now();
        let ohist =
            OHistogramSet::build_with_threads(order, &phist, tags, config.o_variance, threads);
        let build_o = t3.elapsed();
        Summary {
            tags: tags.clone(),
            encoding: labeling.encoding.clone(),
            pids: labeling.interner.clone(),
            pid_tree: PathIdTree::new(&labeling.interner),
            phist,
            ohist,
            config,
            timings: BuildTimings {
                collect_path: Duration::ZERO,
                build_p,
                collect_order: Duration::ZERO,
                build_o,
            },
            root_pids: RootPidIndex::build(&labeling.encoding, &labeling.interner),
        }
    }

    /// The p-histogram of `tag`, or `None` for a tag absent from the
    /// document (whose selectivity is trivially zero).
    pub fn phistogram(&self, tag: &str) -> Option<&PHistogram> {
        self.tags.get(tag).map(|t| self.phist.histogram(t))
    }

    /// Total (histogram-estimated) frequency of `tag` across every path
    /// id — the hard ceiling any selectivity estimate for a `tag`-target
    /// query may reach, since a query target never selects more nodes than
    /// the document holds of its tag. Zero for absent tags.
    pub fn tag_total(&self, tag: &str) -> f64 {
        self.phistogram(tag)
            .map(|h| h.entries().map(|(_, f)| f).sum())
            .unwrap_or(0.0)
    }

    /// Estimated `g(pid, y_tag)` from the order summaries.
    pub fn order_count(&self, x_tag: TagId, pid: Pid, y_tag: TagId, region: Region) -> f64 {
        self.ohist.count(x_tag, pid, y_tag, region)
    }

    /// The containment adjacency of `(tag_u, tag_v, child_axis)` over this
    /// summary's encoding table and interned pids, built through (and
    /// memoized in) `cache` — the per-summary hook the indexed join kernel
    /// resolves edges against.
    pub fn adjacency(
        &self,
        cache: &JoinIndexCache,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> std::sync::Arc<ContainmentAdjacency> {
        cache.get(&self.encoding, &self.pids, tag_u, tag_v, child_axis)
    }

    /// Byte sizes of every component.
    pub fn sizes(&self) -> SummarySizes {
        SummarySizes {
            encoding_table: self.encoding.size_bytes(),
            pid_table: self.pids.table_size_bytes(),
            pid_tree: self.pid_tree.size_bytes(),
            p_histograms: self.phist.size_bytes(),
            o_histograms: self.ohist.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_summary() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let s = Summary::build(&doc, SummaryConfig::default());
        assert_eq!(s.encoding.len(), 4);
        assert_eq!(s.pids.len(), 9);
        assert_eq!(s.pid_tree.len(), 9);
        let sizes = s.sizes();
        assert!(sizes.encoding_table > 0);
        assert!(sizes.p_histograms > 0);
        assert!(sizes.o_histograms > 0);
        assert_eq!(
            sizes.total(),
            sizes.encoding_table + sizes.pid_tree + sizes.p_histograms + sizes.o_histograms
        );
    }

    #[test]
    fn histogram_lookup_through_summary() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let s = Summary::build(&doc, SummaryConfig::default());
        let d_hist = s.phistogram("D").unwrap();
        // D occurs 4 times with one pid.
        let total: f64 = d_hist.entries().map(|(_, f)| f).sum();
        assert_eq!(total, 4.0);
        assert!(s.phistogram("Nope").is_none());
        assert_eq!(s.tag_total("D"), 4.0);
        assert_eq!(s.tag_total("Nope"), 0.0);
    }

    #[test]
    fn variance_trades_size_for_accuracy() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let exact = Summary::build(
            &doc,
            SummaryConfig {
                p_variance: 0.0,
                o_variance: 0.0,
                ..SummaryConfig::default()
            },
        );
        let coarse = Summary::build(
            &doc,
            SummaryConfig {
                p_variance: 10.0,
                o_variance: 10.0,
                ..SummaryConfig::default()
            },
        );
        assert!(coarse.sizes().p_histograms <= exact.sizes().p_histograms);
        assert!(coarse.sizes().o_histograms <= exact.sizes().o_histograms);
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let labeling = Labeling::compute(&doc);
        let cfg = SummaryConfig {
            p_variance: 1.0,
            o_variance: 2.0,
            ..SummaryConfig::default()
        };
        let fresh = Summary::build(&doc, cfg);
        let rebuilt = Summary::rebuild_histograms(&doc, &labeling, cfg);
        assert_eq!(fresh.sizes().p_histograms, rebuilt.sizes().p_histograms);
        assert_eq!(fresh.sizes().o_histograms, rebuilt.sizes().o_histograms);
    }
}
