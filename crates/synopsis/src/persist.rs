//! Summary persistence.
//!
//! A summary is built once (over a possibly multi-million-element
//! document) and consulted forever after; [`Summary::to_bytes`] /
//! [`Summary::from_bytes`] let applications ship it without the document.
//! The payload is the versioned little-endian encoding of
//! [`xpe_xml::wire`]; the path-id binary tree is rebuilt from the interned
//! ids on load (it is derived data), and build timings are not persisted.
//!
//! # Integrity envelope (format version 2)
//!
//! ```text
//! magic "XPES" | version u32 | payload_len u64 | payload | crc32 u32
//! ```
//!
//! The CRC-32 trailer covers every preceding byte, and the explicit
//! payload length makes the expected total size computable from the first
//! 16 bytes. Verification runs **before** structural decode, so a
//! bit-flipped, truncated, or padded file is rejected with a typed
//! [`LoadError`] — [`ChecksumMismatch`](LoadError::ChecksumMismatch),
//! `Truncated`, or `TrailingBytes` respectively — without the decoder ever
//! walking attacker-controlled field lengths. Version 1 files (no length,
//! no checksum) are still accepted for compatibility; they get structural
//! validation only, which is exactly what they always had.

use std::io::{self, Read, Write};
use std::path::Path;

use xpe_pathid::{EncodingTable, PathIdTree, PidInterner};
use xpe_xml::wire::{self, Reader, WireError};
use xpe_xml::TagInterner;

use crate::ohistogram::OHistogramSet;
use crate::phistogram::PHistogramSet;
use crate::summary::{BuildTimings, Summary, SummaryConfig};

/// `"XPES"` — the serialized summary magic.
const MAGIC: u32 = 0x5345_5058;
/// Current format version: length-framed payload + CRC-32 trailer.
const VERSION: u32 = 2;
/// First version: bare payload, no length framing, no checksum. Still
/// readable; see the module docs.
const VERSION_UNCHECKED: u32 = 1;
/// Bytes before the payload in a v2 image: magic, version, payload_len.
const V2_HEADER_LEN: usize = 4 + 4 + 8;
/// Bytes after the payload in a v2 image: the CRC-32 trailer.
const V2_TRAILER_LEN: usize = 4;

/// Errors loading a serialized summary.
#[derive(Debug)]
pub enum LoadError {
    /// I/O failure reading the source.
    Io(io::Error),
    /// Structural decode failure.
    Wire(WireError),
    /// The CRC-32 trailer does not match the stored bytes: the file was
    /// corrupted (bit rot, torn write, transfer damage) after it was
    /// written.
    ChecksumMismatch {
        /// Checksum recorded in the file's trailer.
        stored: u32,
        /// Checksum computed over the file's actual bytes.
        computed: u32,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Wire(e) => write!(f, "decode error: {e}"),
            LoadError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file records {stored:#010x} but bytes hash to \
                 {computed:#010x} — the summary is corrupted"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<WireError> for LoadError {
    fn from(e: WireError) -> Self {
        LoadError::Wire(e)
    }
}

/// Validates the integrity envelope of a serialized summary and returns
/// `(version, payload)` with the payload borrowed from `bytes` — **the**
/// single envelope path: [`Summary::from_bytes`] decodes the returned
/// slice into owned structures, and [`SummaryView`](crate::SummaryView)
/// walks it in place without materializing anything.
///
/// For a v2 image this checks magic, version, the recorded payload
/// length against the actual byte count (short ⇒ `Truncated`, long ⇒
/// `TrailingBytes`), and the CRC-32 trailer — all before any structural
/// field is touched. A v1 image (no framing, no checksum) passes its
/// bare payload through for structural validation only.
pub(crate) fn validated_payload(bytes: &[u8]) -> Result<(u32, &[u8]), LoadError> {
    let mut r = Reader::new(bytes);
    if r.u32()? != MAGIC {
        return Err(WireError::BadHeader("not an xpe summary").into());
    }
    match r.u32()? {
        VERSION_UNCHECKED => Ok((VERSION_UNCHECKED, &bytes[8..])),
        VERSION => {
            let payload_len = r.u64()? as usize;
            let expected_total = V2_HEADER_LEN
                .checked_add(payload_len)
                .and_then(|n| n.checked_add(V2_TRAILER_LEN))
                .ok_or(WireError::Truncated)?;
            if bytes.len() < expected_total {
                return Err(WireError::Truncated.into());
            }
            if bytes.len() > expected_total {
                return Err(WireError::TrailingBytes {
                    remaining: bytes.len() - expected_total,
                }
                .into());
            }
            let body = &bytes[..expected_total - V2_TRAILER_LEN];
            let stored = u32::from_le_bytes(
                bytes[expected_total - V2_TRAILER_LEN..expected_total]
                    .try_into()
                    .expect("4 trailer bytes"),
            );
            let computed = wire::crc32(body);
            if stored != computed {
                return Err(LoadError::ChecksumMismatch { stored, computed });
            }
            Ok((VERSION, &body[V2_HEADER_LEN..]))
        }
        _ => Err(WireError::BadHeader("unsupported summary version").into()),
    }
}

impl Summary {
    /// Serializes the summary payload fields (everything between the
    /// header and the trailer), shared by every format version.
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        self.tags.encode(buf);
        self.encoding.encode(buf);
        self.pids.encode(buf);
        wire::put_f64(buf, self.config.p_variance);
        wire::put_f64(buf, self.config.o_variance);
        self.phist.encode(buf);
        self.ohist.encode(buf);
    }

    /// Serializes the summary in the current (checksummed) format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4096);
        wire::put_u32(&mut buf, MAGIC);
        wire::put_u32(&mut buf, VERSION);
        wire::put_u64(&mut buf, 0); // payload_len backpatched below
        self.encode_payload(&mut buf);
        let payload_len = (buf.len() - V2_HEADER_LEN) as u64;
        buf[8..16].copy_from_slice(&payload_len.to_le_bytes());
        let crc = wire::crc32(&buf);
        wire::put_u32(&mut buf, crc);
        buf
    }

    /// Decodes the payload fields; `r` must span exactly the payload.
    pub(crate) fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tags = TagInterner::decode(r)?;
        let encoding = EncodingTable::decode(r)?;
        // The pid width is redundant with the encoding table's path
        // count; cross-checking it here blocks a corrupt width from
        // sizing multi-gigabyte bit sequences during decode.
        let pids = PidInterner::decode_checked(r, encoding.len() as u32)?;
        // `threads` is an execution knob, deliberately not persisted: a
        // loaded summary builds nothing, so it takes the default.
        let config = SummaryConfig {
            p_variance: r.f64()?,
            o_variance: r.f64()?,
            ..SummaryConfig::default()
        };
        let phist = PHistogramSet::decode(r)?;
        let ohist = OHistogramSet::decode(r)?;
        r.expect_exhausted()?;
        let pid_tree = PathIdTree::new(&pids);
        // Derived indexes (like the p-histograms' entry lists) are rebuilt
        // from the decoded structures rather than persisted.
        let root_pids = crate::rootpids::RootPidIndex::build(&encoding, &pids);
        Ok(Summary {
            tags,
            encoding,
            pids,
            pid_tree,
            phist,
            ohist,
            config,
            timings: BuildTimings::default(),
            root_pids,
        })
    }

    /// Deserializes a summary produced by [`to_bytes`](Self::to_bytes).
    ///
    /// Integrity is checked before structure: a version-2 image whose
    /// CRC-32 trailer disagrees with its bytes is rejected as
    /// [`LoadError::ChecksumMismatch`] without decoding any field, an
    /// image shorter than its recorded length is `Truncated`, and one
    /// longer is `TrailingBytes` with the exact leftover count. Version-1
    /// images (written before the checksum existed) are accepted with
    /// structural validation only.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LoadError> {
        let (_, payload) = validated_payload(bytes)?;
        let mut r = Reader::new(payload);
        Ok(Self::decode_payload(&mut r)?)
    }

    /// Writes the serialized summary to `w`.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Writes the serialized summary to a file.
    pub fn save_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a summary from `r`. Every load route — this method,
    /// [`load_from_file`](Self::load_from_file), and
    /// [`SummaryView::to_summary`](crate::SummaryView::to_summary) —
    /// funnels through [`from_bytes`](Self::from_bytes) and its single
    /// envelope-validation path, so integrity and version handling can
    /// never diverge between them.
    pub fn load<R: Read>(mut r: R) -> Result<Self, LoadError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Reads a summary from a file; delegates to [`load`](Self::load).
    pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<Self, LoadError> {
        Self::load(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SummaryConfig;

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig {
                p_variance: 1.0,
                o_variance: 2.0,
                ..SummaryConfig::default()
            },
        )
    }

    /// Re-frames a v2 image as a version-1 image: strip the length field
    /// and the trailer, patch the version. The payload encoding itself is
    /// identical across versions.
    fn as_v1(v2: &[u8]) -> Vec<u8> {
        let mut v1 = Vec::with_capacity(v2.len() - 12);
        v1.extend_from_slice(&v2[..4]);
        v1.extend_from_slice(&VERSION_UNCHECKED.to_le_bytes());
        v1.extend_from_slice(&v2[V2_HEADER_LEN..v2.len() - V2_TRAILER_LEN]);
        v1
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let s = summary();
        let bytes = s.to_bytes();
        let s2 = Summary::from_bytes(&bytes).unwrap();

        assert_eq!(s2.tags.len(), s.tags.len());
        assert_eq!(s2.encoding.len(), s.encoding.len());
        assert_eq!(s2.pids.len(), s.pids.len());
        assert_eq!(s2.config, s.config);
        assert_eq!(s2.sizes().p_histograms, s.sizes().p_histograms);
        assert_eq!(s2.sizes().o_histograms, s.sizes().o_histograms);
        assert_eq!(s2.pid_tree.len(), s.pid_tree.len());

        // Histogram lookups agree for every (tag, pid).
        for (tag, _) in s.tags.iter() {
            let h1 = s.phist.histogram(tag);
            let h2 = s2.phist.histogram(tag);
            for (pid, f1) in h1.entries() {
                assert_eq!(h2.frequency(pid), Some(f1));
            }
        }
        // Pid bit sequences preserved with their handles.
        for (pid, bits) in s.pids.iter() {
            assert_eq!(s2.pids.bits(pid), bits);
        }
    }

    #[test]
    fn save_load_via_buffer() {
        let s = summary();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let s2 = Summary::load(&buf[..]).unwrap();
        assert_eq!(s2.pids.len(), s.pids.len());
    }

    #[test]
    fn corrupted_inputs_rejected() {
        let s = summary();
        let bytes = s.to_bytes();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Summary::from_bytes(&bad),
            Err(LoadError::Wire(WireError::BadHeader(_)))
        ));
        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            Summary::from_bytes(&bad),
            Err(LoadError::Wire(WireError::BadHeader(_)))
        ));
        // Truncation anywhere must not panic.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(Summary::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Every single-bit flip in the body of a v2 image is caught by the
    /// CRC before any field is decoded (header flips may be caught even
    /// earlier, as magic/version/length errors — but never accepted).
    #[test]
    fn bit_flips_rejected_by_checksum() {
        let s = summary();
        let bytes = s.to_bytes();
        // Payload flips: always a checksum mismatch, sampled for speed.
        for byte in (V2_HEADER_LEN..bytes.len() - V2_TRAILER_LEN).step_by(11) {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            assert!(
                matches!(
                    Summary::from_bytes(&bad),
                    Err(LoadError::ChecksumMismatch { .. })
                ),
                "payload flip at byte {byte}"
            );
        }
        // Trailer flips: the stored checksum itself is damaged.
        for byte in bytes.len() - V2_TRAILER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x01;
            assert!(matches!(
                Summary::from_bytes(&bad),
                Err(LoadError::ChecksumMismatch { .. })
            ));
        }
        // Length-field flips: size arithmetic rejects before the CRC runs.
        let mut bad = bytes.clone();
        bad[8] ^= 0x01;
        assert!(Summary::from_bytes(&bad).is_err());
    }

    /// Over-long inputs: a well-formed image followed by anything — a
    /// single zero byte, garbage, or a whole second summary — must be
    /// rejected with the dedicated variant, with the exact leftover count.
    #[test]
    fn trailing_garbage_rejected_with_remaining_count() {
        let s = summary();
        let bytes = s.to_bytes();

        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            Summary::from_bytes(&bad),
            Err(LoadError::Wire(WireError::TrailingBytes { remaining: 1 }))
        ));

        let mut bad = bytes.clone();
        bad.extend_from_slice(b"garbage!");
        assert!(matches!(
            Summary::from_bytes(&bad),
            Err(LoadError::Wire(WireError::TrailingBytes { remaining: 8 }))
        ));

        // Two concatenated summaries are not one summary.
        let mut bad = bytes.clone();
        bad.extend_from_slice(&bytes);
        let expect = bytes.len();
        assert!(matches!(
            Summary::from_bytes(&bad),
            Err(LoadError::Wire(WireError::TrailingBytes { remaining })) if remaining == expect
        ));
    }

    /// Version negotiation: a version-1 image (no length framing, no
    /// checksum) still loads, and observably equals its v2 counterpart.
    #[test]
    fn version_1_images_still_load() {
        let s = summary();
        let v2 = s.to_bytes();
        let v1 = as_v1(&v2);
        let loaded = Summary::from_bytes(&v1).unwrap();
        assert_eq!(loaded.pids.len(), s.pids.len());
        assert_eq!(loaded.config, s.config);
        // v1 keeps its historical behavior for over-long input: the
        // trailing-bytes check of the payload decoder.
        let mut long = v1.clone();
        long.push(7);
        assert!(matches!(
            Summary::from_bytes(&long),
            Err(LoadError::Wire(WireError::TrailingBytes { remaining: 1 }))
        ));
    }

    /// An inflated count field behind a recomputed (valid) checksum: the
    /// envelope passes, so the structural decoder must reject the lie
    /// itself — promptly, as `Truncated`, with its speculative
    /// preallocation capped at `wire::cap_alloc` instead of sized by the
    /// hostile count. Every u32 count in the image is swept.
    #[test]
    fn inflated_count_fields_rejected_without_count_sized_alloc() {
        let s = summary();
        let bytes = s.to_bytes();
        // Sweep 4-byte-aligned payload offsets, stamping u32::MAX over
        // each and re-signing the image. Offsets that were not a count
        // may fail any structural way (or, rarely, still decode when the
        // stamp lands in an f64 mantissa) — the property under test is
        // that no stamp panics, hangs, or aborts on allocation.
        for off in (V2_HEADER_LEN..bytes.len() - V2_TRAILER_LEN - 4).step_by(4) {
            let mut bad = bytes.clone();
            bad[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let body_len = bad.len() - V2_TRAILER_LEN;
            let crc = wire::crc32(&bad[..body_len]);
            bad[body_len..].copy_from_slice(&crc.to_le_bytes());
            let _ = Summary::from_bytes(&bad);
        }
        // And the canonical case — the very first count (tag count) —
        // must be the truncation diagnostic specifically.
        let mut bad = bytes.clone();
        bad[V2_HEADER_LEN..V2_HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let body_len = bad.len() - V2_TRAILER_LEN;
        let crc = wire::crc32(&bad[..body_len]);
        bad[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Summary::from_bytes(&bad),
            Err(LoadError::Wire(WireError::Truncated))
        ));
    }

    /// The recorded payload length is authoritative: shrinking the file
    /// below it is `Truncated`, not a checksum error, so the diagnostic
    /// tells the operator what actually happened.
    #[test]
    fn truncation_reports_truncated_not_checksum() {
        let s = summary();
        let bytes = s.to_bytes();
        for cut in [bytes.len() - 1, bytes.len() - 5, V2_HEADER_LEN + 3] {
            assert!(
                matches!(
                    Summary::from_bytes(&bytes[..cut]),
                    Err(LoadError::Wire(WireError::Truncated))
                ),
                "cut at {cut}"
            );
        }
    }
}
