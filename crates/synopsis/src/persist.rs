//! Summary persistence.
//!
//! A summary is built once (over a possibly multi-million-element
//! document) and consulted forever after; [`Summary::to_bytes`] /
//! [`Summary::from_bytes`] let applications ship it without the document.
//! The format is the versioned little-endian encoding of
//! [`xpe_xml::wire`]; the path-id binary tree is rebuilt from the interned
//! ids on load (it is derived data), and build timings are not persisted.

use std::io::{self, Read, Write};
use std::path::Path;

use xpe_pathid::{EncodingTable, PathIdTree, PidInterner};
use xpe_xml::wire::{self, Reader, WireError};
use xpe_xml::TagInterner;

use crate::ohistogram::OHistogramSet;
use crate::phistogram::PHistogramSet;
use crate::summary::{BuildTimings, Summary, SummaryConfig};

/// `"XPES"` — the serialized summary magic.
const MAGIC: u32 = 0x5345_5058;
/// Bump on any incompatible format change.
const VERSION: u32 = 1;

/// Errors loading a serialized summary.
#[derive(Debug)]
pub enum LoadError {
    /// I/O failure reading the source.
    Io(io::Error),
    /// Structural decode failure.
    Wire(WireError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Wire(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<WireError> for LoadError {
    fn from(e: WireError) -> Self {
        LoadError::Wire(e)
    }
}

impl Summary {
    /// Serializes the summary.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4096);
        wire::put_u32(&mut buf, MAGIC);
        wire::put_u32(&mut buf, VERSION);
        self.tags.encode(&mut buf);
        self.encoding.encode(&mut buf);
        self.pids.encode(&mut buf);
        wire::put_f64(&mut buf, self.config.p_variance);
        wire::put_f64(&mut buf, self.config.o_variance);
        self.phist.encode(&mut buf);
        self.ohist.encode(&mut buf);
        buf
    }

    /// Deserializes a summary produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(WireError::BadHeader("not an xpe summary"));
        }
        if r.u32()? != VERSION {
            return Err(WireError::BadHeader("unsupported summary version"));
        }
        let tags = TagInterner::decode(&mut r)?;
        let encoding = EncodingTable::decode(&mut r)?;
        let pids = PidInterner::decode(&mut r)?;
        // `threads` is an execution knob, deliberately not persisted: a
        // loaded summary builds nothing, so it takes the default.
        let config = SummaryConfig {
            p_variance: r.f64()?,
            o_variance: r.f64()?,
            ..SummaryConfig::default()
        };
        let phist = PHistogramSet::decode(&mut r)?;
        let ohist = OHistogramSet::decode(&mut r)?;
        r.expect_exhausted()?;
        let pid_tree = PathIdTree::new(&pids);
        // Derived indexes (like the p-histograms' entry lists) are rebuilt
        // from the decoded structures rather than persisted.
        let root_pids = crate::rootpids::RootPidIndex::build(&encoding, &pids);
        Ok(Summary {
            tags,
            encoding,
            pids,
            pid_tree,
            phist,
            ohist,
            config,
            timings: BuildTimings::default(),
            root_pids,
        })
    }

    /// Writes the serialized summary to `w`.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Writes the serialized summary to a file.
    pub fn save_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a summary from `r`.
    pub fn load<R: Read>(mut r: R) -> Result<Self, LoadError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Ok(Self::from_bytes(&bytes)?)
    }

    /// Reads a summary from a file.
    pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<Self, LoadError> {
        Ok(Self::from_bytes(&std::fs::read(path)?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SummaryConfig;

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig {
                p_variance: 1.0,
                o_variance: 2.0,
                ..SummaryConfig::default()
            },
        )
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let s = summary();
        let bytes = s.to_bytes();
        let s2 = Summary::from_bytes(&bytes).unwrap();

        assert_eq!(s2.tags.len(), s.tags.len());
        assert_eq!(s2.encoding.len(), s.encoding.len());
        assert_eq!(s2.pids.len(), s.pids.len());
        assert_eq!(s2.config, s.config);
        assert_eq!(s2.sizes().p_histograms, s.sizes().p_histograms);
        assert_eq!(s2.sizes().o_histograms, s.sizes().o_histograms);
        assert_eq!(s2.pid_tree.len(), s.pid_tree.len());

        // Histogram lookups agree for every (tag, pid).
        for (tag, _) in s.tags.iter() {
            let h1 = s.phist.histogram(tag);
            let h2 = s2.phist.histogram(tag);
            for (pid, f1) in h1.entries() {
                assert_eq!(h2.frequency(pid), Some(f1));
            }
        }
        // Pid bit sequences preserved with their handles.
        for (pid, bits) in s.pids.iter() {
            assert_eq!(s2.pids.bits(pid), bits);
        }
    }

    #[test]
    fn save_load_via_buffer() {
        let s = summary();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let s2 = Summary::load(&buf[..]).unwrap();
        assert_eq!(s2.pids.len(), s.pids.len());
    }

    #[test]
    fn corrupted_inputs_rejected() {
        let s = summary();
        let bytes = s.to_bytes();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Summary::from_bytes(&bad),
            Err(WireError::BadHeader(_))
        ));
        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            Summary::from_bytes(&bad),
            Err(WireError::BadHeader(_))
        ));
        // Truncation anywhere must not panic.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(Summary::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Over-long inputs: a well-formed payload followed by anything —
    /// a single zero byte, garbage, or a whole second summary — must be
    /// rejected with the dedicated variant, with the exact leftover count.
    #[test]
    fn trailing_garbage_rejected_with_remaining_count() {
        let s = summary();
        let bytes = s.to_bytes();

        let mut bad = bytes.clone();
        bad.push(0);
        assert_eq!(
            Summary::from_bytes(&bad).unwrap_err(),
            WireError::TrailingBytes { remaining: 1 },
        );

        let mut bad = bytes.clone();
        bad.extend_from_slice(b"garbage!");
        assert_eq!(
            Summary::from_bytes(&bad).unwrap_err(),
            WireError::TrailingBytes { remaining: 8 },
        );

        // Two concatenated summaries are not one summary.
        let mut bad = bytes.clone();
        bad.extend_from_slice(&bytes);
        assert_eq!(
            Summary::from_bytes(&bad).unwrap_err(),
            WireError::TrailingBytes {
                remaining: bytes.len()
            },
        );
    }
}
