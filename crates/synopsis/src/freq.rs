//! The pathId-frequency table (paper §3, Figure 2(a)).
//!
//! One row per distinct element tag, aggregating every path id the tag
//! occurs with and its frequency. This is the exact statistic the
//! p-histogram summarizes and the path join consumes.

use std::collections::HashMap;

use xpe_pathid::{Labeling, Pid};
use xpe_xml::{Document, TagId};

/// Exact per-tag `(path id, frequency)` lists.
#[derive(Clone, Debug)]
pub struct PathIdFrequencyTable {
    /// `rows[tag.index()]`: pids in first-encounter order with counts.
    rows: Vec<Vec<(Pid, u64)>>,
}

impl PathIdFrequencyTable {
    /// Aggregates the labeling of `doc` into per-tag rows.
    pub fn build(doc: &Document, labeling: &Labeling) -> Self {
        let mut maps: Vec<HashMap<Pid, u64>> = vec![HashMap::new(); doc.tags().len()];
        let mut orders: Vec<Vec<Pid>> = vec![Vec::new(); doc.tags().len()];
        for n in doc.node_ids() {
            let tag = doc.tag(n).index();
            let pid = labeling.pid(n);
            let entry = maps[tag].entry(pid).or_insert_with(|| {
                orders[tag].push(pid);
                0
            });
            *entry += 1;
        }
        let rows = orders
            .into_iter()
            .zip(maps)
            .map(|(order, map)| {
                order
                    .into_iter()
                    .map(|pid| (pid, map[&pid]))
                    .collect::<Vec<_>>()
            })
            .collect();
        PathIdFrequencyTable { rows }
    }

    /// Assembles a table from already-aggregated rows, one per tag in
    /// `TagId` index order; within a row, pids must be in the document's
    /// first-encounter order (what [`build`](Self::build) produces and the
    /// p-histogram's stable frequency sort ties break on). The streaming
    /// ingest path collects rows from close events and reorders them by
    /// minimal pre-order index before calling this.
    pub fn from_rows(rows: Vec<Vec<(Pid, u64)>>) -> Self {
        PathIdFrequencyTable { rows }
    }

    /// Total element count (every element carries exactly one tag and one
    /// pid, so the frequencies sum to the document size).
    pub fn total_elements(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&(_, f)| f)
            .sum()
    }

    /// The `(pid, frequency)` row of `tag`.
    pub fn row(&self, tag: TagId) -> &[(Pid, u64)] {
        self.rows.get(tag.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of tags (row count).
    pub fn tag_count(&self) -> usize {
        self.rows.len()
    }

    /// Total number of elements carrying `tag`.
    pub fn total_frequency(&self, tag: TagId) -> u64 {
        self.row(tag).iter().map(|&(_, f)| f).sum()
    }

    /// The exact frequency of `(tag, pid)`, 0 when the pair never occurs.
    pub fn frequency(&self, tag: TagId, pid: Pid) -> u64 {
        self.row(tag)
            .iter()
            .find(|&&(p, _)| p == pid)
            .map(|&(_, f)| f)
            .unwrap_or(0)
    }

    /// Total number of `(tag, pid)` entries across all rows.
    pub fn entry_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2a_rows() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let table = PathIdFrequencyTable::build(&doc, &lab);
        let tags = doc.tags();

        // D: {(p5, 4)} — one pid, frequency 4.
        let d_row = table.row(tags.get("D").unwrap());
        assert_eq!(d_row.len(), 1);
        assert_eq!(d_row[0].1, 4);
        assert_eq!(lab.interner.bits(d_row[0].0).to_string(), "1000");

        // B: {(p8, 1), (p5, 3)}.
        let b_row: Vec<(String, u64)> = table
            .row(tags.get("B").unwrap())
            .iter()
            .map(|&(p, f)| (lab.interner.bits(p).to_string(), f))
            .collect();
        assert_eq!(b_row.len(), 2);
        assert!(b_row.contains(&("1100".to_owned(), 1)));
        assert!(b_row.contains(&("1000".to_owned(), 3)));

        // A: three pids, frequency 1 each.
        let a_row = table.row(tags.get("A").unwrap());
        assert_eq!(a_row.len(), 3);
        assert!(a_row.iter().all(|&(_, f)| f == 1));

        // E: {(p4, 1), (p2, 2)}.
        let e_row: Vec<(String, u64)> = table
            .row(tags.get("E").unwrap())
            .iter()
            .map(|&(p, f)| (lab.interner.bits(p).to_string(), f))
            .collect();
        assert!(e_row.contains(&("0100".to_owned(), 1)));
        assert!(e_row.contains(&("0010".to_owned(), 2)));

        // Root: {(p9, 1)}.
        assert_eq!(table.total_frequency(tags.get("Root").unwrap()), 1);
    }

    #[test]
    fn totals_cover_every_element() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let table = PathIdFrequencyTable::build(&doc, &lab);
        let total: u64 = doc
            .tags()
            .iter()
            .map(|(t, _)| table.total_frequency(t))
            .sum();
        assert_eq!(total, doc.len() as u64);
    }

    #[test]
    fn frequency_lookup() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let table = PathIdFrequencyTable::build(&doc, &lab);
        let tags = doc.tags();
        let d = tags.get("D").unwrap();
        let (pid, f) = table.row(d)[0];
        assert_eq!(table.frequency(d, pid), f);
        // A pid D never carries reports zero.
        let root_pid = lab.pid(doc.root());
        assert_eq!(table.frequency(d, root_pid), 0);
    }
}
