//! The p-histogram (paper §6, Figure 7, Algorithm 1).
//!
//! One histogram per distinct element tag summarizes the tag's
//! pathId-frequency row. Buckets hold a set of path ids and their average
//! frequency; the intra-bucket frequency *variance* (the paper's formula is
//! a standard deviation) is bounded by the construction threshold `v`, so
//! `v = 0` stores exact frequencies (equal-frequency ids can still share a
//! bucket, which is what makes the structure compact even when lossless).

use std::collections::HashMap;

use xpe_pathid::Pid;
use xpe_xml::TagId;

use crate::freq::PathIdFrequencyTable;

/// One bucket of a [`PHistogram`].
#[derive(Clone, Debug)]
pub struct PBucket {
    /// Path ids grouped into this bucket, in frequency-sorted order.
    pub pids: Vec<Pid>,
    /// Average frequency of the bucket's ids.
    pub avg: f64,
}

/// The p-histogram of one element tag.
#[derive(Clone, Debug, Default)]
pub struct PHistogram {
    buckets: Vec<PBucket>,
    bucket_of: HashMap<Pid, u32>,
    // Flattened (pid, bucket-average) pairs in histogram order. Derived
    // from `buckets` at construction so the estimator's join loop can
    // borrow a contiguous slice instead of re-materializing the iterator
    // per node per query. Not persisted; rebuilt on decode.
    entry_list: Vec<(Pid, f64)>,
}

impl PHistogram {
    /// Builds the histogram from a `(pid, frequency)` row (paper
    /// Algorithm 1): sort by frequency, then greedily grow buckets while
    /// the intra-bucket deviation stays within `variance`.
    pub fn build(row: &[(Pid, u64)], variance: f64) -> Self {
        let mut sorted: Vec<(Pid, u64)> = row.to_vec();
        sorted.sort_by_key(|&(_, f)| f);

        let mut buckets: Vec<PBucket> = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            // Grow [i, j) while the deviation of the frequencies stays ≤ v.
            let mut sum = 0.0f64;
            let mut sumsq = 0.0f64;
            let mut j = i;
            while j < sorted.len() {
                let f = sorted[j].1 as f64;
                let k = (j - i + 1) as f64;
                let nsum = sum + f;
                let nsumsq = sumsq + f * f;
                let dev = (nsumsq / k - (nsum / k) * (nsum / k)).max(0.0).sqrt();
                if dev > variance && j > i {
                    break;
                }
                // A single element always fits (deviation 0).
                sum = nsum;
                sumsq = nsumsq;
                j += 1;
            }
            let pids: Vec<Pid> = sorted[i..j].iter().map(|&(p, _)| p).collect();
            let avg = sum / (j - i) as f64;
            buckets.push(PBucket { pids, avg });
            i = j;
        }

        PHistogram::from_buckets(buckets)
    }

    /// Ablation variant: equi-width bucketing — the frequency-sorted row is
    /// cut into `bucket_count` equal-population buckets regardless of
    /// intra-bucket skew. Used by the `ablation` harness to quantify what
    /// the paper's variance threshold buys at matched bucket counts.
    pub fn build_equi_width(row: &[(Pid, u64)], bucket_count: usize) -> Self {
        let mut sorted: Vec<(Pid, u64)> = row.to_vec();
        sorted.sort_by_key(|&(_, f)| f);
        let k = bucket_count.max(1).min(sorted.len().max(1));
        let mut buckets = Vec::with_capacity(k);
        if !sorted.is_empty() {
            let per = sorted.len().div_ceil(k);
            for chunk in sorted.chunks(per) {
                let avg = chunk.iter().map(|&(_, f)| f as f64).sum::<f64>() / chunk.len() as f64;
                buckets.push(PBucket {
                    pids: chunk.iter().map(|&(p, _)| p).collect(),
                    avg,
                });
            }
        }
        PHistogram::from_buckets(buckets)
    }

    /// Rebuilds a histogram from its buckets (persistence, ablations).
    pub fn from_buckets(buckets: Vec<PBucket>) -> Self {
        let mut bucket_of = HashMap::new();
        let mut entry_list = Vec::new();
        for (bi, b) in buckets.iter().enumerate() {
            for &p in &b.pids {
                bucket_of.insert(p, bi as u32);
                entry_list.push((p, b.avg));
            }
        }
        PHistogram {
            buckets,
            bucket_of,
            entry_list,
        }
    }

    /// Serializes the histogram (summary persistence).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        xpe_xml::wire::put_u32(buf, self.buckets.len() as u32);
        for b in &self.buckets {
            xpe_xml::wire::put_f64(buf, b.avg);
            xpe_xml::wire::put_u32(buf, b.pids.len() as u32);
            for p in &b.pids {
                xpe_xml::wire::put_u32(buf, p.index() as u32);
            }
        }
    }

    /// Deserializes a histogram encoded by [`encode`](Self::encode).
    pub fn decode(r: &mut xpe_xml::wire::Reader<'_>) -> Result<Self, xpe_xml::wire::WireError> {
        let nb = r.u32()? as usize;
        let mut buckets = Vec::with_capacity(xpe_xml::wire::cap_alloc(nb));
        for _ in 0..nb {
            let avg = r.f64()?;
            let np = r.u32()? as usize;
            let mut pids = Vec::with_capacity(xpe_xml::wire::cap_alloc(np));
            for _ in 0..np {
                pids.push(Pid::from_index(r.u32()? as usize));
            }
            buckets.push(PBucket { pids, avg });
        }
        Ok(PHistogram::from_buckets(buckets))
    }

    /// Estimated frequency of `pid`: the average of its bucket, or `None`
    /// if the tag never occurs with `pid`.
    pub fn frequency(&self, pid: Pid) -> Option<f64> {
        self.bucket_of
            .get(&pid)
            .map(|&bi| self.buckets[bi as usize].avg)
    }

    /// All path ids of this tag with their estimated frequencies, in
    /// histogram order (ascending bucket average). This is the pid order
    /// the o-histogram's columns use (paper Algorithm 2, step 1).
    pub fn entries(&self) -> impl Iterator<Item = (Pid, f64)> + '_ {
        self.entry_list.iter().copied()
    }

    /// [`entries`](Self::entries) as a borrowed contiguous slice — the
    /// zero-copy form the estimator's join loop seeds its lists from.
    pub fn entries_slice(&self) -> &[(Pid, f64)] {
        &self.entry_list
    }

    /// The buckets, ascending by average frequency.
    pub fn buckets(&self) -> &[PBucket] {
        &self.buckets
    }

    /// Number of path ids summarized.
    pub fn pid_count(&self) -> usize {
        self.bucket_of.len()
    }

    /// Byte size under the paper-calibrated model: 4 bytes per bucket (the
    /// average) plus 4 bytes per pid reference. See DESIGN.md.
    pub fn size_bytes(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| 4 + 4 * b.pids.len())
            .sum::<usize>()
    }
}

/// The p-histograms of every tag in a document, built at one variance
/// threshold.
#[derive(Clone, Debug)]
pub struct PHistogramSet {
    per_tag: Vec<PHistogram>,
    variance: f64,
}

impl PHistogramSet {
    /// Builds one histogram per tag from the exact table.
    pub fn build(table: &PathIdFrequencyTable, variance: f64) -> Self {
        Self::build_with_threads(table, variance, 1)
    }

    /// Like [`build`](Self::build) but fans the independent per-tag rows
    /// across `threads` workers (`0` = one per core, `1` = serial). Each
    /// row is built by the same pure function in both modes, and results
    /// are merged in tag order, so the output is bit-identical to the
    /// serial build.
    pub fn build_with_threads(table: &PathIdFrequencyTable, variance: f64, threads: usize) -> Self {
        let per_tag = xpe_par::par_map_indexed(threads, table.tag_count(), |t| {
            PHistogram::build(table.row(TagId::from_index(t)), variance)
        });
        PHistogramSet { per_tag, variance }
    }

    /// Ablation variant: equi-width buckets per tag, using the same bucket
    /// counts the variance-threshold construction produced at `variance`
    /// (so sizes match and only the partitioning strategy differs).
    pub fn build_equi_width_like(table: &PathIdFrequencyTable, variance: f64) -> Self {
        let per_tag = (0..table.tag_count())
            .map(|t| {
                let row = table.row(TagId::from_index(t));
                let reference = PHistogram::build(row, variance);
                PHistogram::build_equi_width(row, reference.buckets().len())
            })
            .collect();
        PHistogramSet { per_tag, variance }
    }

    /// Rebuilds a set from parts (persistence).
    pub fn from_parts(per_tag: Vec<PHistogram>, variance: f64) -> Self {
        PHistogramSet { per_tag, variance }
    }

    /// Serializes the set (summary persistence).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        xpe_xml::wire::put_f64(buf, self.variance);
        xpe_xml::wire::put_u32(buf, self.per_tag.len() as u32);
        for h in &self.per_tag {
            h.encode(buf);
        }
    }

    /// Deserializes a set encoded by [`encode`](Self::encode).
    pub fn decode(r: &mut xpe_xml::wire::Reader<'_>) -> Result<Self, xpe_xml::wire::WireError> {
        let variance = r.f64()?;
        let n = r.u32()? as usize;
        let mut per_tag = Vec::with_capacity(xpe_xml::wire::cap_alloc(n));
        for _ in 0..n {
            per_tag.push(PHistogram::decode(r)?);
        }
        Ok(PHistogramSet { per_tag, variance })
    }

    /// The histogram of `tag`.
    pub fn histogram(&self, tag: TagId) -> &PHistogram {
        &self.per_tag[tag.index()]
    }

    /// The construction threshold.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Number of per-tag histograms.
    pub fn tag_count(&self) -> usize {
        self.per_tag.len()
    }

    /// Total byte size across tags.
    pub fn size_bytes(&self) -> usize {
        self.per_tag.iter().map(PHistogram::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn paper_figure7_variance_0_and_1() {
        // Figure 7's list: (p2,2) (p3,2) (p1,5) (p5,7).
        let row = vec![(pid(2), 2), (pid(3), 2), (pid(1), 5), (pid(5), 7)];

        // v = 0: three buckets — {p2,p3}@2, {p1}@5, {p5}@7.
        let h0 = PHistogram::build(&row, 0.0);
        assert_eq!(h0.buckets().len(), 3);
        assert_eq!(h0.buckets()[0].pids.len(), 2);
        assert_eq!(h0.buckets()[0].avg, 2.0);
        assert_eq!(h0.frequency(pid(1)), Some(5.0));
        assert_eq!(h0.frequency(pid(5)), Some(7.0));

        // v = 1: two buckets — {p2,p3}@2 and {p1,p5}@6 (dev({2,2,5}) ≈ 1.41
        // exceeds 1, so p1 starts a new bucket; dev({5,7}) = 1 fits).
        let h1 = PHistogram::build(&row, 1.0);
        assert_eq!(h1.buckets().len(), 2);
        assert_eq!(h1.frequency(pid(2)), Some(2.0));
        assert_eq!(h1.frequency(pid(1)), Some(6.0));
        assert_eq!(h1.frequency(pid(5)), Some(6.0));
    }

    #[test]
    fn variance_zero_is_exact() {
        let row = vec![(pid(0), 3), (pid(1), 3), (pid(2), 9), (pid(3), 1)];
        let h = PHistogram::build(&row, 0.0);
        for &(p, f) in &row {
            assert_eq!(h.frequency(p), Some(f as f64));
        }
        assert_eq!(h.frequency(pid(9)), None);
    }

    #[test]
    fn huge_variance_collapses_to_one_bucket() {
        let row = vec![(pid(0), 1), (pid(1), 100), (pid(2), 10_000)];
        let h = PHistogram::build(&row, 1e9);
        assert_eq!(h.buckets().len(), 1);
        let avg = (1.0 + 100.0 + 10_000.0) / 3.0;
        assert_eq!(h.frequency(pid(2)), Some(avg));
    }

    #[test]
    fn entries_are_frequency_sorted() {
        let row = vec![(pid(0), 9), (pid(1), 1), (pid(2), 5)];
        let h = PHistogram::build(&row, 0.0);
        let freqs: Vec<f64> = h.entries().map(|(_, f)| f).collect();
        assert_eq!(freqs, vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn size_shrinks_with_variance() {
        let row: Vec<(Pid, u64)> = (0..32).map(|i| (pid(i), (i as u64) * 3 + 1)).collect();
        let tight = PHistogram::build(&row, 0.0);
        let loose = PHistogram::build(&row, 100.0);
        assert!(loose.buckets().len() < tight.buckets().len());
        assert!(loose.size_bytes() < tight.size_bytes());
    }

    #[test]
    fn empty_row_builds_empty_histogram() {
        let h = PHistogram::build(&[], 0.0);
        assert_eq!(h.buckets().len(), 0);
        assert_eq!(h.pid_count(), 0);
        assert_eq!(h.size_bytes(), 0);
        assert_eq!(h.frequency(pid(0)), None);
    }

    #[test]
    fn set_builds_per_tag() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = xpe_pathid::Labeling::compute(&doc);
        let table = PathIdFrequencyTable::build(&doc, &lab);
        let set = PHistogramSet::build(&table, 0.0);
        assert_eq!(set.tag_count(), 7);
        // At v=0 every (tag, pid) frequency is exact.
        for (tag, _) in doc.tags().iter() {
            for &(p, f) in table.row(tag) {
                assert_eq!(set.histogram(tag).frequency(p), Some(f as f64));
            }
        }
        assert!(set.size_bytes() > 0);
    }
}
