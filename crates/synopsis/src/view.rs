//! Zero-copy inspection of a serialized summary.
//!
//! [`Summary::from_bytes`] materializes every interner and histogram —
//! the right call when the summary will serve queries, but far more work
//! than needed to answer "what is in this `.xps` file?": tooling that
//! lists tag counts, checks compatibility, or routes files by size wants
//! the envelope checked and the headline figures read without paying for
//! a full decode.
//!
//! [`SummaryView`] is that cheaper path. [`SummaryView::parse`] runs the
//! same integrity envelope as a full load (magic, version, length
//! framing, CRC-32 — one shared validation routine, so the two paths can
//! never diverge), then *walks* the payload once: every length prefix is
//! validated against the remaining bytes, every scalar of interest is
//! read in place with `from_le_bytes`, and **nothing is allocated** — no
//! interner tables, no histogram buckets, no strings. The borrowed view
//! keeps section offsets into the caller's buffer; tag names come back
//! as `&str` slices of that buffer, and [`SummaryView::to_summary`] is
//! the owned-decode fallback for when the caller decides it wants the
//! real thing after all.
//!
//! The workspace forbids `unsafe`, so "zero-copy" here means exactly
//! what safe Rust can deliver: in-place scalar reads and borrowed
//! slices, never a reinterpret-cast of the byte buffer.

use xpe_xml::wire::{Reader, WireError};

use crate::persist::{validated_payload, LoadError};
use crate::summary::Summary;

/// Offsets of one payload section (byte range within the payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionSpan {
    /// Byte offset of the section's first byte within the payload.
    pub start: usize,
    /// Byte offset one past the section's last byte.
    pub end: usize,
}

impl SectionSpan {
    /// The section's size in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the section is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Byte spans of every payload section, in file order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionSpans {
    /// Tag interner (names).
    pub tags: SectionSpan,
    /// Path-encoding table.
    pub encoding: SectionSpan,
    /// Path-id interner (bit sequences as set-bit lists).
    pub pids: SectionSpan,
    /// Construction config scalars (p/o variance).
    pub config: SectionSpan,
    /// P-histogram set.
    pub phist: SectionSpan,
    /// O-histogram set.
    pub ohist: SectionSpan,
}

/// A validated, borrowed view over a serialized summary (`.xps` bytes).
///
/// See the module docs above for what "zero-copy" buys and where its
/// limits are. Construction cost is one linear walk of the payload with
/// no allocation; every accessor afterwards is O(1) except
/// [`tag_names`](Self::tag_names) (which re-walks the tags section,
/// yielding borrowed `&str`s) and [`to_summary`](Self::to_summary) (the
/// full owned decode).
#[derive(Clone, Copy, Debug)]
pub struct SummaryView<'a> {
    payload: &'a [u8],
    version: u32,
    sections: SectionSpans,
    tag_count: u32,
    encoding_count: u32,
    pid_width: u32,
    pid_count: u32,
    p_variance: f64,
    o_variance: f64,
    p_buckets: u64,
    o_buckets: u64,
}

impl<'a> SummaryView<'a> {
    /// Validates `bytes` (envelope and structural walk) and builds the
    /// view. Allocation-free; errors mirror [`Summary::from_bytes`] —
    /// the same magic/version/length/CRC checks run first, and a payload
    /// whose length prefixes disagree with its byte count is rejected
    /// with the same `WireError` a full decode would produce.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, LoadError> {
        let (version, payload) = validated_payload(bytes)?;
        let mut r = Reader::new(payload);

        // Tags: u32 count, then length-prefixed names.
        let tags_start = r.position();
        let tag_count = r.u32()?;
        for _ in 0..tag_count {
            let len = r.u32()? as usize;
            r.bytes(len)?;
        }

        // Encoding table: u32 count, then u32-length tag-id paths.
        let encoding_start = r.position();
        let encoding_count = r.u32()?;
        for _ in 0..encoding_count {
            let len = r.u32()? as usize;
            r.bytes(len * 4)?;
        }

        // Pid interner: u32 width, u32 count, then set-bit lists.
        let pids_start = r.position();
        let pid_width = r.u32()?;
        let pid_count = r.u32()?;
        for _ in 0..pid_count {
            let ones = r.u32()? as usize;
            r.bytes(ones * 4)?;
        }

        // Config scalars.
        let config_start = r.position();
        let p_variance = r.f64()?;
        let o_variance = r.f64()?;

        // P-histogram set: f64 variance, u32 tags, then per-tag
        // histograms of (f64 avg, u32 pid-count, pids) buckets.
        let phist_start = r.position();
        let _p_set_variance = r.f64()?;
        let p_tags = r.u32()?;
        let mut p_buckets: u64 = 0;
        for _ in 0..p_tags {
            let nb = r.u32()?;
            p_buckets += nb as u64;
            for _ in 0..nb {
                r.f64()?;
                let np = r.u32()? as usize;
                r.bytes(np * 4)?;
            }
        }

        // O-histogram set: f64 variance, u32 tags, rank array, then
        // per-tag histograms of 24-byte buckets plus a pid→column map.
        let ohist_start = r.position();
        let _o_set_variance = r.f64()?;
        let o_tags = r.u32()? as usize;
        r.bytes(o_tags * 4)?;
        let mut o_buckets: u64 = 0;
        for _ in 0..o_tags {
            let nb = r.u32()? as usize;
            o_buckets += nb as u64;
            r.bytes(nb * 24)?;
            let nc = r.u32()? as usize;
            r.bytes(nc * 8)?;
        }
        let payload_end = r.position();
        r.expect_exhausted()?;

        Ok(SummaryView {
            payload,
            version,
            sections: SectionSpans {
                tags: SectionSpan {
                    start: tags_start,
                    end: encoding_start,
                },
                encoding: SectionSpan {
                    start: encoding_start,
                    end: pids_start,
                },
                pids: SectionSpan {
                    start: pids_start,
                    end: config_start,
                },
                config: SectionSpan {
                    start: config_start,
                    end: phist_start,
                },
                phist: SectionSpan {
                    start: phist_start,
                    end: ohist_start,
                },
                ohist: SectionSpan {
                    start: ohist_start,
                    end: payload_end,
                },
            },
            tag_count,
            encoding_count,
            pid_width,
            pid_count,
            p_variance,
            o_variance,
            p_buckets,
            o_buckets,
        })
    }

    /// The format version of the underlying image (1 or 2).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The validated payload bytes (header and trailer stripped).
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Byte spans of every payload section, in file order.
    pub fn sections(&self) -> SectionSpans {
        self.sections
    }

    /// Number of interned tag names.
    pub fn tag_count(&self) -> usize {
        self.tag_count as usize
    }

    /// Number of distinct root-to-leaf path encodings.
    pub fn encoding_count(&self) -> usize {
        self.encoding_count as usize
    }

    /// Width (bit count) of every path id.
    pub fn pid_width(&self) -> u32 {
        self.pid_width
    }

    /// Number of distinct path ids.
    pub fn pid_count(&self) -> usize {
        self.pid_count as usize
    }

    /// The p-histogram construction variance threshold.
    pub fn p_variance(&self) -> f64 {
        self.p_variance
    }

    /// The o-histogram construction variance threshold.
    pub fn o_variance(&self) -> f64 {
        self.o_variance
    }

    /// Total p-histogram buckets across all tags.
    pub fn p_bucket_count(&self) -> u64 {
        self.p_buckets
    }

    /// Total o-histogram buckets across all tags.
    pub fn o_bucket_count(&self) -> u64 {
        self.o_buckets
    }

    /// The interned tag names, in id order, borrowed straight out of the
    /// underlying buffer — no `String` is ever built. UTF-8 is validated
    /// per name at iteration time (the parse walk checks lengths only).
    pub fn tag_names(&self) -> impl Iterator<Item = Result<&'a str, WireError>> + '_ {
        let mut r = Reader::new(&self.payload[self.sections.tags.start..self.sections.tags.end]);
        let count = r.u32().unwrap_or(0);
        (0..count).map(move |_| r.str_ref())
    }

    /// The owned-decode fallback: materializes the full [`Summary`] this
    /// view describes, exactly as [`Summary::from_bytes`] would have.
    pub fn to_summary(&self) -> Result<Summary, LoadError> {
        let mut r = Reader::new(self.payload);
        Ok(Summary::decode_payload(&mut r)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SummaryConfig;

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig {
                p_variance: 1.0,
                o_variance: 2.0,
                ..SummaryConfig::default()
            },
        )
    }

    #[test]
    fn view_reads_headline_figures_without_decoding() {
        let s = summary();
        let bytes = s.to_bytes();
        let view = SummaryView::parse(&bytes).unwrap();
        assert_eq!(view.version(), 2);
        assert_eq!(view.tag_count(), s.tags.len());
        assert_eq!(view.encoding_count(), s.encoding.len());
        assert_eq!(view.pid_count(), s.pids.len());
        assert_eq!(view.pid_width(), s.encoding.len() as u32);
        assert_eq!(view.p_variance(), s.config.p_variance);
        assert_eq!(view.o_variance(), s.config.o_variance);
        assert!(view.p_bucket_count() > 0);
        assert!(view.o_bucket_count() > 0);
    }

    #[test]
    fn sections_tile_the_payload_exactly() {
        let s = summary();
        let bytes = s.to_bytes();
        let view = SummaryView::parse(&bytes).unwrap();
        let sec = view.sections();
        assert_eq!(sec.tags.start, 0);
        for (a, b) in [
            (sec.tags, sec.encoding),
            (sec.encoding, sec.pids),
            (sec.pids, sec.config),
            (sec.config, sec.phist),
            (sec.phist, sec.ohist),
        ] {
            assert_eq!(a.end, b.start);
            assert!(!a.is_empty());
        }
        assert_eq!(sec.ohist.end, view.payload().len());
        assert_eq!(sec.config.len(), 16, "two f64 scalars");
    }

    #[test]
    fn tag_names_are_borrowed_and_complete() {
        let s = summary();
        let bytes = s.to_bytes();
        let view = SummaryView::parse(&bytes).unwrap();
        let names: Vec<&str> = view.tag_names().map(|n| n.unwrap()).collect();
        let expected: Vec<&str> = s.tags.iter().map(|(_, n)| n).collect();
        assert_eq!(names, expected);
        // The returned slices genuinely alias the input buffer.
        let buf_range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        for n in &names {
            assert!(buf_range.contains(&(n.as_ptr() as usize)));
        }
    }

    #[test]
    fn to_summary_matches_from_bytes() {
        let s = summary();
        let bytes = s.to_bytes();
        let via_view = SummaryView::parse(&bytes).unwrap().to_summary().unwrap();
        let direct = Summary::from_bytes(&bytes).unwrap();
        assert_eq!(via_view.tags.len(), direct.tags.len());
        assert_eq!(via_view.pids.len(), direct.pids.len());
        assert_eq!(via_view.config, direct.config);
        for (pid, bits) in direct.pids.iter() {
            assert_eq!(via_view.pids.bits(pid), bits);
        }
    }

    #[test]
    fn view_rejects_what_full_decode_rejects() {
        let s = summary();
        let bytes = s.to_bytes();
        // Corruption classes: bad magic, payload bit-flip (CRC), and
        // truncation all fail the same way as Summary::from_bytes.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(SummaryView::parse(&bad).is_err());
        let mut bad = bytes.clone();
        bad[20] ^= 0x10;
        assert!(matches!(
            SummaryView::parse(&bad),
            Err(LoadError::ChecksumMismatch { .. })
        ));
        for cut in (0..bytes.len()).step_by(13) {
            assert!(SummaryView::parse(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
