//! Position-histogram baseline.
//!
//! The third comparator family the paper discusses (§8): Wu, Patel &
//! Jagadish, *Estimating Answer Sizes for XML Queries* (EDBT'02). Every
//! element is labeled with its interval `(start, end)` (pre-order rank and
//! the largest rank in its subtree); each tag gets a **two-dimensional
//! position histogram** — a grid over the `(start, end)` plane — and a
//! *position-histogram join* estimates how many pairs of one tag's nodes
//! contain another's, assuming positions are uniform within each grid
//! cell.
//!
//! The paper's critique, which this implementation deliberately preserves:
//! *"Since only containment information between nodes is captured, this
//! approach cannot distinguish between parent-child and ancestor-descendant
//! relationships."* [`PositionEstimator::estimate`] therefore treats `/`
//! and `//` steps identically — the comparison harness shows exactly what
//! that costs on child-axis workloads.
//!
//! # Example
//!
//! ```
//! use xpe_poshist::PositionEstimator;
//! use xpe_xpath::parse_query;
//!
//! let doc = xpe_xml::fixtures::paper_figure1();
//! let est = PositionEstimator::build(&doc, 8);
//! // //A//C: 2 descendant pairs in Figure 1.
//! let pairs = est.estimate(&parse_query("//A//C").unwrap()).unwrap();
//! assert!(pairs > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use xpe_xml::{Document, NodeId, TagId};
use xpe_xpath::{Axis, Query};

/// The 2D position histogram of one element tag.
#[derive(Clone, Debug)]
pub struct PositionHistogram {
    /// Grid resolution (cells per axis).
    grid: usize,
    /// Document position range (exclusive upper bound).
    span: u64,
    /// `cells[(sx, ex)]`: number of elements whose start falls in column
    /// `sx` and end in row `ex`. Sparse — only the upper triangle can be
    /// populated (`end ≥ start`).
    cells: HashMap<(u32, u32), u64>,
    /// Total elements with this tag.
    count: u64,
}

impl PositionHistogram {
    fn cell_of(&self, pos: u64) -> u32 {
        ((pos * self.grid as u64) / self.span.max(1)) as u32
    }

    /// Cell bounds `[lo, hi)` along one axis.
    fn bounds(&self, cell: u32) -> (f64, f64) {
        let w = self.span as f64 / self.grid as f64;
        (cell as f64 * w, (cell + 1) as f64 * w)
    }

    /// Number of elements summarized.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of non-empty grid cells.
    pub fn nonzero_cells(&self) -> usize {
        self.cells.len()
    }

    /// Byte size: 2×2-byte cell coordinates plus a 4-byte count per cell.
    pub fn size_bytes(&self) -> usize {
        self.cells.len() * 8
    }
}

/// Position histograms for every tag of a document.
#[derive(Clone, Debug)]
pub struct PositionEstimator {
    per_tag: Vec<PositionHistogram>,
    tags: HashMap<String, TagId>,
}

impl PositionEstimator {
    /// Builds `grid`×`grid` histograms for every tag.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is zero.
    pub fn build(doc: &Document, grid: usize) -> Self {
        assert!(grid >= 1, "grid resolution must be at least 1");
        // Classic interval labeling (the paper's [17]): one counter ticks
        // at every element entry and exit, so ancestor intervals strictly
        // contain descendant intervals — no ties.
        let span = 2 * doc.len() as u64;
        let mut start = vec![0u64; doc.len()];
        let mut end = vec![0u64; doc.len()];
        let mut counter = 0u64;
        let mut stack: Vec<(NodeId, bool)> = vec![(doc.root(), false)];
        while let Some((id, exiting)) = stack.pop() {
            if exiting {
                end[id.index()] = counter;
            } else {
                start[id.index()] = counter;
                stack.push((id, true));
                for &c in doc.children(id).iter().rev() {
                    stack.push((c, false));
                }
            }
            counter += 1;
        }
        let mut per_tag: Vec<PositionHistogram> = (0..doc.tags().len())
            .map(|_| PositionHistogram {
                grid,
                span,
                cells: HashMap::new(),
                count: 0,
            })
            .collect();
        for id in doc.node_ids() {
            let h = &mut per_tag[doc.tag(id).index()];
            let key = (h.cell_of(start[id.index()]), h.cell_of(end[id.index()]));
            *h.cells.entry(key).or_insert(0) += 1;
            h.count += 1;
        }
        let tags = doc
            .tags()
            .iter()
            .map(|(id, name)| (name.to_owned(), id))
            .collect();
        PositionEstimator { per_tag, tags }
    }

    /// The histogram of one tag, if present.
    pub fn histogram(&self, tag: &str) -> Option<&PositionHistogram> {
        self.tags.get(tag).map(|t| &self.per_tag[t.index()])
    }

    /// Total byte size across tags.
    pub fn size_bytes(&self) -> usize {
        self.per_tag.iter().map(PositionHistogram::size_bytes).sum()
    }

    /// Position-histogram join: expected number of `(a, b)` pairs with `a`
    /// an ancestor of `b`, i.e. `a.start < b.start ∧ b.end ≤ a.end`,
    /// assuming uniform positions within cells (EDBT'02 §3).
    pub fn containment_pairs(&self, anc: &PositionHistogram, desc: &PositionHistogram) -> f64 {
        let mut total = 0.0;
        for (&(asx, aex), &ac) in &anc.cells {
            let (as_lo, as_hi) = anc.bounds(asx);
            let (ae_lo, ae_hi) = anc.bounds(aex);
            for (&(bsx, bex), &bc) in &desc.cells {
                let (bs_lo, bs_hi) = desc.bounds(bsx);
                let (be_lo, be_hi) = desc.bounds(bex);
                // P(a.start < b.start) × P(b.end < a.end), uniform within
                // cells, components treated independently.
                let p = p_less(as_lo, as_hi, bs_lo, bs_hi) * p_less(be_lo, be_hi, ae_lo, ae_hi);
                total += ac as f64 * bc as f64 * p;
            }
        }
        total
    }

    /// Estimates a *simple path* query (the model's scope, like the other
    /// baselines): chains pairwise containment estimates along the steps,
    /// treating `/` exactly like `//` — the published model captures only
    /// containment, not adjacency.
    pub fn estimate(&self, query: &Query) -> Option<f64> {
        if query.has_order_constraints() {
            return None;
        }
        let mut steps: Vec<TagId> = Vec::new();
        let mut cur = query.root();
        loop {
            let node = query.node(cur);
            steps.push(*self.tags.get(&node.tag)?);
            match node.edges.len() {
                0 => break,
                1 => {
                    // Child or descendant — the model cannot tell.
                    debug_assert!(matches!(node.edges[0].axis, Axis::Child | Axis::Descendant));
                    cur = node.edges[0].to;
                }
                _ => return None,
            }
        }
        // Root-anchored queries start from one node; `//` from all of the
        // first tag.
        let first = &self.per_tag[steps[0].index()];
        let mut flow = match query.root_axis() {
            Axis::Child => 1.0f64.min(first.count as f64),
            _ => first.count as f64,
        };
        for win in steps.windows(2) {
            let a = &self.per_tag[win[0].index()];
            let b = &self.per_tag[win[1].index()];
            if a.count == 0 || b.count == 0 {
                return Some(0.0);
            }
            let pairs = self.containment_pairs(a, b);
            // Expected matches of the next step given `flow` matches of
            // the previous one: scale the pair count by the fraction of
            // `a` nodes still in play, clamp by the `b` population.
            flow = (pairs * flow / a.count as f64).min(b.count as f64);
        }
        Some(flow)
    }
}

/// `P(X < Y)` for independent `X ~ U[x0, x1)`, `Y ~ U[y0, y1)`.
fn p_less(x0: f64, x1: f64, y0: f64, y1: f64) -> f64 {
    if x1 <= y0 {
        return 1.0;
    }
    if y1 <= x0 {
        return 0.0;
    }
    // Integrate P(X < y) over the overlap. Piecewise closed form:
    // split Y's range at x0 and x1.
    let lx = x1 - x0;
    let ly = y1 - y0;
    let mut p = 0.0;
    // Region y ≤ x0: P(X < y) = 0 — contributes nothing.
    // Region x0 < y < x1: P(X < y) = (y − x0)/lx.
    let a = y0.max(x0);
    let b = y1.min(x1);
    if b > a {
        // ∫ (y − x0)/lx dy over [a, b] = ((b−x0)² − (a−x0)²) / (2 lx)
        p += ((b - x0).powi(2) - (a - x0).powi(2)) / (2.0 * lx);
    }
    // Region y ≥ x1: P(X < y) = 1 — contributes its full length.
    let tail = (y1 - x1.max(y0)).max(0.0);
    (p + tail) / ly
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xml::parse_document;
    use xpe_xpath::parse_query;

    #[test]
    fn p_less_basic_cases() {
        // Disjoint: X entirely below Y.
        assert_eq!(p_less(0.0, 1.0, 2.0, 3.0), 1.0);
        // Disjoint: X entirely above Y.
        assert_eq!(p_less(2.0, 3.0, 0.0, 1.0), 0.0);
        // Identical ranges: P = 1/2.
        assert!((p_less(0.0, 1.0, 0.0, 1.0) - 0.5).abs() < 1e-12);
        // Y spans twice X's range starting at X's start:
        // P = (1/2·1/2) + 1/2 = 0.75.
        assert!((p_less(0.0, 1.0, 0.0, 2.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn p_less_matches_monte_carlo() {
        let cases = [
            (0.0, 2.0, 1.0, 3.0),
            (1.0, 4.0, 0.0, 2.0),
            (0.0, 10.0, 2.0, 3.0),
            (2.0, 3.0, 0.0, 10.0),
        ];
        for (x0, x1, y0, y1) in cases {
            let analytic = p_less(x0, x1, y0, y1);
            let mut hits = 0u32;
            let n = 40_000u32;
            // Deterministic low-discrepancy sampling.
            for i in 0..n {
                let fx = (i as f64 * 0.754_877_666_246_69) % 1.0;
                let fy = (i as f64 * 0.569_840_290_998_053) % 1.0;
                let x = x0 + fx * (x1 - x0);
                let y = y0 + fy * (y1 - y0);
                if x < y {
                    hits += 1;
                }
            }
            let mc = hits as f64 / n as f64;
            assert!(
                (analytic - mc).abs() < 0.02,
                "({x0},{x1},{y0},{y1}): analytic {analytic} mc {mc}"
            );
        }
    }

    #[test]
    fn fine_grid_counts_descendant_pairs_well() {
        let doc = xpe_xml::fixtures::paper_figure1();
        // Grid as fine as the token stream: cells are near-points, so the
        // join approaches the exact pair count.
        let est = PositionEstimator::build(&doc, 2 * doc.len());
        let a = est.histogram("A").unwrap();
        let d = est.histogram("D").unwrap();
        // Exactly 4 (A, D) ancestor pairs in Figure 1.
        let pairs = est.containment_pairs(a, d);
        assert!((pairs - 4.0).abs() < 0.75, "pairs {pairs}");
    }

    #[test]
    fn coarse_grid_trades_accuracy_for_space() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let fine = PositionEstimator::build(&doc, 2 * doc.len());
        let coarse = PositionEstimator::build(&doc, 2);
        assert!(coarse.size_bytes() <= fine.size_bytes());
        // Both still produce finite nonnegative estimates.
        let q = parse_query("//A//D").unwrap();
        for e in [fine.estimate(&q).unwrap(), coarse.estimate(&q).unwrap()] {
            assert!(e.is_finite() && e >= 0.0);
        }
    }

    #[test]
    fn cannot_distinguish_child_from_descendant() {
        // The paper's critique, demonstrated: //A/D has no matches in
        // Figure 1 (D is always under B), but the position model cannot
        // tell it apart from //A//D.
        let doc = xpe_xml::fixtures::paper_figure1();
        let est = PositionEstimator::build(&doc, 2 * doc.len());
        let child = est.estimate(&parse_query("//A/D").unwrap()).unwrap();
        let desc = est.estimate(&parse_query("//A//D").unwrap()).unwrap();
        assert_eq!(child, desc, "containment-only model");
        assert!(child > 0.0, "overestimates the empty child query");
    }

    #[test]
    fn out_of_model_queries_return_none() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let est = PositionEstimator::build(&doc, 8);
        assert!(est.estimate(&parse_query("//A[/C]/B").unwrap()).is_none());
        assert!(est
            .estimate(&parse_query("//A[/C/folls::B]").unwrap())
            .is_none());
        assert!(est.estimate(&parse_query("//Zebra").unwrap()).is_none());
    }

    #[test]
    fn root_anchoring_clamps_to_one() {
        let doc = parse_document("<r><a/><a/></r>").unwrap();
        let est = PositionEstimator::build(&doc, 4);
        let anchored = est.estimate(&parse_query("/r/a").unwrap()).unwrap();
        assert!(anchored <= 2.0 + 1e-9);
        let free = est.estimate(&parse_query("//a").unwrap()).unwrap();
        assert_eq!(free, 2.0);
    }
}
