//! Property tests for the position-histogram baseline.

use proptest::prelude::*;
use xpe_poshist::PositionEstimator;
use xpe_xml::{Document, TreeBuilder};
use xpe_xpath::parse_query;

#[derive(Debug, Clone)]
struct TreeSpec {
    tag: u8,
    children: Vec<TreeSpec>,
}

fn arb_doc() -> impl Strategy<Value = TreeSpec> {
    let leaf = (0u8..4).prop_map(|t| TreeSpec {
        tag: t,
        children: vec![],
    });
    leaf.prop_recursive(3, 32, 4, |inner| {
        (0u8..4, prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| TreeSpec { tag, children })
    })
}

fn build_doc(spec: &TreeSpec) -> Document {
    let mut b = TreeBuilder::new();
    fn rec(b: &mut TreeBuilder, s: &TreeSpec) {
        b.begin_element(&format!("t{}", s.tag));
        for c in &s.children {
            rec(b, c);
        }
        b.end_element().unwrap();
    }
    b.begin_element("R");
    rec(&mut b, spec);
    b.end_element().unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// At point-resolution grids, the containment join counts exact
    /// ancestor-descendant pairs for every pair of *distinct* tags.
    /// (Same-tag joins include self-pairs — the count-based model cannot
    /// exclude a node being joined with itself, an inherent artifact of
    /// the published approach.)
    #[test]
    fn fine_grid_join_is_exact(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let est = PositionEstimator::build(&doc, 2 * doc.len());
        for a_tag in 0..4u8 {
            for b_tag in 0..4u8 {
                if a_tag == b_tag {
                    continue;
                }
                let (Some(a), Some(b)) = (
                    est.histogram(&format!("t{a_tag}")),
                    est.histogram(&format!("t{b_tag}")),
                ) else { continue };
                let estimate = est.containment_pairs(a, b);
                let exact = doc
                    .node_ids()
                    .flat_map(|x| doc.node_ids().map(move |y| (x, y)))
                    .filter(|&(x, y)| {
                        doc.tag_name(x) == format!("t{a_tag}")
                            && doc.tag_name(y) == format!("t{b_tag}")
                            && doc.is_ancestor(x, y)
                    })
                    .count() as f64;
                prop_assert!(
                    (estimate - exact).abs() < 0.51 + exact * 0.05,
                    "t{} anc of t{}: est {} exact {}", a_tag, b_tag, estimate, exact
                );
            }
        }
    }

    /// Estimates are finite, non-negative and clamped by the target tag's
    /// population, at any grid resolution.
    #[test]
    fn estimates_bounded(spec in arb_doc(), grid in 1usize..64) {
        let doc = build_doc(&spec);
        let est = PositionEstimator::build(&doc, grid);
        for a in 0..4u8 {
            for b in 0..4u8 {
                let q = parse_query(&format!("//t{a}//t{b}")).unwrap();
                let Some(e) = est.estimate(&q) else { continue };
                prop_assert!(e.is_finite() && e >= 0.0);
                let cap = doc
                    .node_ids()
                    .filter(|&n| doc.tag_name(n) == format!("t{b}"))
                    .count() as f64;
                prop_assert!(e <= cap + 1e-9, "est {} cap {}", e, cap);
            }
        }
    }

    /// Coarser grids never take more space.
    #[test]
    fn size_monotone_in_grid(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let mut last = usize::MAX;
        for grid in [64usize, 16, 4, 1] {
            let est = PositionEstimator::build(&doc, grid);
            prop_assert!(est.size_bytes() <= last);
            last = est.size_bytes();
        }
    }
}
