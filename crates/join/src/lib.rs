//! Path-id-filtered structural joins.
//!
//! The estimation paper's §2 builds on the authors' XSym'05 system: "a
//! path encoding scheme to label XML nodes for efficient structural
//! join". This crate implements that substrate — the query processor the
//! selectivity estimates are ultimately *for*:
//!
//! * every element carries an interval label `(start, end, depth)`
//!   (paper's citation 17); `a` is an ancestor of `d` iff
//!   `a.start < d.start && d.end < a.end`, and the parent iff additionally
//!   `d.depth = a.depth + 1`;
//! * a **stack-based structural merge join** ([`structural_join`]) pairs
//!   two document-ordered element lists in one pass;
//! * a simple path query is evaluated as a pipeline of structural joins
//!   ([`JoinProcessor::count_path`]), optionally **pre-filtering each
//!   input list by the surviving path ids** of the estimation system's
//!   path join — the XSym'05 trick. The `join_filtering` Criterion bench
//!   and [`JoinStats`] quantify how much input the filter removes.
//!
//! A 2005-vs-2026 note the bench makes visible: the filter's win was
//! *I/O* — join inputs then came from disk-based element indexes, so
//! scanning less input dominated. Over in-memory arrays the raw merge
//! join is so cheap that the filter's pid-set join and per-element pid
//! lookups often cost more wall-clock than they save; `JoinStats::
//! filtered_out` still shows the input reduction that made it worthwhile
//! on 2005 storage.
//!
//! # Example
//!
//! ```
//! use xpe_join::JoinProcessor;
//! use xpe_pathid::Labeling;
//! use xpe_xpath::parse_query;
//!
//! let doc = xpe_xml::fixtures::paper_figure1();
//! let labeling = Labeling::compute(&doc);
//! let proc = JoinProcessor::new(&doc, &labeling);
//! let q = parse_query("//A/B/D").unwrap();
//! assert_eq!(proc.count_path(&q, true).unwrap().matches, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;

use xpe_pathid::{axis_compatible_masked, relation_mask, Labeling, Pid};
use xpe_xml::{Document, NodeId, TagId};
use xpe_xpath::{Axis, Query};

/// Interval label of one element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Entry rank in the combined start/end token stream.
    pub start: u32,
    /// Exit rank.
    pub end: u32,
    /// Depth (root = 0) — distinguishes parent-child from
    /// ancestor-descendant, the capability position histograms lack.
    pub depth: u32,
}

/// Result of one pipelined path evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinStats {
    /// Number of distinct final-step matches.
    pub matches: u64,
    /// Total elements scanned across all join inputs.
    pub input_scanned: u64,
    /// Elements removed up front by the path-id filter.
    pub filtered_out: u64,
}

/// A structural-join query processor over one labeled document.
pub struct JoinProcessor<'d> {
    doc: &'d Document,
    labeling: &'d Labeling,
    intervals: Vec<Interval>,
    /// Elements per tag in document order.
    by_tag: Vec<Vec<NodeId>>,
    /// Distinct pids per tag (the pid filter's starting sets).
    pids_by_tag: Vec<HashSet<Pid>>,
}

impl<'d> JoinProcessor<'d> {
    /// Labels `doc` with intervals and indexes elements by tag.
    pub fn new(doc: &'d Document, labeling: &'d Labeling) -> Self {
        let mut intervals = vec![
            Interval {
                start: 0,
                end: 0,
                depth: 0
            };
            doc.len()
        ];
        let mut counter = 0u32;
        let mut stack: Vec<(NodeId, bool, u32)> = vec![(doc.root(), false, 0)];
        while let Some((id, exiting, depth)) = stack.pop() {
            if exiting {
                intervals[id.index()].end = counter;
            } else {
                intervals[id.index()].start = counter;
                intervals[id.index()].depth = depth;
                stack.push((id, true, depth));
                for &c in doc.children(id).iter().rev() {
                    stack.push((c, false, depth + 1));
                }
            }
            counter += 1;
        }
        let mut by_tag = vec![Vec::new(); doc.tags().len()];
        let mut pids_by_tag = vec![HashSet::new(); doc.tags().len()];
        for id in doc.node_ids() {
            by_tag[doc.tag(id).index()].push(id);
            pids_by_tag[doc.tag(id).index()].insert(labeling.pid(id));
        }
        JoinProcessor {
            doc,
            labeling,
            intervals,
            by_tag,
            pids_by_tag,
        }
    }

    /// The interval label of an element.
    pub fn interval(&self, id: NodeId) -> Interval {
        self.intervals[id.index()]
    }

    /// Evaluates a simple path query by a pipeline of structural joins,
    /// returning match/scan statistics. `pid_filter` switches the XSym'05
    /// path-id pre-filter on or off (the ablation the bench measures).
    ///
    /// Returns `None` for queries outside the simple-path shape (branches
    /// or order constraints — those are the exact evaluator's job).
    pub fn count_path(&self, query: &Query, pid_filter: bool) -> Option<JoinStats> {
        if query.has_order_constraints() {
            return None;
        }
        // Collect the steps. A tag absent from the document is a valid
        // step with an empty input list (zero matches), not an error.
        let mut steps: Vec<(Axis, Option<TagId>)> = Vec::new();
        let mut axis = query.root_axis();
        let mut cur = query.root();
        loop {
            let node = query.node(cur);
            steps.push((axis, self.doc.tags().get(&node.tag)));
            match node.edges.len() {
                0 => break,
                1 => {
                    axis = node.edges[0].axis;
                    cur = node.edges[0].to;
                }
                _ => return None,
            }
        }

        // Optional path-id pre-filter: run the §4 pid join over the exact
        // per-tag pid sets, keep only elements whose pid survived.
        let surviving: Option<Vec<HashSet<Pid>>> = pid_filter.then(|| self.pid_join(&steps));

        let mut scanned = 0u64;
        let mut filtered = 0u64;
        // Seed list: all elements of the first tag (or the root for `/`).
        let mut current: Vec<NodeId> = self.step_input(0, &steps, &surviving, &mut filtered);
        scanned += current.len() as u64;
        if steps[0].0 == Axis::Child {
            current.retain(|&n| n == self.doc.root());
        }
        for i in 1..steps.len() {
            if current.is_empty() {
                // Nothing upstream can match; skip the remaining scans.
                break;
            }
            let descendants = self.step_input(i, &steps, &surviving, &mut filtered);
            scanned += descendants.len() as u64;
            current = structural_join(
                &self.intervals,
                &current,
                &descendants,
                steps[i].0 == Axis::Child,
            );
        }
        Some(JoinStats {
            matches: current.len() as u64,
            input_scanned: scanned,
            filtered_out: filtered,
        })
    }

    /// The (possibly pid-filtered) input list for step `i`.
    fn step_input(
        &self,
        i: usize,
        steps: &[(Axis, Option<TagId>)],
        surviving: &Option<Vec<HashSet<Pid>>>,
        filtered: &mut u64,
    ) -> Vec<NodeId> {
        let Some(tag) = steps[i].1 else {
            return Vec::new();
        };
        let full = &self.by_tag[tag.index()];
        match surviving {
            Some(sets) => {
                let keep: Vec<NodeId> = full
                    .iter()
                    .copied()
                    .filter(|&n| sets[i].contains(&self.labeling.pid(n)))
                    .collect();
                *filtered += (full.len() - keep.len()) as u64;
                keep
            }
            None => full.clone(),
        }
    }

    /// The §4 path-id join over exact pid sets, one set per step.
    fn pid_join(&self, steps: &[(Axis, Option<TagId>)]) -> Vec<HashSet<Pid>> {
        let mut sets: Vec<HashSet<Pid>> = steps
            .iter()
            .map(|&(_, t)| {
                t.map(|t| self.pids_by_tag[t.index()].clone())
                    .unwrap_or_default()
            })
            .collect();
        // Prune to a fixpoint along consecutive steps.
        loop {
            let mut changed = false;
            for i in 1..steps.len() {
                let child_axis = steps[i].0 == Axis::Child;
                let (head, tail) = sets.split_at_mut(i);
                let (Some(tag_u), Some(tag_v)) = (steps[i - 1].1, steps[i].1) else {
                    // A tag absent from the document empties both ends.
                    changed |= !head[i - 1].is_empty() || !tail[0].is_empty();
                    head[i - 1].clear();
                    tail[0].clear();
                    continue;
                };
                let mask = relation_mask(&self.labeling.encoding, tag_u, tag_v, child_axis);
                let up = &mut head[i - 1];
                let down = &mut tail[0];
                let before_up = up.len();
                up.retain(|&pu| {
                    down.iter()
                        .any(|&pv| axis_compatible_masked(&self.labeling.interner, pu, pv, &mask))
                });
                let before_down = down.len();
                down.retain(|&pv| {
                    up.iter()
                        .any(|&pu| axis_compatible_masked(&self.labeling.interner, pu, pv, &mask))
                });
                changed |= up.len() != before_up || down.len() != before_down;
            }
            if !changed {
                return sets;
            }
        }
    }
}

/// Stack-based structural merge join: returns the distinct elements of
/// `descendants` that have an ancestor (or, with `parent_child`, a parent)
/// in `ancestors`. Both inputs must be in document order; output is in
/// document order. One pass, `O(|A| + |D|)`.
pub fn structural_join(
    intervals: &[Interval],
    ancestors: &[NodeId],
    descendants: &[NodeId],
    parent_child: bool,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<Interval> = Vec::new();
    let mut ai = 0usize;
    for &d in descendants {
        let di = intervals[d.index()];
        // Push every ancestor that starts before `d`.
        while ai < ancestors.len() {
            let a = intervals[ancestors[ai].index()];
            if a.start < di.start {
                // Pop closed ancestors first.
                while stack.last().is_some_and(|top| top.end < a.start) {
                    stack.pop();
                }
                stack.push(a);
                ai += 1;
            } else {
                break;
            }
        }
        // Pop ancestors that closed before `d` starts.
        while stack.last().is_some_and(|top| top.end < di.start) {
            stack.pop();
        }
        // `d` matches if any stacked interval contains it; for
        // parent-child only a depth-adjacent one counts.
        let hit = if parent_child {
            stack
                .iter()
                .rev()
                .any(|a| a.end > di.end && a.depth + 1 == di.depth)
        } else {
            stack.last().is_some_and(|a| a.end > di.end)
        };
        if hit {
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xml::nav::DocOrder;
    use xpe_xpath::{parse_query, Evaluator};

    fn setup(doc: &Document) -> (Labeling, DocOrder) {
        (Labeling::compute(doc), DocOrder::new(doc))
    }

    #[test]
    fn counts_match_exact_evaluator_on_figure1() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let (labeling, order) = setup(&doc);
        let proc = JoinProcessor::new(&doc, &labeling);
        let eval = Evaluator::new(&doc, &order);
        for q in [
            "//A",
            "//A/B",
            "//A/B/D",
            "//A//D",
            "//Root//E",
            "/Root/A/C/F",
            "//B/E",
            "//C//F",
            "//D/A",
            "//F/E",
        ] {
            let query = parse_query(q).unwrap();
            let exact = eval.selectivity(&query);
            for filter in [false, true] {
                let stats = proc.count_path(&query, filter).unwrap();
                assert_eq!(stats.matches, exact, "{q} filter={filter}");
            }
        }
    }

    #[test]
    fn pid_filter_reduces_scanned_input() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let (labeling, _) = setup(&doc);
        let proc = JoinProcessor::new(&doc, &labeling);
        // //A[/C/F]-style chains aren't supported; use a selective path:
        // /Root/A/C/F only touches one C and one F.
        let query = parse_query("/Root/A/C/F").unwrap();
        let unfiltered = proc.count_path(&query, false).unwrap();
        let filtered = proc.count_path(&query, true).unwrap();
        assert_eq!(unfiltered.matches, filtered.matches);
        assert!(filtered.filtered_out > 0, "filter must remove C(p2) etc.");
        assert!(filtered.input_scanned < unfiltered.input_scanned);
    }

    #[test]
    fn parent_child_vs_ancestor_descendant() {
        let doc = xpe_xml::parse_document("<r><a><m><b/></m><b/></a></r>").unwrap();
        let (labeling, _) = setup(&doc);
        let proc = JoinProcessor::new(&doc, &labeling);
        let child = proc
            .count_path(&parse_query("//a/b").unwrap(), false)
            .unwrap();
        let desc = proc
            .count_path(&parse_query("//a//b").unwrap(), false)
            .unwrap();
        assert_eq!(child.matches, 1);
        assert_eq!(desc.matches, 2);
    }

    #[test]
    fn out_of_scope_queries_are_none() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let (labeling, _) = setup(&doc);
        let proc = JoinProcessor::new(&doc, &labeling);
        assert!(proc
            .count_path(&parse_query("//A[/C]/B").unwrap(), true)
            .is_none());
        assert!(proc
            .count_path(&parse_query("//A[/C/folls::B]").unwrap(), true)
            .is_none());
        // Unknown tags are in scope — they simply match nothing.
        assert_eq!(
            proc.count_path(&parse_query("//Nope").unwrap(), true)
                .unwrap()
                .matches,
            0
        );
    }

    #[test]
    fn intervals_nest_strictly() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let (labeling, _) = setup(&doc);
        let proc = JoinProcessor::new(&doc, &labeling);
        for x in doc.node_ids() {
            for y in doc.node_ids() {
                let (ix, iy) = (proc.interval(x), proc.interval(y));
                assert_eq!(
                    doc.is_ancestor(x, y),
                    ix.start < iy.start && iy.end < ix.end,
                    "{x:?} {y:?}"
                );
            }
        }
    }
}
