//! Property tests: structural-join counts agree with the exact evaluator
//! on random documents and random simple paths, with and without the
//! path-id filter, and the filter never changes results.

use proptest::prelude::*;
use xpe_join::JoinProcessor;
use xpe_pathid::Labeling;
use xpe_xml::{nav::DocOrder, Document, TreeBuilder};
use xpe_xpath::{parse_query, Evaluator};

#[derive(Debug, Clone)]
struct TreeSpec {
    tag: u8,
    children: Vec<TreeSpec>,
}

fn arb_doc() -> impl Strategy<Value = TreeSpec> {
    let leaf = (0u8..4).prop_map(|t| TreeSpec {
        tag: t,
        children: vec![],
    });
    leaf.prop_recursive(4, 48, 4, |inner| {
        (0u8..4, prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| TreeSpec { tag, children })
    })
}

fn build_doc(spec: &TreeSpec) -> Document {
    let mut b = TreeBuilder::new();
    fn rec(b: &mut TreeBuilder, s: &TreeSpec) {
        b.begin_element(&format!("t{}", s.tag));
        for c in &s.children {
            rec(b, c);
        }
        b.end_element().unwrap();
    }
    b.begin_element("R");
    rec(&mut b, spec);
    b.end_element().unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn join_counts_match_exact_evaluator(
        spec in arb_doc(),
        steps in prop::collection::vec((any::<bool>(), 0u8..4), 1..4),
        root_desc in any::<bool>(),
    ) {
        let doc = build_doc(&spec);
        let labeling = Labeling::compute(&doc);
        let order = DocOrder::new(&doc);
        let eval = Evaluator::new(&doc, &order);
        let proc = JoinProcessor::new(&doc, &labeling);

        let mut text = String::from(if root_desc { "//" } else { "/" });
        text.push_str("t0");
        for &(child, tag) in &steps {
            text.push_str(if child { "/" } else { "//" });
            text.push_str(&format!("t{tag}"));
        }
        let query = parse_query(&text).unwrap();
        let exact = eval.selectivity(&query);
        let unfiltered = proc.count_path(&query, false).unwrap();
        let filtered = proc.count_path(&query, true).unwrap();
        prop_assert_eq!(unfiltered.matches, exact, "{}", text);
        prop_assert_eq!(filtered.matches, exact, "{} (filtered)", text);
        // The filter can only reduce scanned input.
        prop_assert!(filtered.input_scanned <= unfiltered.input_scanned);
    }
}
