//! The encoding table: one integer per distinct root-to-leaf label path.
//!
//! Paper §2: "The path encoding scheme uses an integer to encode each
//! distinct root-to-leaf path in an XML document and stores them in an
//! encoding table." Encodings are 1-based, assigned in first-encounter
//! document order.

use std::collections::HashMap;

use xpe_xml::TagId;

/// A 1-based root-to-leaf path encoding.
pub type PathEncoding = u32;

/// Maps distinct root-to-leaf label paths to integers and back, and answers
/// tag-relationship questions along a given path (paper Example 2.2: "we
/// can check the relationship between the tags from the encoding table").
#[derive(Clone, Debug, Default)]
pub struct EncodingTable {
    paths: Vec<Vec<TagId>>,
    index: HashMap<Vec<TagId>, PathEncoding>,
}

impl EncodingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `path`, returning its encoding (existing or fresh).
    pub fn intern(&mut self, path: &[TagId]) -> PathEncoding {
        if let Some(&e) = self.index.get(path) {
            return e;
        }
        let enc = (self.paths.len() + 1) as PathEncoding;
        self.paths.push(path.to_vec());
        self.index.insert(path.to_vec(), enc);
        enc
    }

    /// The encoding of `path`, if present.
    pub fn encoding_of(&self, path: &[TagId]) -> Option<PathEncoding> {
        self.index.get(path).copied()
    }

    /// The label path for `encoding`.
    ///
    /// # Panics
    ///
    /// Panics if `encoding` is 0 or out of range.
    pub fn path(&self, encoding: PathEncoding) -> &[TagId] {
        &self.paths[(encoding - 1) as usize]
    }

    /// Number of distinct root-to-leaf paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no path has been interned.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterates `(encoding, path)` pairs in encoding order.
    pub fn iter(&self) -> impl Iterator<Item = (PathEncoding, &[TagId])> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| ((i + 1) as PathEncoding, p.as_slice()))
    }

    /// Positions (0-based depths) at which `tag` occurs on the path
    /// `encoding`. Recursive schemas (XMark's `parlist`) make repeats real.
    pub fn positions(
        &self,
        encoding: PathEncoding,
        tag: TagId,
    ) -> impl Iterator<Item = usize> + '_ {
        self.path(encoding)
            .iter()
            .enumerate()
            .filter(move |(_, &t)| t == tag)
            .map(|(i, _)| i)
    }

    /// Whether, on the path `encoding`, some occurrence of `anc` is an
    /// ancestor (or, with `child_axis`, the parent) of some occurrence of
    /// `desc`.
    pub fn axis_holds(
        &self,
        encoding: PathEncoding,
        anc: TagId,
        desc: TagId,
        child_axis: bool,
    ) -> bool {
        let path = self.path(encoding);
        for (i, &t) in path.iter().enumerate() {
            if t != anc {
                continue;
            }
            if child_axis {
                if path.get(i + 1) == Some(&desc) {
                    return true;
                }
            } else if path[i + 1..].contains(&desc) {
                return true;
            }
        }
        false
    }

    /// Serializes the table (summary persistence).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        xpe_xml::wire::put_u32(buf, self.paths.len() as u32);
        for path in &self.paths {
            xpe_xml::wire::put_u32(buf, path.len() as u32);
            for &t in path {
                xpe_xml::wire::put_u32(buf, t.index() as u32);
            }
        }
    }

    /// Deserializes a table encoded by [`encode`](Self::encode); encodings
    /// are preserved.
    pub fn decode(r: &mut xpe_xml::wire::Reader<'_>) -> Result<Self, xpe_xml::wire::WireError> {
        let n = r.u32()? as usize;
        let mut t = EncodingTable::new();
        for _ in 0..n {
            let len = r.u32()? as usize;
            let mut path = Vec::with_capacity(xpe_xml::wire::cap_alloc(len));
            for _ in 0..len {
                path.push(TagId::from_index(r.u32()? as usize));
            }
            t.intern(&path);
        }
        Ok(t)
    }

    /// Byte size of the table under the paper's accounting: each path is
    /// stored as one byte per tag (a tag-dictionary reference) plus a
    /// two-byte encoding integer. The paper reports 0.24 KB for SSPlays'
    /// 40 paths — about six bytes per path — consistent with this model.
    pub fn size_bytes(&self) -> usize {
        self.paths.iter().map(|p| p.len() + 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xml::TagInterner;

    /// Builds the paper's Figure 1(b) encoding table:
    /// 1: Root/A/B/D, 2: Root/A/B/E, 3: Root/A/C/E, 4: Root/A/C/F.
    fn figure1() -> (EncodingTable, TagInterner) {
        let mut tags = TagInterner::new();
        let (root, a, b, c, d, e, f) = (
            tags.intern("Root"),
            tags.intern("A"),
            tags.intern("B"),
            tags.intern("C"),
            tags.intern("D"),
            tags.intern("E"),
            tags.intern("F"),
        );
        let mut t = EncodingTable::new();
        assert_eq!(t.intern(&[root, a, b, d]), 1);
        assert_eq!(t.intern(&[root, a, b, e]), 2);
        assert_eq!(t.intern(&[root, a, c, e]), 3);
        assert_eq!(t.intern(&[root, a, c, f]), 4);
        let _ = (b, c, d, e, f);
        (t, tags)
    }

    #[test]
    fn intern_is_idempotent_and_one_based() {
        let (mut t, tags) = figure1();
        let root = tags.get("Root").unwrap();
        let a = tags.get("A").unwrap();
        let b = tags.get("B").unwrap();
        let d = tags.get("D").unwrap();
        assert_eq!(t.intern(&[root, a, b, d]), 1);
        assert_eq!(t.len(), 4);
        assert_eq!(t.encoding_of(&[root, a, b, d]), Some(1));
        assert_eq!(t.encoding_of(&[root, a]), None);
    }

    #[test]
    fn axis_checks_match_paper_example_2_2() {
        let (t, tags) = figure1();
        let a = tags.get("A").unwrap();
        let b = tags.get("B").unwrap();
        let d = tags.get("D").unwrap();
        // On path 1 (Root/A/B/D): A parent of B, A ancestor of D, not parent.
        assert!(t.axis_holds(1, a, b, true));
        assert!(t.axis_holds(1, a, d, false));
        assert!(!t.axis_holds(1, a, d, true));
        assert!(!t.axis_holds(1, d, a, false), "no upward relation");
    }

    #[test]
    fn recursive_paths_report_repeat_positions() {
        let mut tags = TagInterner::new();
        let l = tags.intern("list");
        let i = tags.intern("item");
        let mut t = EncodingTable::new();
        let enc = t.intern(&[l, i, l, i]);
        assert_eq!(t.positions(enc, l).collect::<Vec<_>>(), vec![0, 2]);
        // list is both parent and ancestor of item at multiple depths.
        assert!(t.axis_holds(enc, l, i, true));
        assert!(
            t.axis_holds(enc, i, l, true),
            "item/list nesting exists too"
        );
    }

    #[test]
    fn size_model_is_roughly_six_bytes_per_short_path() {
        let (t, _) = figure1();
        assert_eq!(t.size_bytes(), 4 * (4 + 2));
    }

    #[test]
    fn iter_in_encoding_order() {
        let (t, _) = figure1();
        let encs: Vec<u32> = t.iter().map(|(e, _)| e).collect();
        assert_eq!(encs, vec![1, 2, 3, 4]);
    }
}
