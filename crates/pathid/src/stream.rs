//! Streaming path-id labeling: the paper's §2 encoding computed from a
//! tokenizer event stream with O(depth × width) live state, bit-identical
//! to [`Labeling::compute`](crate::Labeling::compute) over the
//! materialized tree.
//!
//! Two passes over the same byte stream:
//!
//! 1. **Pass A** ([`PathScan`]) interns every tag at its open event and
//!    every distinct root-to-leaf label path at its *leaf close* event.
//!    Leaves close in pre-order (a leaf has no descendants, so it opens
//!    and closes before the next leaf opens), which is exactly the
//!    first-encounter document order the DOM pass-1 DFS uses — the
//!    [`EncodingTable`] comes out identical, fixing the path-id width.
//! 2. **Pass B** ([`StreamLabeler`]) re-streams with a stack of open
//!    elements. A leaf close materializes the single-bit id of its path;
//!    every close ORs the finished id into the parent frame and retires
//!    the element's `(tag, pid)` into a [`StreamSink`] — no per-node
//!    storage survives the node's close event.
//!
//! One ordering wrinkle: the DOM path interns pid bit-patterns in node
//! *pre*-order, but a streaming pass can only finish a pattern at its
//! node's *close* (post-order). Pass B therefore interns into a temporary
//! id space, records the minimal pre-order index at which each distinct
//! pattern occurs, and [`StreamLabeler::finish`] renumbers patterns by
//! that index — which is precisely the DOM's first-encounter pre-order,
//! so the final [`PidInterner`] is handle-for-handle identical. The same
//! minimal-pre-order bookkeeping lets sinks reconstruct first-encounter
//! row orders for the frequency table.

use std::collections::HashMap;

use xpe_xml::{TagId, TagInterner};

use crate::bits::PathIdBits;
use crate::encoding::EncodingTable;
use crate::interner::{Pid, PidInterner};

/// Pass A: collects the tag vocabulary and the distinct root-to-leaf
/// label paths from open/close events. State is O(depth + output).
#[derive(Debug, Default)]
pub struct PathScan {
    tags: TagInterner,
    encoding: EncodingTable,
    path: Vec<TagId>,
    /// Per open element: has an element child been seen?
    has_child: Vec<bool>,
    elements: u64,
}

impl PathScan {
    /// Creates an empty scan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds an element open event.
    pub fn open(&mut self, name: &str) {
        let tag = self.tags.intern(name);
        if let Some(parent) = self.has_child.last_mut() {
            *parent = true;
        }
        self.path.push(tag);
        self.has_child.push(false);
        self.elements += 1;
    }

    /// Feeds an element close event.
    ///
    /// # Panics
    ///
    /// Panics on a close without a matching open (the tokenizer rejects
    /// such documents before the event is ever produced).
    pub fn close(&mut self) {
        let leaf = !self.has_child.pop().expect("close without open");
        if leaf {
            self.encoding.intern(&self.path);
        }
        self.path.pop();
    }

    /// Number of elements opened so far.
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// The collected vocabulary: `(tags, encoding table, element count)`.
    pub fn finish(self) -> (TagInterner, EncodingTable, u64) {
        debug_assert!(self.path.is_empty(), "unbalanced event stream");
        (self.tags, self.encoding, self.elements)
    }
}

/// Receives each element exactly once, at its close event, plus the
/// sibling-order facts the path-order table aggregates.
///
/// Pids handed to the sink are **temporary** (post-order first-encounter);
/// translate them through [`StreamLabeling::remap`] after
/// [`StreamLabeler::finish`]. `pre_index` is the element's pre-order
/// (document-order) index — per-`(tag, pid)` minima over it reproduce the
/// DOM tables' first-encounter row order.
pub trait StreamSink {
    /// An element of `tag` with path id `pid` closed; it was the
    /// `pre_index`-th element (0-based) to open.
    fn element(&mut self, tag: TagId, pid: Pid, pre_index: u64);

    /// One `x`-tagged element with id `pid` has some `y`-tagged sibling
    /// before it (the paper's `element+` region, "x after y").
    fn sibling_after(&mut self, x: TagId, pid: Pid, y: TagId);

    /// `count` siblings of tag/pid `(x, pid)` precede the last `y`-tagged
    /// child of the closing parent (the `+element` region, "x before y"),
    /// aggregated per parent.
    fn sibling_before(&mut self, x: TagId, pid: Pid, y: TagId, count: u64);
}

/// Per-open-element frame of pass B.
#[derive(Debug)]
struct Frame {
    tag: TagId,
    /// OR of the finished ids of the children closed so far (becomes this
    /// element's id at close, unless it is a leaf).
    bits: PathIdBits,
    /// Pre-order index of this element.
    pre: u64,
    has_child: bool,
    /// Number of element children closed so far.
    children: usize,
    /// First child position per child tag (the DOM scan's `first[]`).
    first: HashMap<TagId, usize>,
    /// Children closed so far, grouped by `(tag, temporary pid)`.
    counts: HashMap<(TagId, Pid), u64>,
    /// Snapshot of `counts` taken just before the most recent `y`-tagged
    /// child was added — at parent close this holds, for each `y`, every
    /// sibling group strictly before the *last* `y` child (the DOM scan's
    /// `last[y] > k` test, aggregated).
    before_last: HashMap<TagId, HashMap<(TagId, Pid), u64>>,
}

impl Frame {
    fn new(tag: TagId, width: u32, pre: u64) -> Self {
        Frame {
            tag,
            bits: PathIdBits::zero(width),
            pre,
            has_child: false,
            children: 0,
            first: HashMap::new(),
            counts: HashMap::new(),
            before_last: HashMap::new(),
        }
    }
}

/// The result of pass B: the final (DOM-identical) interner plus the
/// translation from the temporary pids the sink saw.
#[derive(Debug)]
pub struct StreamLabeling {
    /// Distinct path ids, numbered in first-encounter pre-order — the
    /// same handles [`Labeling::compute`](crate::Labeling::compute)
    /// assigns.
    pub interner: PidInterner,
    /// `remap[temp_pid.index()]` is the final pid.
    pub remap: Vec<Pid>,
    /// Total element count.
    pub elements: u64,
}

impl StreamLabeling {
    /// Translates a temporary pid (as seen by the sink) to its final
    /// handle.
    #[inline]
    pub fn resolve(&self, temp: Pid) -> Pid {
        self.remap[temp.index()]
    }
}

/// Pass B: assigns path ids from open/close events, retiring each element
/// into a [`StreamSink`] at its close. Live state is the open-element
/// stack — O(depth) frames, each O(width + distinct child groups) — plus
/// the distinct-pid interner; nothing is proportional to node count.
#[derive(Debug)]
pub struct StreamLabeler<'a> {
    tags: &'a TagInterner,
    encoding: &'a EncodingTable,
    width: u32,
    /// Temporary interner: patterns numbered by close-order encounter.
    temp: PidInterner,
    /// Per temporary pid: minimal pre-order index over its occurrences.
    first_pre: Vec<u64>,
    frames: Vec<Frame>,
    path: Vec<TagId>,
    next_pre: u64,
}

impl<'a> StreamLabeler<'a> {
    /// Creates a labeler over the vocabulary pass A collected. The
    /// encoding table is complete, so the path-id width is fixed.
    pub fn new(tags: &'a TagInterner, encoding: &'a EncodingTable) -> Self {
        let width = encoding.len() as u32;
        StreamLabeler {
            tags,
            encoding,
            width,
            temp: PidInterner::new(width),
            first_pre: Vec::new(),
            frames: Vec::new(),
            path: Vec::new(),
            next_pre: 0,
        }
    }

    /// Path-id width (number of distinct root-to-leaf paths).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Feeds an element open event.
    ///
    /// # Panics
    ///
    /// Panics if `name` was never seen by pass A — the two passes must
    /// consume the same byte stream.
    pub fn open(&mut self, name: &str) {
        let tag = self
            .tags
            .get(name)
            .expect("tag not in pass-A vocabulary: passes saw different streams");
        if let Some(parent) = self.frames.last_mut() {
            parent.has_child = true;
        }
        self.path.push(tag);
        self.frames.push(Frame::new(tag, self.width, self.next_pre));
        self.next_pre += 1;
    }

    /// Feeds an element close event, retiring the element into `sink`.
    ///
    /// # Panics
    ///
    /// Panics on a close without a matching open, or (for a leaf) on a
    /// root-to-leaf path pass A never interned.
    pub fn close<S: StreamSink>(&mut self, sink: &mut S) {
        let mut frame = self.frames.pop().expect("close without open");
        if !frame.has_child {
            let enc = self
                .encoding
                .encoding_of(&self.path)
                .expect("leaf path not in pass-A encoding table");
            frame.bits = PathIdBits::single(self.width, enc);
        }
        let pid = self.temp.intern(frame.bits.clone());
        if pid.index() == self.first_pre.len() {
            self.first_pre.push(frame.pre);
        } else {
            let slot = &mut self.first_pre[pid.index()];
            *slot = (*slot).min(frame.pre);
        }
        sink.element(frame.tag, pid, frame.pre);

        // Flush the `+element` (before) region of this element's own
        // children: everything counted strictly before the last `y`.
        for (y, groups) in frame.before_last.drain() {
            for ((x, x_pid), count) in groups {
                if count > 0 {
                    sink.sibling_before(x, x_pid, y, count);
                }
            }
        }

        self.path.pop();
        let Some(parent) = self.frames.last_mut() else {
            debug_assert!(self.path.is_empty());
            return;
        };
        parent.bits.or_assign(&frame.bits);

        // Sibling order, emitted online as children close. `element+`
        // (after): this child has a `y` sibling before it iff `y`'s first
        // position precedes it — known now. `+element` (before) needs
        // `last[y]`, unknown until the parent closes, so snapshot the
        // sibling groups seen before each latest `y` instead.
        let k = parent.children;
        for (&y, &first_y) in &parent.first {
            if first_y < k {
                sink.sibling_after(frame.tag, pid, y);
            }
        }
        parent.before_last.insert(frame.tag, parent.counts.clone());
        *parent.counts.entry((frame.tag, pid)).or_insert(0) += 1;
        parent.first.entry(frame.tag).or_insert(k);
        parent.children = k + 1;
    }

    /// Renumbers the temporary pid space into the DOM's first-encounter
    /// pre-order and returns the final labeling.
    pub fn finish(self) -> StreamLabeling {
        debug_assert!(self.frames.is_empty(), "unbalanced event stream");
        // Two distinct patterns never share a first node, so the minima
        // are unique and the order is total.
        let mut by_pre: Vec<usize> = (0..self.temp.len()).collect();
        by_pre.sort_by_key(|&i| self.first_pre[i]);
        let mut interner = PidInterner::new(self.width);
        let mut remap = vec![Pid::from_index(0); self.temp.len()];
        for &temp_index in &by_pre {
            let final_pid = interner.intern(self.temp.bits(Pid::from_index(temp_index)).clone());
            remap[temp_index] = final_pid;
        }
        StreamLabeling {
            interner,
            remap,
            elements: self.next_pre,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Labeling;
    use xpe_xml::{parse_document, StreamEvent, StreamParser};

    /// Sink that records everything, for direct comparison with the DOM
    /// tables.
    #[derive(Default)]
    struct Recorder {
        elements: Vec<(TagId, Pid, u64)>,
        after: Vec<(TagId, Pid, TagId)>,
        before: Vec<(TagId, Pid, TagId, u64)>,
    }

    impl StreamSink for Recorder {
        fn element(&mut self, tag: TagId, pid: Pid, pre_index: u64) {
            self.elements.push((tag, pid, pre_index));
        }
        fn sibling_after(&mut self, x: TagId, pid: Pid, y: TagId) {
            self.after.push((x, pid, y));
        }
        fn sibling_before(&mut self, x: TagId, pid: Pid, y: TagId, count: u64) {
            self.before.push((x, pid, y, count));
        }
    }

    fn run_both(input: &str) -> (Labeling, StreamLabeling, Recorder) {
        let doc = parse_document(input).unwrap();
        let dom = Labeling::compute(&doc);

        let mut scan = PathScan::new();
        drive(input, |ev| match ev {
            StreamEvent::Open { name } => scan.open(&name),
            StreamEvent::Close => scan.close(),
            StreamEvent::Text(_) => {}
        });
        let (tags, encoding, _) = scan.finish();
        let mut labeler = StreamLabeler::new(&tags, &encoding);
        let mut rec = Recorder::default();
        drive(input, |ev| match ev {
            StreamEvent::Open { name } => labeler.open(&name),
            StreamEvent::Close => labeler.close(&mut rec),
            StreamEvent::Text(_) => {}
        });
        (dom, labeler.finish(), rec)
    }

    fn drive(input: &str, mut f: impl FnMut(StreamEvent<'_>)) {
        let mut p = StreamParser::new(input.as_bytes());
        while let Some(ev) = p.next_event().unwrap() {
            f(ev);
        }
    }

    const FIG1: &str = "<Root><A><B><D/><D/><E/></B></A>\
                        <A><B><D/></B><C><E/></C><B><D/></B></A>\
                        <A><C><E/><F/></C></A></Root>";

    #[test]
    fn interner_is_handle_identical_to_dom() {
        for input in [
            FIG1,
            "<only/>",
            "<a><b/><b/><b/></a>",
            "<a><b><a><b/></a></b></a>",
        ] {
            let (dom, stream, _) = run_both(input);
            assert_eq!(dom.interner.len(), stream.interner.len(), "{input}");
            for (pid, bits) in dom.interner.iter() {
                assert_eq!(
                    stream.interner.bits(pid),
                    bits,
                    "pid {pid:?} diverged on {input}"
                );
            }
        }
    }

    #[test]
    fn retired_elements_match_dom_node_pids() {
        let (dom, stream, rec) = run_both(FIG1);
        let doc = parse_document(FIG1).unwrap();
        // Each retired (tag, temp pid, pre) must equal the DOM labeling of
        // the pre-th node after remapping.
        assert_eq!(rec.elements.len(), doc.len());
        for (tag, temp, pre) in rec.elements {
            let node = xpe_xml::NodeId::from_index(pre as usize);
            assert_eq!(doc.tag(node), tag);
            assert_eq!(stream.resolve(temp), dom.pid(node));
        }
    }

    #[test]
    fn sibling_events_match_dom_order_scan() {
        // Mixed same-tag runs, interleavings, single children, text
        // between siblings.
        for input in [
            FIG1,
            "<r><y/><x/><y/></r>",
            "<r><x/><x/><x/></r>",
            "<r><a><b/></a></r>",
            "<r>t<x/> <y/>u<x/></r>",
        ] {
            let doc = parse_document(input).unwrap();
            let dom = Labeling::compute(&doc);
            let (_, stream, rec) = run_both(input);

            // Reference: the DOM first/last scan over every parent.
            let mut expect_after: HashMap<(TagId, Pid, TagId), u64> = HashMap::new();
            let mut expect_before: HashMap<(TagId, Pid, TagId), u64> = HashMap::new();
            for parent in doc.node_ids() {
                let children = doc.children(parent);
                if children.len() < 2 {
                    continue;
                }
                for (k, &c) in children.iter().enumerate() {
                    let tags_after: std::collections::HashSet<TagId> =
                        children[k + 1..].iter().map(|&s| doc.tag(s)).collect();
                    let tags_before: std::collections::HashSet<TagId> =
                        children[..k].iter().map(|&s| doc.tag(s)).collect();
                    for y in tags_after {
                        *expect_before
                            .entry((doc.tag(c), dom.pid(c), y))
                            .or_insert(0) += 1;
                    }
                    for y in tags_before {
                        *expect_after.entry((doc.tag(c), dom.pid(c), y)).or_insert(0) += 1;
                    }
                }
            }

            let mut got_after: HashMap<(TagId, Pid, TagId), u64> = HashMap::new();
            for (x, p, y) in &rec.after {
                *got_after.entry((*x, stream.resolve(*p), *y)).or_insert(0) += 1;
            }
            let mut got_before: HashMap<(TagId, Pid, TagId), u64> = HashMap::new();
            for (x, p, y, n) in &rec.before {
                *got_before.entry((*x, stream.resolve(*p), *y)).or_insert(0) += n;
            }
            assert_eq!(got_after, expect_after, "after diverged on {input}");
            assert_eq!(got_before, expect_before, "before diverged on {input}");
        }
    }
}
