//! Word-level bit-kernel primitives shared by every bitset in the system.
//!
//! [`PathIdBits`](crate::PathIdBits), the arena rows of
//! [`PidBitmapSlab`](crate::PidBitmapSlab), and the pid-index bitmaps of
//! the bit-parallel join kernel all reduce their set operations to the
//! same handful of loops over `&[u64]` slices. Centralizing them here
//! keeps one tuned implementation: each loop processes **4 words per
//! iteration into independent accumulators** — plain Rust the compiler
//! autovectorizes (the workspace is registry-free, so no SIMD crates) —
//! with a chunk-granular early exit for the predicates.
//!
//! Slices of different lengths are fine everywhere: the missing tail of
//! the shorter slice is treated as zero words, which is exactly the
//! padding convention of slab rows (rows are padded to 64-byte
//! boundaries with zero words).

/// Width of one accumulator chunk. Four `u64` lanes match a 256-bit
/// vector register and leave the predicates' early exit coarse enough
/// not to defeat vectorization.
const CHUNK: usize = 4;

/// `a ∩ b ≠ ∅` — any bit set in both slices. Missing tails are zero.
#[inline]
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let (ac, at) = a[..n].split_at(n - n % CHUNK);
    let (bc, bt) = b[..n].split_at(n - n % CHUNK);
    for (aw, bw) in ac.chunks_exact(CHUNK).zip(bc.chunks_exact(CHUNK)) {
        let or = (aw[0] & bw[0]) | (aw[1] & bw[1]) | (aw[2] & bw[2]) | (aw[3] & bw[3]);
        if or != 0 {
            return true;
        }
    }
    at.iter().zip(bt).any(|(x, y)| x & y != 0)
}

/// `sub ⊆ sup` — no bit of `sub` outside `sup`. Missing tails are zero,
/// so any nonzero word of `sub` past `sup`'s length refutes the subset.
#[inline]
pub fn is_subset(sub: &[u64], sup: &[u64]) -> bool {
    let n = sub.len().min(sup.len());
    let (sc, st) = sub[..n].split_at(n - n % CHUNK);
    let (pc, _) = sup[..n].split_at(n - n % CHUNK);
    for (sw, pw) in sc.chunks_exact(CHUNK).zip(pc.chunks_exact(CHUNK)) {
        let stray = (sw[0] & !pw[0]) | (sw[1] & !pw[1]) | (sw[2] & !pw[2]) | (sw[3] & !pw[3]);
        if stray != 0 {
            return false;
        }
    }
    if !st
        .iter()
        .zip(&sup[n - st.len()..n])
        .all(|(s, p)| s & !p == 0)
    {
        return false;
    }
    sub[n..].iter().all(|&w| w == 0)
}

/// Total set bits, 4-wide accumulation.
#[inline]
pub fn count_ones(a: &[u64]) -> u32 {
    let (chunks, tail) = a.split_at(a.len() - a.len() % CHUNK);
    let mut acc = [0u32; CHUNK];
    for c in chunks.chunks_exact(CHUNK) {
        acc[0] += c[0].count_ones();
        acc[1] += c[1].count_ones();
        acc[2] += c[2].count_ones();
        acc[3] += c[3].count_ones();
    }
    acc.iter().sum::<u32>() + tail.iter().map(|w| w.count_ones()).sum::<u32>()
}

/// `dst |= src` over the common prefix (`src` may be shorter; its missing
/// tail is zero and contributes nothing).
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    for (d, s) in dst[..n].iter_mut().zip(&src[..n]) {
        *d |= s;
    }
}

/// `dst &= src`; words of `dst` past `src`'s length are cleared (the
/// missing tail of `src` is zero).
#[inline]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    for (d, s) in dst[..n].iter_mut().zip(&src[..n]) {
        *d &= s;
    }
    for d in &mut dst[n..] {
        *d = 0;
    }
}

/// The 64-bit *support signature* of a row: bit `j % 64` is set iff word
/// `j` is nonzero. A single-word necessary condition for subset tests —
/// `sig(sub) & !sig(sup) ≠ 0` proves `sub ⊄ sup` without touching the
/// rows (for rows up to 64 words the signature is exact word support) —
/// which the adjacency builder uses to refuse most of its quadratic
/// candidate pairs one `u64` early.
#[inline]
pub fn support_signature(a: &[u64]) -> u64 {
    let mut sig = 0u64;
    for (j, &w) in a.iter().enumerate() {
        sig |= u64::from(w != 0) << (j % 64);
    }
    sig
}

/// Sets bit `i` of an LSB-first *index bitmap* (bit `i` lives at word
/// `i / 64`, offset `i % 64` — the layout used for sets of dense pid
/// indices, distinct from the MSB-first 1-based layout of
/// [`PathIdBits`](crate::PathIdBits)).
#[inline]
pub fn set_bit(a: &mut [u64], i: usize) {
    a[i / 64] |= 1u64 << (i % 64);
}

/// Tests bit `i` of an LSB-first index bitmap.
#[inline]
pub fn test_bit(a: &[u64], i: usize) -> bool {
    a[i / 64] & (1u64 << (i % 64)) != 0
}

/// Whether every word is zero.
#[inline]
pub fn is_empty(a: &[u64]) -> bool {
    let (chunks, tail) = a.split_at(a.len() - a.len() % CHUNK);
    for c in chunks.chunks_exact(CHUNK) {
        if c[0] | c[1] | c[2] | c[3] != 0 {
            return false;
        }
    }
    tail.iter().all(|&w| w == 0)
}

/// Iterates the set-bit indices of an LSB-first index bitmap, ascending.
#[inline]
pub fn ones(a: &[u64]) -> IndexOnes<'_> {
    IndexOnes {
        words: a,
        wi: 0,
        cur: a.first().copied().unwrap_or(0),
    }
}

/// Iterator over set-bit indices of an LSB-first index bitmap (see
/// [`ones`]).
#[derive(Clone, Debug)]
pub struct IndexOnes<'a> {
    words: &'a [u64],
    wi: usize,
    cur: u64,
}

impl Iterator for IndexOnes<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.cur == 0 {
            self.wi += 1;
            self.cur = *self.words.get(self.wi)?;
        }
        let bit = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        Some(self.wi * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementations padded to a common length.
    fn padded(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let n = a.len().max(b.len());
        let mut pa = a.to_vec();
        let mut pb = b.to_vec();
        pa.resize(n, 0);
        pb.resize(n, 0);
        (pa, pb)
    }

    fn cases() -> Vec<(Vec<u64>, Vec<u64>)> {
        let mut out = vec![
            (vec![], vec![]),
            (vec![0], vec![]),
            (vec![1, 2, 3], vec![3, 2]),
            (vec![u64::MAX; 9], vec![u64::MAX; 9]),
            (vec![0; 9], vec![u64::MAX; 8]),
        ];
        // Deterministic pseudo-random rows across chunk boundaries.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for la in [1usize, 3, 4, 5, 8, 11] {
            for lb in [1usize, 4, 7, 12] {
                let a: Vec<u64> = (0..la).map(|_| next() & next()).collect();
                let mut b: Vec<u64> = (0..lb).map(|_| next() & next()).collect();
                // Bias towards actual subsets now and then.
                if la <= lb && next() % 2 == 0 {
                    for (i, w) in a.iter().enumerate() {
                        b[i] |= w;
                    }
                }
                out.push((a, b));
            }
        }
        out
    }

    #[test]
    fn predicates_match_padded_reference() {
        for (a, b) in cases() {
            let (pa, pb) = padded(&a, &b);
            let ref_inter = pa.iter().zip(&pb).any(|(x, y)| x & y != 0);
            let ref_subset = pa.iter().zip(&pb).all(|(x, y)| x & !y == 0);
            assert_eq!(intersects(&a, &b), ref_inter, "{a:?} {b:?}");
            assert_eq!(intersects(&b, &a), ref_inter);
            assert_eq!(is_subset(&a, &b), ref_subset, "{a:?} {b:?}");
            assert_eq!(
                count_ones(&a),
                a.iter().map(|w| w.count_ones()).sum::<u32>()
            );
        }
    }

    #[test]
    fn assign_ops_match_padded_reference() {
        for (a, b) in cases() {
            let (pa, pb) = padded(&a, &b);
            let mut or = a.clone();
            or_assign(&mut or, &b);
            let mut and = a.clone();
            and_assign(&mut and, &b);
            for i in 0..a.len() {
                assert_eq!(or[i], pa[i] | pb[i], "or word {i}");
                assert_eq!(and[i], pa[i] & pb[i], "and word {i}");
            }
        }
    }

    #[test]
    fn signature_screens_are_sound() {
        for (a, b) in cases() {
            // The screen may pass non-subsets but must never refuse one.
            if is_subset(&a, &b) {
                assert_eq!(support_signature(&a) & !support_signature(&b), 0);
            }
        }
        assert_eq!(support_signature(&[]), 0);
        assert_eq!(support_signature(&[0, 5, 0, 1]), 0b1010);
    }

    #[test]
    fn index_bitmap_ops_round_trip() {
        let mut bm = vec![0u64; 3];
        assert!(is_empty(&bm));
        assert_eq!(ones(&bm).count(), 0);
        assert_eq!(ones(&[]).count(), 0);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 191] {
            set_bit(&mut bm, i);
        }
        assert!(!is_empty(&bm));
        for i in 0..192 {
            assert_eq!(
                test_bit(&bm, i),
                [0usize, 1, 63, 64, 65, 127, 128, 191].contains(&i),
                "bit {i}"
            );
        }
        assert_eq!(
            ones(&bm).collect::<Vec<_>>(),
            vec![0, 1, 63, 64, 65, 127, 128, 191]
        );
        // Longer bitmaps exercise the chunked is_empty path.
        let mut long = vec![0u64; 11];
        assert!(is_empty(&long));
        set_bit(&mut long, 64 * 10 + 3);
        assert!(!is_empty(&long));
        assert_eq!(ones(&long).collect::<Vec<_>>(), vec![643]);
    }
}
