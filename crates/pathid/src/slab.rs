//! Arena-backed path-id bitmap storage — the cache-conscious layout under
//! the bit-parallel join kernel.
//!
//! A [`PidInterner`] stores every id as its own `Box<[u64]>`: correct,
//! but the containment-adjacency builder compares ids **pairwise and
//! quadratically**, and every comparison then chases a fresh pointer to
//! a tiny heap object. [`PidBitmapSlab`] re-lays the same ids out as one
//! contiguous allocation of fixed-stride rows:
//!
//! ```text
//!   storage: [ pad.. | row 0 ........ | row 1 ........ | row 2 ... ]
//!             ^ alignment offset      ^ 64-byte boundary
//! ```
//!
//! * one allocation per summary instead of one per id;
//! * rows padded with zero words to a multiple of 8 (64 bytes), so each
//!   row starts on a cache-line boundary — XMark's 344-bit ids (6 words)
//!   become exactly one line per id;
//! * row order is interner handle order, so `Pid::index` addresses rows
//!   directly.
//!
//! [`PidBitsRef`] is the borrowed view over one row. It mirrors the
//! query API of [`PathIdBits`] (containment, intersection, popcount) and
//! interoperates with it, so call sites keep working against either
//! representation; zero-padding makes the mixed-length word comparisons
//! in [`crate::words`] exact.

use crate::bits::PathIdBits;
use crate::interner::PidInterner;
use crate::words;

/// Words per cache line — slab rows are padded to this stride multiple.
const LINE_WORDS: usize = 8;

/// All path ids of one summary as contiguous, 64-byte-aligned bitmap
/// rows in a single arena allocation.
#[derive(Debug)]
pub struct PidBitmapSlab {
    /// Width in bits of every id.
    nbits: u32,
    /// Row stride in words (a multiple of [`LINE_WORDS`]; 0 iff the
    /// width is 0).
    words_per_row: usize,
    /// Index of the first row's first word inside `storage` — chosen
    /// after allocation so the first row sits on a 64-byte boundary.
    offset: usize,
    rows: usize,
    storage: Vec<u64>,
}

impl Clone for PidBitmapSlab {
    /// The alignment offset is a function of the allocation's base
    /// address, so a clone cannot copy `offset` verbatim: the fresh
    /// `Vec` is only guaranteed 8-byte aligned. Re-derive the offset for
    /// the new allocation and re-skew the row data under it, keeping the
    /// 64-byte row-alignment invariant.
    fn clone(&self) -> Self {
        let mut storage = vec![0u64; self.storage.len()];
        let misalign = (storage.as_ptr() as usize % 64) / std::mem::size_of::<u64>();
        let offset = (LINE_WORDS - misalign) % LINE_WORDS;
        let data = self.rows * self.words_per_row;
        storage[offset..offset + data]
            .copy_from_slice(&self.storage[self.offset..self.offset + data]);
        let slab = PidBitmapSlab {
            nbits: self.nbits,
            words_per_row: self.words_per_row,
            offset,
            rows: self.rows,
            storage,
        };
        debug_assert!(
            slab.rows == 0
                || slab.words_per_row == 0
                || slab.row_words(0).as_ptr() as usize % 64 == 0
        );
        slab
    }
}

impl PidBitmapSlab {
    /// Lays out every id of `pids` (in handle order) as aligned rows.
    pub fn from_interner(pids: &PidInterner) -> Self {
        let nbits = pids.width();
        let rows = pids.len();
        let words_per_row = if nbits == 0 {
            0
        } else {
            (nbits.div_ceil(64) as usize).next_multiple_of(LINE_WORDS)
        };
        // Over-allocate by one line, then skew the logical start so row 0
        // lands on a 64-byte boundary (Vec<u64> only guarantees 8). The
        // vector is never grown afterwards, so the base pointer — and
        // with it the alignment — stays put.
        let mut storage = vec![0u64; rows * words_per_row + LINE_WORDS];
        let misalign = (storage.as_ptr() as usize % 64) / std::mem::size_of::<u64>();
        let offset = (LINE_WORDS - misalign) % LINE_WORDS;
        for (i, (_, bits)) in pids.iter().enumerate() {
            let start = offset + i * words_per_row;
            storage[start..start + bits.words().len()].copy_from_slice(bits.words());
        }
        let slab = PidBitmapSlab {
            nbits,
            words_per_row,
            offset,
            rows,
            storage,
        };
        debug_assert!(
            slab.rows == 0
                || slab.words_per_row == 0
                || slab.row_words(0).as_ptr() as usize % 64 == 0
        );
        slab
    }

    /// Width in bits of every row.
    #[inline]
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// Number of rows (ids).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row stride in words.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The raw words of row `i` (padding words are zero).
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        debug_assert!(i < self.rows, "slab row {i} out of range");
        let start = self.offset + i * self.words_per_row;
        &self.storage[start..start + self.words_per_row]
    }

    /// Borrowed bitset view of row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> PidBitsRef<'_> {
        PidBitsRef {
            nbits: self.nbits,
            words: self.row_words(i),
        }
    }

    /// Arena footprint in bytes (the one allocation, padding included).
    pub fn size_bytes(&self) -> usize {
        self.storage.len() * std::mem::size_of::<u64>()
    }
}

/// Borrowed view of one path id's bits — a slab row, or any
/// [`PathIdBits`] via [`PathIdBits`]-taking methods. Padding beyond the
/// logical width is guaranteed zero.
#[derive(Clone, Copy, Debug)]
pub struct PidBitsRef<'a> {
    nbits: u32,
    words: &'a [u64],
}

impl<'a> PidBitsRef<'a> {
    /// Width in bits.
    #[inline]
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// The raw storage words.
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// `self & other == other` (containment or equality), against
    /// another row view.
    #[inline]
    pub fn contains_or_equal(&self, other: PidBitsRef<'_>) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        words::is_subset(other.words, self.words)
    }

    /// Whether any bit is set in both, against another row view.
    #[inline]
    pub fn intersects(&self, other: PidBitsRef<'_>) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        words::intersects(self.words, other.words)
    }

    /// Whether any bit is set in both this row and a boxed id (how the
    /// adjacency builder screens slab rows against relation masks).
    #[inline]
    pub fn intersects_bits(&self, other: &PathIdBits) -> bool {
        debug_assert_eq!(self.nbits, other.nbits());
        words::intersects(self.words, other.words())
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        words::count_ones(self.words)
    }

    /// The 64-bit word-support signature (see
    /// [`words::support_signature`]).
    #[inline]
    pub fn support_signature(&self) -> u64 {
        words::support_signature(self.words)
    }

    /// Materializes the view as an owned [`PathIdBits`].
    pub fn to_bits(&self) -> PathIdBits {
        let mut out = PathIdBits::zero(self.nbits);
        let n = out.words().len();
        // Positions are 1-based from the left; rebuild via set() to keep
        // the canonical representation without exposing mutable words.
        for wi in 0..n {
            let mut w = self.words[wi];
            while w != 0 {
                let lz = w.leading_zeros();
                w &= !(1u64 << (63 - lz));
                out.set(wi as u32 * 64 + lz + 1);
            }
        }
        out
    }
}

impl PathIdBits {
    /// Borrowed view of this id, interoperable with slab rows.
    #[inline]
    pub fn as_bits_ref(&self) -> PidBitsRef<'_> {
        PidBitsRef {
            nbits: self.nbits(),
            words: self.words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An interner of deterministic stride patterns at `width` bits.
    fn patterned_interner(width: u32) -> PidInterner {
        let mut pids = PidInterner::new(width);
        pids.intern(PathIdBits::zero(width));
        let mut full = PathIdBits::zero(width);
        for i in 1..=width {
            full.set(i);
        }
        pids.intern(full);
        for stride in [1u32, 2, 3, 7, 63, 64, 65] {
            let mut b = PathIdBits::zero(width);
            let mut i = 1;
            while i <= width {
                b.set(i);
                i += stride;
            }
            pids.intern(b);
        }
        pids
    }

    #[test]
    fn slab_rows_round_trip_across_widths() {
        for width in [1u32, 63, 64, 65, 200] {
            let pids = patterned_interner(width);
            let slab = PidBitmapSlab::from_interner(&pids);
            assert_eq!(slab.rows(), pids.len(), "width {width}");
            assert_eq!(slab.nbits(), width);
            assert_eq!(slab.words_per_row() % LINE_WORDS, 0);
            assert!(slab.words_per_row() * 64 >= width as usize);
            for (pid, bits) in pids.iter() {
                let row = slab.get(pid.index());
                assert_eq!(&row.to_bits(), bits, "width {width} row {pid:?}");
                assert_eq!(row.count_ones(), bits.count_ones());
                // Padding beyond the id's own words is zero.
                for &w in &row.words()[bits.words().len()..] {
                    assert_eq!(w, 0);
                }
            }
        }
    }

    #[test]
    fn slab_rows_are_cache_line_aligned() {
        for width in [1u32, 63, 64, 65, 200] {
            let pids = patterned_interner(width);
            let slab = PidBitmapSlab::from_interner(&pids);
            for i in 0..slab.rows() {
                assert_eq!(
                    slab.row_words(i).as_ptr() as usize % 64,
                    0,
                    "width {width} row {i} must start on a 64-byte boundary"
                );
            }
        }
    }

    /// Cloning reallocates, so the clone must re-derive its alignment
    /// offset — a verbatim copy of `offset` would leave rows on whatever
    /// 8-byte boundary the new `Vec` landed on.
    #[test]
    fn cloned_slabs_keep_rows_aligned_and_equal() {
        for width in [1u32, 63, 64, 65, 200] {
            let pids = patterned_interner(width);
            let slab = PidBitmapSlab::from_interner(&pids);
            // Several clones so at least one lands at a different base
            // misalignment than the original with high probability.
            let clones: Vec<PidBitmapSlab> = (0..8).map(|_| slab.clone()).collect();
            for c in &clones {
                assert_eq!(c.rows(), slab.rows());
                assert_eq!(c.nbits(), slab.nbits());
                assert_eq!(c.words_per_row(), slab.words_per_row());
                for i in 0..slab.rows() {
                    assert_eq!(c.row_words(i), slab.row_words(i), "width {width} row {i}");
                    assert_eq!(
                        c.row_words(i).as_ptr() as usize % 64,
                        0,
                        "width {width} row {i} of clone must stay 64-byte aligned"
                    );
                }
            }
        }
        // Degenerate shapes clone without panicking.
        let empty = PidBitmapSlab::from_interner(&PidInterner::new(5)).clone();
        assert_eq!(empty.rows(), 0);
        let mut zw = PidInterner::new(0);
        zw.intern(PathIdBits::zero(0));
        let zclone = PidBitmapSlab::from_interner(&zw).clone();
        assert_eq!(zclone.rows(), 1);
        assert_eq!(zclone.get(0).count_ones(), 0);
    }

    #[test]
    fn slab_views_agree_with_boxed_predicates() {
        for width in [1u32, 63, 64, 65, 200] {
            let pids = patterned_interner(width);
            let slab = PidBitmapSlab::from_interner(&pids);
            for (pu, bu) in pids.iter() {
                for (pv, bv) in pids.iter() {
                    let ru = slab.get(pu.index());
                    let rv = slab.get(pv.index());
                    assert_eq!(
                        ru.contains_or_equal(rv),
                        bu.contains_or_equal(bv),
                        "width {width} {pu:?} ⊇ {pv:?}"
                    );
                    assert_eq!(ru.intersects(rv), bu.intersects(bv));
                    assert_eq!(ru.intersects_bits(bv), bu.intersects(bv));
                    // The signature screen never refuses a true subset.
                    if bu.contains_or_equal(bv) {
                        assert_eq!(rv.support_signature() & !ru.support_signature(), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn zero_width_and_empty_slabs() {
        let empty = PidBitmapSlab::from_interner(&PidInterner::new(5));
        assert_eq!(empty.rows(), 0);
        let mut zw = PidInterner::new(0);
        zw.intern(PathIdBits::zero(0));
        let slab = PidBitmapSlab::from_interner(&zw);
        assert_eq!(slab.rows(), 1);
        assert_eq!(slab.words_per_row(), 0);
        assert_eq!(slab.get(0).count_ones(), 0);
        assert!(slab.get(0).contains_or_equal(slab.get(0)));
    }
}
