//! The path-join pruning test, decoupled from [`Labeling`](crate::Labeling).
//!
//! The estimator keeps only the summary (encoding table + interned ids),
//! not the per-node labels, so the §2 relationship test is exposed as a
//! free function over those two structures.

use xpe_xml::TagId;

use crate::encoding::EncodingTable;
use crate::interner::{Pid, PidInterner};

/// Whether `(pid_u, tag_u)` can be an ancestor (or, with `child_axis`, the
/// parent) of `(pid_v, tag_v)`: `u`'s id must contain or equal `v`'s, and
/// the tags must relate on at least one root-to-leaf path of `v`'s id
/// (paper §2, Cases 1 and 2).
pub fn axis_compatible(
    encoding: &EncodingTable,
    pids: &PidInterner,
    pid_u: Pid,
    tag_u: TagId,
    pid_v: Pid,
    tag_v: TagId,
    child_axis: bool,
) -> bool {
    let bu = pids.bits(pid_u);
    let bv = pids.bits(pid_v);
    if !bu.contains_or_equal(bv) {
        return false;
    }
    bv.ones()
        .any(|enc| encoding.axis_holds(enc, tag_u, tag_v, child_axis))
}

/// Precomputed bitset over path encodings where the `(tag_u, tag_v)`
/// relation holds — the join's fast path.
///
/// With the mask in hand, the §2 test collapses to pure bit operations:
/// `(pid_u ⊇ pid_v) ∧ (pid_v ∩ mask ≠ ∅)`. Building a mask is
/// `O(#paths × path length)`; one mask serves every pid pair of a query
/// edge, which turns the nested-loop join from path-scans per pair into a
/// few word ANDs per pair. See [`axis_compatible_masked`].
pub fn relation_mask(
    encoding: &EncodingTable,
    tag_u: TagId,
    tag_v: TagId,
    child_axis: bool,
) -> crate::bits::PathIdBits {
    let width = encoding.len() as u32;
    let mut mask = crate::bits::PathIdBits::zero(width);
    for (enc, _) in encoding.iter() {
        if encoding.axis_holds(enc, tag_u, tag_v, child_axis) {
            mask.set(enc);
        }
    }
    mask
}

/// An immutable view of every relation mask published so far. Probed
/// lock-free by readers holding it; see [`RelationMaskCache`].
#[derive(Debug, Default)]
pub struct RelationMaskSnapshot {
    masks: std::collections::HashMap<(TagId, TagId, bool), std::sync::Arc<crate::bits::PathIdBits>>,
}

impl RelationMaskSnapshot {
    /// The published mask for `(tag_u, tag_v, child_axis)`, if any.
    #[inline]
    pub fn get(
        &self,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> Option<&std::sync::Arc<crate::bits::PathIdBits>> {
        self.masks.get(&(tag_u, tag_v, child_axis))
    }

    /// Number of published masks.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether no mask has been published.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }
}

/// Epoch-published memo table over [`relation_mask`].
///
/// A mask depends only on `(tag_u, tag_v, child_axis)` and the encoding
/// table, which is immutable once a summary is built — so across a query
/// workload the same few masks are recomputed constantly (every fixpoint
/// pass of every join of every query). Concurrent estimators over one
/// summary share a single cache, so a batch warms it for every worker.
///
/// Like [`JoinIndexCache`](crate::JoinIndexCache), reads go through an
/// immutable [`RelationMaskSnapshot`]: take it once, revalidate with one
/// [`epoch`](Self::epoch) load, probe lock-free. The mutex guards
/// publication only — a miss computes its mask *outside* the lock, then
/// rechecks and swaps in a fresh `Arc` (first publication wins; a racing
/// duplicate is dropped), so cold builds on different keys proceed in
/// parallel and never stall readers refreshing their snapshots.
#[derive(Debug, Default)]
pub struct RelationMaskCache {
    published: std::sync::Mutex<std::sync::Arc<RelationMaskSnapshot>>,
    epoch: std::sync::atomic::AtomicU64,
    locks: std::sync::atomic::AtomicU64,
}

impl RelationMaskCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current publication epoch; bumped (release) after every
    /// publication, so a reader whose held snapshot matches this epoch
    /// can skip the refresh entirely.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The current snapshot (one mutex acquisition; probe the returned
    /// `Arc` lock-free afterwards).
    pub fn snapshot(&self) -> std::sync::Arc<RelationMaskSnapshot> {
        std::sync::Arc::clone(&self.lock_published())
    }

    fn lock_published(&self) -> std::sync::MutexGuard<'_, std::sync::Arc<RelationMaskSnapshot>> {
        self.locks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.published
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The mask for `(tag_u, tag_v, child_axis)`, computing and publishing
    /// it on first use.
    pub fn get(
        &self,
        encoding: &EncodingTable,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> std::sync::Arc<crate::bits::PathIdBits> {
        let key = (tag_u, tag_v, child_axis);
        let snap = self.snapshot();
        if let Some(m) = snap.get(tag_u, tag_v, child_axis) {
            return std::sync::Arc::clone(m);
        }
        // Compute outside the publish lock: the mutex guards publication
        // only, so a slow mask build never convoys other workers'
        // snapshot refreshes, and misses on different keys compute in
        // parallel. Two workers racing on the *same* key may both
        // compute it; the recheck below keeps the first publication and
        // the loser's copy is dropped — masks are pure functions of the
        // key and the encoding table, so either copy is correct.
        let computed = std::sync::Arc::new(relation_mask(encoding, tag_u, tag_v, child_axis));
        let mut published = self.lock_published();
        if let Some(m) = published.get(tag_u, tag_v, child_axis) {
            return std::sync::Arc::clone(m);
        }
        let mut next = RelationMaskSnapshot {
            masks: published.masks.clone(),
        };
        next.masks.insert(key, std::sync::Arc::clone(&computed));
        *published = std::sync::Arc::new(next);
        self.epoch
            .fetch_add(1, std::sync::atomic::Ordering::Release);
        computed
    }

    /// Number of published masks.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether no mask has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of publish-mutex acquisitions so far (snapshot refreshes,
    /// cold publications, and introspection all count).
    pub fn lock_count(&self) -> u64 {
        self.locks.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// The §2 test against a precomputed [`relation_mask`].
#[inline]
pub fn axis_compatible_masked(
    pids: &PidInterner,
    pid_u: Pid,
    pid_v: Pid,
    mask: &crate::bits::PathIdBits,
) -> bool {
    let bu = pids.bits(pid_u);
    let bv = pids.bits(pid_v);
    bu.contains_or_equal(bv) && bv.intersects(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Labeling;

    #[test]
    fn masked_path_agrees_with_direct_path() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        for (tu, _) in doc.tags().iter() {
            for (tv, _) in doc.tags().iter() {
                for child in [true, false] {
                    let mask = relation_mask(&lab.encoding, tu, tv, child);
                    for (pu, _) in lab.interner.iter() {
                        for (pv, _) in lab.interner.iter() {
                            assert_eq!(
                                axis_compatible(
                                    &lab.encoding,
                                    &lab.interner,
                                    pu,
                                    tu,
                                    pv,
                                    tv,
                                    child
                                ),
                                axis_compatible_masked(&lab.interner, pu, pv, &mask),
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cache_returns_identical_masks() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let cache = RelationMaskCache::new();
        assert!(cache.is_empty());
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        for &tu in &tags {
            for &tv in &tags {
                for child in [true, false] {
                    let cached = cache.get(&lab.encoding, tu, tv, child);
                    let fresh = relation_mask(&lab.encoding, tu, tv, child);
                    assert_eq!(*cached, fresh);
                    // Second lookup hits the memo and agrees.
                    let again = cache.get(&lab.encoding, tu, tv, child);
                    assert_eq!(*again, fresh);
                }
            }
        }
        assert_eq!(cache.len(), tags.len() * tags.len() * 2);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let cache = std::sync::Arc::new(RelationMaskCache::new());
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for &tu in &tags {
                        for &tv in &tags {
                            let m = cache.get(&lab.encoding, tu, tv, true);
                            assert_eq!(*m, relation_mask(&lab.encoding, tu, tv, true));
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), tags.len() * tags.len());
    }

    #[test]
    fn matches_labeling_method() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        for x in doc.node_ids() {
            for y in doc.node_ids() {
                for child in [true, false] {
                    assert_eq!(
                        axis_compatible(
                            &lab.encoding,
                            &lab.interner,
                            lab.pid(x),
                            doc.tag(x),
                            lab.pid(y),
                            doc.tag(y),
                            child,
                        ),
                        lab.axis_compatible(lab.pid(x), doc.tag(x), lab.pid(y), doc.tag(y), child),
                    );
                }
            }
        }
    }
}
