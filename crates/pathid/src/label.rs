//! Assigning path ids to every element of a document (paper §2).
//!
//! Two passes:
//!
//! 1. Collect the distinct root-to-leaf label paths into the
//!    [`EncodingTable`], in first-encounter document order.
//! 2. Bottom-up, give each leaf the single-bit id of its path and each
//!    internal node the OR of its children's ids; intern every id.

use xpe_xml::{Document, NodeId, TagId};

use crate::bits::PathIdBits;
use crate::encoding::EncodingTable;
use crate::interner::{Pid, PidInterner};

/// The complete path-id labeling of one document.
#[derive(Clone, Debug)]
pub struct Labeling {
    /// Distinct root-to-leaf paths and their encodings.
    pub encoding: EncodingTable,
    /// Distinct path ids.
    pub interner: PidInterner,
    /// `node_pids[node.index()]` is the path id of each element.
    pub node_pids: Vec<Pid>,
}

impl Labeling {
    /// Labels `doc` (paper Figure 1).
    pub fn compute(doc: &Document) -> Self {
        // Pass 1: encode distinct root-to-leaf paths in document order.
        let mut encoding = EncodingTable::new();
        let mut leaf_encoding: Vec<u32> = vec![0; doc.len()];
        let mut stack: Vec<(NodeId, usize)> = vec![(doc.root(), 0)];
        let mut path: Vec<TagId> = Vec::new();
        while let Some((id, depth)) = stack.pop() {
            path.truncate(depth);
            path.push(doc.tag(id));
            let children = doc.children(id);
            if children.is_empty() {
                leaf_encoding[id.index()] = encoding.intern(&path);
            } else {
                for &c in children.iter().rev() {
                    stack.push((c, depth + 1));
                }
            }
        }

        // Pass 2: bottom-up OR. Node ids are pre-order, so a reverse scan
        // sees every child before its parent.
        let width = encoding.len() as u32;
        let mut interner = PidInterner::new(width);
        let mut bits: Vec<PathIdBits> = vec![PathIdBits::zero(width); doc.len()];
        for i in (0..doc.len()).rev() {
            let id = NodeId::from_index(i);
            if doc.children(id).is_empty() {
                bits[i] = PathIdBits::single(width, leaf_encoding[i]);
            }
            if let Some(p) = doc.parent(id) {
                let (low, high) = split_two(&mut bits, p.index(), i);
                low.or_assign(high);
            }
        }
        let node_pids: Vec<Pid> = bits.into_iter().map(|b| interner.intern(b)).collect();

        Labeling {
            encoding,
            interner,
            node_pids,
        }
    }

    /// The path id of an element.
    #[inline]
    pub fn pid(&self, node: NodeId) -> Pid {
        self.node_pids[node.index()]
    }

    /// Whether a pair of (pid, tag) annotations can stand in the given
    /// relationship: `u`'s id must contain (or equal) `v`'s, and the tags
    /// must relate accordingly on at least one shared root-to-leaf path
    /// (paper §2, Cases 1 and 2 — the test the path join applies per edge).
    pub fn axis_compatible(
        &self,
        pid_u: Pid,
        tag_u: TagId,
        pid_v: Pid,
        tag_v: TagId,
        child_axis: bool,
    ) -> bool {
        crate::rel::axis_compatible(
            &self.encoding,
            &self.interner,
            pid_u,
            tag_u,
            pid_v,
            tag_v,
            child_axis,
        )
    }
}

/// Disjoint mutable borrows of two vector slots (`a < b` not required).
fn split_two<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xml::parse;

    fn fig1() -> Document {
        xpe_xml::fixtures::paper_figure1()
    }

    /// Collects the pid bit string of every element with `tag`.
    fn pids_of(doc: &Document, lab: &Labeling, tag: &str) -> Vec<String> {
        doc.node_ids()
            .filter(|&n| doc.tag_name(n) == tag)
            .map(|n| lab.interner.bits(lab.pid(n)).to_string())
            .collect()
    }

    #[test]
    fn figure1_encodings_match_paper() {
        let doc = fig1();
        let lab = Labeling::compute(&doc);
        assert_eq!(lab.encoding.len(), 4);
        let tags = doc.tags();
        let (root, a, b, c, d, e, f) = (
            tags.get("Root").unwrap(),
            tags.get("A").unwrap(),
            tags.get("B").unwrap(),
            tags.get("C").unwrap(),
            tags.get("D").unwrap(),
            tags.get("E").unwrap(),
            tags.get("F").unwrap(),
        );
        // First-encounter document order reproduces the paper's Figure 1(b)
        // exactly: 1 = Root/A/B/D, 2 = Root/A/B/E, 3 = Root/A/C/E,
        // 4 = Root/A/C/F.
        assert_eq!(lab.encoding.encoding_of(&[root, a, b, d]), Some(1));
        assert_eq!(lab.encoding.encoding_of(&[root, a, b, e]), Some(2));
        assert_eq!(lab.encoding.encoding_of(&[root, a, c, e]), Some(3));
        assert_eq!(lab.encoding.encoding_of(&[root, a, c, f]), Some(4));
        let _ = (e, f);
    }

    #[test]
    fn figure1_pid_structure_matches_paper() {
        let doc = fig1();
        let lab = Labeling::compute(&doc);
        // 9 distinct pids, as in Figure 1(c).
        assert_eq!(lab.interner.len(), 9);
        // Pid width = 4 distinct paths.
        assert_eq!(lab.interner.width(), 4);
        // Root's pid is all ones (it covers every path).
        let root_bits = lab.interner.bits(lab.pid(doc.root()));
        assert_eq!(root_bits.to_string(), "1111");
        // Every D has a single-bit pid on the B/D path; all Ds share it.
        let d_pids = pids_of(&doc, &lab, "D");
        assert_eq!(d_pids.len(), 4);
        assert!(d_pids.iter().all(|p| p == &d_pids[0]));
        assert_eq!(d_pids[0].matches('1').count(), 1);
        // The three As have three distinct pids (paper: p6, p7, p8).
        let mut a_pids = pids_of(&doc, &lab, "A");
        a_pids.sort();
        a_pids.dedup();
        assert_eq!(a_pids.len(), 3);
        // The two Cs have two distinct pids (p2 and p3).
        let mut c_pids = pids_of(&doc, &lab, "C");
        c_pids.sort();
        c_pids.dedup();
        assert_eq!(c_pids.len(), 2);
    }

    #[test]
    fn parent_pid_contains_or_equals_child_pid() {
        let doc = fig1();
        let lab = Labeling::compute(&doc);
        for n in doc.node_ids() {
            if let Some(p) = doc.parent(n) {
                assert!(
                    lab.interner.contains_or_equal(lab.pid(p), lab.pid(n)),
                    "parent pid must cover child pid"
                );
            }
        }
    }

    #[test]
    fn axis_compatible_matches_paper_examples() {
        let doc = fig1();
        let lab = Labeling::compute(&doc);
        let tags = doc.tags();
        let (a, b, c, e) = (
            tags.get("A").unwrap(),
            tags.get("B").unwrap(),
            tags.get("C").unwrap(),
            tags.get("E").unwrap(),
        );
        // Example 2.3: C with p3 contains E with p2; C is parent of E.
        let c_nodes: Vec<NodeId> = doc.node_ids().filter(|&n| doc.tag(n) == c).collect();
        let e_under_c = doc.children(c_nodes[0])[0];
        assert_eq!(doc.tag(e_under_c), e);
        assert!(lab.axis_compatible(lab.pid(c_nodes[0]), c, lab.pid(e_under_c), e, true));
        assert!(lab.axis_compatible(lab.pid(c_nodes[0]), c, lab.pid(e_under_c), e, false));
        // Example 2.2: A and B with the same pid (second A subtree): A is
        // parent of B.
        let second_a = doc.children(doc.root())[1];
        let b_under = doc.children(second_a)[0];
        assert_eq!(doc.tag(b_under), b);
        // Reverse direction never holds.
        assert!(!lab.axis_compatible(lab.pid(b_under), b, lab.pid(second_a), a, false));
    }

    #[test]
    fn single_node_document() {
        let doc = parse("<only/>").unwrap();
        let lab = Labeling::compute(&doc);
        assert_eq!(lab.encoding.len(), 1);
        assert_eq!(lab.interner.len(), 1);
        assert_eq!(lab.interner.bits(lab.pid(doc.root())).to_string(), "1");
    }

    #[test]
    fn leaf_pid_has_exactly_one_bit() {
        let doc = fig1();
        let lab = Labeling::compute(&doc);
        for n in doc.node_ids() {
            if doc.children(n).is_empty() {
                assert_eq!(lab.interner.bits(lab.pid(n)).count_ones(), 1);
            }
        }
    }
}
