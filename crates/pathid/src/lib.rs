//! The path encoding scheme of the ICDE'06 XPath estimation system.
//!
//! Paper §2 (following the authors' XSym'05 labeling): every distinct
//! root-to-leaf label path of a document gets an integer *encoding*
//! ([`EncodingTable`]); every element gets a *path id* — a bit sequence
//! with one bit per distinct path ([`PathIdBits`]) — where a leaf sets the
//! bit of its path and an internal node ORs its children's ids
//! ([`Labeling`]). Bitwise containment between path ids witnesses
//! ancestor/descendant relationships (`PidX & PidY = PidY`), and the
//! encoding table resolves whether the relation is parent-child or deeper.
//!
//! Paper §6: ids are indexed by a compressed binary tree ([`PathIdTree`])
//! whose ordinal numbering also serves as the canonical pid order for the
//! histograms, and which reconstructs any bit sequence from its ordinal.
//!
//! # Example
//!
//! ```
//! use xpe_pathid::{Labeling, PathIdTree};
//!
//! let doc = xpe_xml::parse_document(
//!     "<Root><A><B><D/></B><C><E/><F/></C></A></Root>").unwrap();
//! let lab = Labeling::compute(&doc);
//! assert_eq!(lab.encoding.len(), 3); // B/D, C/E, C/F
//!
//! // The root covers every path.
//! let root_pid = lab.pid(doc.root());
//! assert_eq!(lab.interner.bits(root_pid).count_ones(), 3);
//!
//! let tree = PathIdTree::new(&lab.interner);
//! let ord = tree.ord(root_pid);
//! assert_eq!(tree.bits_of_ord(ord).unwrap(), *lab.interner.bits(root_pid));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod bits;
mod encoding;
mod interner;
mod label;
mod rel;
mod slab;
mod stream;
mod tree;
pub mod words;

pub use adjacency::{
    ContainmentAdjacency, JoinIndexCache, JoinIndexSnapshot, PidContainmentRelation,
};
pub use bits::{Ones, PathIdBits};
pub use encoding::{EncodingTable, PathEncoding};
pub use interner::{Pid, PidInterner};
pub use label::Labeling;
pub use rel::{
    axis_compatible, axis_compatible_masked, relation_mask, RelationMaskCache, RelationMaskSnapshot,
};
pub use slab::{PidBitmapSlab, PidBitsRef};
pub use stream::{PathScan, StreamLabeler, StreamLabeling, StreamSink};
pub use tree::PathIdTree;
