//! Variable-width path-id bitsets.
//!
//! A path id is "a sequence of bits" whose width equals the number of
//! distinct root-to-leaf paths in the document (paper §2). Bit *i* counted
//! from the **left** (1-based, matching the paper's figures) corresponds to
//! the root-to-leaf path with encoding *i*.

use std::fmt;

/// A fixed-width bitset representing one path id value.
///
/// All path ids of one document share the same width; arithmetic between
/// differently sized ids is a logic error and panics in debug builds.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathIdBits {
    /// Number of meaningful bits.
    nbits: u32,
    /// Storage, most significant (leftmost) path first: bit `i` (1-based,
    /// from the left) lives in `words[(i-1)/64]` at offset `63-((i-1)%64)`.
    /// This layout makes the derived lexicographic `Ord` coincide with the
    /// numeric order of the bit string, which the path-id binary tree
    /// relies on.
    words: Box<[u64]>,
}

impl PathIdBits {
    /// The all-zero id of the given width. A zero-width id stores no
    /// words at all (empty documents produce width-0 encoding tables;
    /// allocating a word for them would make every such id carry a
    /// 8-byte slab it can never set a bit in).
    pub fn zero(nbits: u32) -> Self {
        let n = nbits.div_ceil(64) as usize;
        PathIdBits {
            nbits,
            words: vec![0u64; n].into_boxed_slice(),
        }
    }

    /// An id with exactly bit `pos` set (1-based from the left).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is 0 or exceeds the width.
    pub fn single(nbits: u32, pos: u32) -> Self {
        let mut b = Self::zero(nbits);
        b.set(pos);
        b
    }

    /// Width in bits.
    #[inline]
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// Sets bit `pos` (1-based from the left).
    pub fn set(&mut self, pos: u32) {
        assert!(pos >= 1 && pos <= self.nbits, "bit {pos} out of range");
        let idx = (pos - 1) as usize;
        self.words[idx / 64] |= 1u64 << (63 - (idx % 64));
    }

    /// Reads bit `pos` (1-based from the left).
    pub fn get(&self, pos: u32) -> bool {
        assert!(pos >= 1 && pos <= self.nbits, "bit {pos} out of range");
        let idx = (pos - 1) as usize;
        self.words[idx / 64] & (1u64 << (63 - (idx % 64))) != 0
    }

    /// Bitwise OR (the non-leaf labeling rule: a node's id is the OR of its
    /// children's ids).
    pub fn or_assign(&mut self, other: &PathIdBits) {
        debug_assert_eq!(self.nbits, other.nbits);
        crate::words::or_assign(&mut self.words, &other.words);
    }

    /// Bitwise AND — restricts this id to the paths of `other` (masking
    /// an id by a relation mask, for instance). Shares the chunked word
    /// loop of the join kernel helpers.
    pub fn and_assign(&mut self, other: &PathIdBits) {
        debug_assert_eq!(self.nbits, other.nbits);
        crate::words::and_assign(&mut self.words, &other.words);
    }

    /// The paper's *path id containment*: `self` ≠ `other` and
    /// `self & other == other`.
    pub fn contains(&self, other: &PathIdBits) -> bool {
        self != other && self.contains_or_equal(other)
    }

    /// `self & other == other` (containment or equality).
    pub fn contains_or_equal(&self, other: &PathIdBits) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        crate::words::is_subset(&other.words, &self.words)
    }

    /// Whether any bit is set in both ids (`self & other ≠ 0`).
    pub fn intersects(&self, other: &PathIdBits) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        crate::words::intersects(&self.words, &other.words)
    }

    /// Number of set bits (how many distinct root-to-leaf paths pass
    /// through nodes carrying this id).
    pub fn count_ones(&self) -> u32 {
        crate::words::count_ones(&self.words)
    }

    /// The raw storage words (leftmost path in the most significant bit
    /// of word 0) — how the slab ingests interned ids.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over set bit positions, 1-based from the left, ascending.
    ///
    /// Allocation-free: the iterator walks the words in place, clearing
    /// one set bit per step. (This sits on the persistence hot path —
    /// [`crate::PidInterner`] serializes every id as its position list.)
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            nbits: self.nbits,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The first (leftmost) set bit position, if any.
    pub fn first_one(&self) -> Option<u32> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                let pos = wi as u32 * 64 + w.leading_zeros() + 1;
                if pos <= self.nbits {
                    return Some(pos);
                }
            }
        }
        None
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Size of this id in bytes as the paper accounts for it
    /// (`⌈width / 8⌉`; e.g. XMark's 344-bit ids take 43 bytes).
    pub fn size_bytes(&self) -> usize {
        (self.nbits as usize).div_ceil(8)
    }
}

/// Iterator over the set bit positions of a [`PathIdBits`], 1-based from
/// the left, ascending. Returned by [`PathIdBits::ones`].
#[derive(Clone, Debug)]
pub struct Ones<'a> {
    words: &'a [u64],
    nbits: u32,
    word_index: usize,
    /// Remaining (not yet yielded) set bits of `words[word_index]`.
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.current != 0 {
                let lz = self.current.leading_zeros();
                self.current &= !(1u64 << (63 - lz));
                let pos = self.word_index as u32 * 64 + lz + 1;
                if pos <= self.nbits {
                    return Some(pos);
                }
                // Bits past `nbits` are padding in the final word; skip.
            } else {
                self.word_index += 1;
                if self.word_index >= self.words.len() {
                    return None;
                }
                self.current = self.words[self.word_index];
            }
        }
    }
}

impl fmt::Debug for PathIdBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PathIdBits(")?;
        for i in 1..=self.nbits {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for PathIdBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 1..=self.nbits {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_str(s: &str) -> PathIdBits {
        let mut b = PathIdBits::zero(s.len() as u32);
        for (i, c) in s.chars().enumerate() {
            if c == '1' {
                b.set(i as u32 + 1);
            }
        }
        b
    }

    #[test]
    fn paper_figure1_pids() {
        // p5 = 1000 (D on path 1), p3 = 0011 = or(p2=0010, p1=0001).
        let p1 = from_str("0001");
        let p2 = from_str("0010");
        let mut p3 = p1.clone();
        p3.or_assign(&p2);
        assert_eq!(p3.to_string(), "0011");
        let p5 = PathIdBits::single(4, 1);
        assert_eq!(p5.to_string(), "1000");
    }

    #[test]
    fn containment_matches_paper_example_2_3() {
        let p3 = from_str("0011");
        let p2 = from_str("0010");
        assert!(p3.contains(&p2));
        assert!(!p2.contains(&p3));
        assert!(!p3.contains(&p3), "containment is strict");
        assert!(p3.contains_or_equal(&p3));
    }

    #[test]
    fn ones_iterates_left_to_right() {
        let b = from_str("1010");
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(b.first_one(), Some(1));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn wide_ids_cross_word_boundaries() {
        let mut b = PathIdBits::zero(130);
        b.set(1);
        b.set(64);
        b.set(65);
        b.set(130);
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![1, 64, 65, 130]);
        assert_eq!(b.count_ones(), 4);
        assert_eq!(b.size_bytes(), 17);
        let mut c = PathIdBits::zero(130);
        c.set(65);
        assert!(b.contains(&c));
    }

    #[test]
    fn ord_is_numeric_on_bitstrings() {
        // Matches the binary-tree leaf order of the paper's Figure 6.
        let ids = [
            "0001", "0010", "0011", "0100", "1000", "1010", "1011", "1100", "1111",
        ];
        let mut parsed: Vec<PathIdBits> = ids.iter().map(|s| from_str(s)).collect();
        parsed.sort();
        let sorted: Vec<String> = parsed.iter().map(|b| b.to_string()).collect();
        assert_eq!(sorted, ids);
    }

    #[test]
    fn zero_and_empty() {
        let z = PathIdBits::zero(7);
        assert!(z.is_zero());
        assert_eq!(z.first_one(), None);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.size_bytes(), 1);
    }

    #[test]
    fn zero_width_allocates_no_words() {
        let z = PathIdBits::zero(0);
        assert!(z.is_zero());
        assert_eq!(z.words().len(), 0, "no storage for zero-width ids");
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.first_one(), None);
        assert_eq!(z.ones().count(), 0);
        assert_eq!(z.size_bytes(), 0);
        assert_eq!(z, PathIdBits::zero(0));
        // Width-respecting ops are no-ops, not panics.
        let mut a = PathIdBits::zero(0);
        a.or_assign(&z);
        a.and_assign(&z);
        assert!(a.contains_or_equal(&z) && !a.contains(&z));
        assert!(!a.intersects(&z));
    }

    #[test]
    fn and_assign_masks_across_words() {
        let mut b = PathIdBits::zero(130);
        for pos in [1, 64, 65, 100, 130] {
            b.set(pos);
        }
        let mut mask = PathIdBits::zero(130);
        for pos in [1, 65, 130] {
            mask.set(pos);
        }
        b.and_assign(&mask);
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![1, 65, 130]);
        b.and_assign(&PathIdBits::zero(130));
        assert!(b.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut b = PathIdBits::zero(4);
        b.set(5);
    }

    /// Positional spec of `ones()` (what the old per-word `flat_map`
    /// implementation computed): every `i` with bit `i` set, ascending.
    fn ones_reference(b: &PathIdBits) -> Vec<u32> {
        (1..=b.nbits()).filter(|&i| b.get(i)).collect()
    }

    #[test]
    fn ones_matches_reference_across_widths() {
        for width in [1u32, 64, 65, 200] {
            // Empty, full, and a family of stride patterns that exercise
            // word boundaries (positions 1, 64, 65, 128, 129, …).
            let mut patterns: Vec<PathIdBits> = vec![PathIdBits::zero(width)];
            let mut full = PathIdBits::zero(width);
            for i in 1..=width {
                full.set(i);
            }
            patterns.push(full);
            for stride in [1u32, 2, 3, 7, 63, 64, 65] {
                let mut b = PathIdBits::zero(width);
                let mut i = 1;
                while i <= width {
                    b.set(i);
                    i += stride;
                }
                patterns.push(b);
            }
            for (offset, b) in patterns.iter().enumerate() {
                let got: Vec<u32> = b.ones().collect();
                assert_eq!(got, ones_reference(b), "width {width}, pattern {offset}");
                assert_eq!(got.len() as u32, b.count_ones());
            }
        }
    }
}
