//! Interning of path-id bit sequences.
//!
//! Documents have few distinct path ids relative to their element count
//! (paper Table 3: SSPlays has 115 for 179,690 elements), so every
//! per-element and per-table reference is a 4-byte [`Pid`] handle into a
//! [`PidInterner`].

use std::collections::HashMap;
use std::fmt;

use crate::bits::PathIdBits;

/// Handle to an interned path id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub(crate) u32);

impl Pid {
    /// Dense index into the interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Pid(u32::try_from(index).expect("pid index overflows u32"))
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pid({})", self.0)
    }
}

/// Append-only store of distinct path-id bit sequences.
#[derive(Clone, Debug)]
pub struct PidInterner {
    width: u32,
    pids: Vec<PathIdBits>,
    index: HashMap<PathIdBits, Pid>,
}

impl PidInterner {
    /// Creates an interner for ids of `width` bits (the number of distinct
    /// root-to-leaf paths).
    pub fn new(width: u32) -> Self {
        PidInterner {
            width,
            pids: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Width in bits of every id in this interner.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Interns `bits`, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has the wrong width.
    pub fn intern(&mut self, bits: PathIdBits) -> Pid {
        assert_eq!(bits.nbits(), self.width, "path id width mismatch");
        if let Some(&p) = self.index.get(&bits) {
            return p;
        }
        let p = Pid(u32::try_from(self.pids.len()).expect("too many distinct pids"));
        self.pids.push(bits.clone());
        self.index.insert(bits, p);
        p
    }

    /// The bit sequence of `pid`.
    #[inline]
    pub fn bits(&self, pid: Pid) -> &PathIdBits {
        &self.pids[pid.index()]
    }

    /// The handle of `bits`, if interned.
    pub fn get(&self, bits: &PathIdBits) -> Option<Pid> {
        self.index.get(bits).copied()
    }

    /// Number of distinct path ids.
    pub fn len(&self) -> usize {
        self.pids.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.pids.is_empty()
    }

    /// Iterates over `(pid, bits)` in handle order.
    pub fn iter(&self) -> impl Iterator<Item = (Pid, &PathIdBits)> {
        self.pids
            .iter()
            .enumerate()
            .map(|(i, b)| (Pid(i as u32), b))
    }

    /// Strict containment between two interned ids (paper §2 Case 2).
    pub fn contains(&self, a: Pid, b: Pid) -> bool {
        self.bits(a).contains(self.bits(b))
    }

    /// Containment or equality between two interned ids.
    pub fn contains_or_equal(&self, a: Pid, b: Pid) -> bool {
        self.bits(a).contains_or_equal(self.bits(b))
    }

    /// Serializes the interner (summary persistence). Ids are stored as
    /// set-bit position lists, which is compact for the sparse ids real
    /// documents produce.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        xpe_xml::wire::put_u32(buf, self.width);
        xpe_xml::wire::put_u32(buf, self.pids.len() as u32);
        for bits in &self.pids {
            xpe_xml::wire::put_u32(buf, bits.count_ones());
            for pos in bits.ones() {
                xpe_xml::wire::put_u32(buf, pos);
            }
        }
    }

    /// Deserializes an interner encoded by [`encode`](Self::encode); pid
    /// handles are preserved.
    pub fn decode(r: &mut xpe_xml::wire::Reader<'_>) -> Result<Self, xpe_xml::wire::WireError> {
        Self::decode_inner(r, None)
    }

    /// [`decode`](Self::decode) with the width cross-checked against the
    /// caller's expectation **before any bit sequence is allocated**. The
    /// stored width sizes every decoded [`PathIdBits`], so in a corrupt
    /// or hostile image it is an allocation amplifier — `u32::MAX` means
    /// half a gigabyte of zeroed words *per pid*. Summary decode knows
    /// the true width independently (the encoding table's path count,
    /// decoded just before), so it refuses a disagreeing value up front.
    pub fn decode_checked(
        r: &mut xpe_xml::wire::Reader<'_>,
        expected_width: u32,
    ) -> Result<Self, xpe_xml::wire::WireError> {
        Self::decode_inner(r, Some(expected_width))
    }

    fn decode_inner(
        r: &mut xpe_xml::wire::Reader<'_>,
        expected_width: Option<u32>,
    ) -> Result<Self, xpe_xml::wire::WireError> {
        let width = r.u32()?;
        if expected_width.is_some_and(|w| w != width) {
            return Err(xpe_xml::wire::WireError::BadHeader(
                "pid width disagrees with encoding table",
            ));
        }
        let n = r.u32()? as usize;
        let mut interner = PidInterner::new(width);
        for _ in 0..n {
            let ones = r.u32()? as usize;
            let mut bits = PathIdBits::zero(width);
            for _ in 0..ones {
                let pos = r.u32()?;
                if pos == 0 || pos > width {
                    return Err(xpe_xml::wire::WireError::BadHeader(
                        "pid bit position out of range",
                    ));
                }
                bits.set(pos);
            }
            interner.intern(bits);
        }
        Ok(interner)
    }

    /// Size of the flat path-id table under the paper's accounting:
    /// `#distinct ids × ⌈width / 8⌉` (Table 3's "PidTab").
    pub fn table_size_bytes(&self) -> usize {
        self.pids.len() * (self.width as usize).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_str(s: &str) -> PathIdBits {
        let mut b = PathIdBits::zero(s.len() as u32);
        for (i, c) in s.chars().enumerate() {
            if c == '1' {
                b.set(i as u32 + 1);
            }
        }
        b
    }

    #[test]
    fn interning_dedupes() {
        let mut i = PidInterner::new(4);
        let a = i.intern(from_str("0011"));
        let b = i.intern(from_str("0011"));
        let c = i.intern(from_str("0010"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get(&from_str("0010")), Some(c));
        assert_eq!(i.get(&from_str("1111")), None);
    }

    #[test]
    fn containment_via_handles() {
        let mut i = PidInterner::new(4);
        let p3 = i.intern(from_str("0011"));
        let p2 = i.intern(from_str("0010"));
        assert!(i.contains(p3, p2));
        assert!(!i.contains(p2, p3));
        assert!(!i.contains(p3, p3));
        assert!(i.contains_or_equal(p3, p3));
    }

    #[test]
    fn table_size_matches_paper_model() {
        // XMark-style: 344-bit ids → 43 bytes each.
        let mut i = PidInterner::new(344);
        i.intern(PathIdBits::single(344, 1));
        i.intern(PathIdBits::single(344, 2));
        assert_eq!(i.table_size_bytes(), 2 * 43);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut i = PidInterner::new(4);
        i.intern(PathIdBits::zero(5));
    }
}
