//! The compressed path-id binary tree (paper §6, Figure 6).
//!
//! The tree indexes every distinct path id: leaves, left to right, are the
//! ids in ascending bit-string order, numbered 1..N (their *ordinal*); each
//! internal node stores the largest ordinal in its left subtree (or one
//! less than the smallest ordinal of its right subtree when the left is
//! empty), so navigation by ordinal recovers the full bit sequence by
//! concatenating edge bits (left = 0, right = 1).
//!
//! Compression: a subtree whose remaining suffix is all zeros (all ones) is
//! removed together with its incoming edge — the suffix is reconstructed
//! during lookup. The paper reports this saves ~78% for XMark, whose long
//! (344-bit) sparse ids leave large all-zero tails.

use crate::bits::PathIdBits;
use crate::interner::{Pid, PidInterner};

/// A child slot of an internal node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Child {
    /// No pid under this side.
    Empty,
    /// A materialized internal node.
    Node(u32),
    /// A leaf at full depth.
    Leaf { ord: u32 },
    /// A trimmed subtree: one pid whose remaining suffix is all `fill`.
    Trimmed { ord: u32, fill: bool },
}

#[derive(Clone, Debug)]
struct TreeNode {
    /// Largest ordinal in the left subtree (or `min(right) - 1` if the left
    /// subtree is empty), as in the paper's Figure 6.
    split: u32,
    left: Child,
    right: Child,
}

/// The compressed binary tree over all distinct path ids of a document.
#[derive(Clone, Debug)]
pub struct PathIdTree {
    nodes: Vec<TreeNode>,
    root: Child,
    nbits: u32,
    /// `ords[pid.index()]` is the 1-based ordinal of each pid.
    ords: Vec<u32>,
    /// `pids_by_ord[ord - 1]` is the pid with that ordinal.
    pids_by_ord: Vec<Pid>,
}

impl PathIdTree {
    /// Builds the tree over every id in `interner`.
    pub fn new(interner: &PidInterner) -> Self {
        let mut sorted: Vec<(Pid, &PathIdBits)> = interner.iter().collect();
        sorted.sort_by(|a, b| a.1.cmp(b.1));
        let nbits = interner.width();
        let mut ords = vec![0u32; interner.len()];
        let mut pids_by_ord = Vec::with_capacity(sorted.len());
        for (i, (pid, _)) in sorted.iter().enumerate() {
            ords[pid.index()] = (i + 1) as u32;
            pids_by_ord.push(*pid);
        }
        let mut builder = Builder {
            nodes: Vec::new(),
            nbits,
        };
        let items: Vec<(u32, &PathIdBits)> = sorted
            .iter()
            .enumerate()
            .map(|(i, (_, b))| ((i + 1) as u32, *b))
            .collect();
        let root = builder.build(&items, 0);
        PathIdTree {
            nodes: builder.nodes,
            root,
            nbits,
            ords,
            pids_by_ord,
        }
    }

    /// Width of the indexed ids.
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// Number of indexed path ids.
    pub fn len(&self) -> usize {
        self.pids_by_ord.len()
    }

    /// True when the tree indexes no ids.
    pub fn is_empty(&self) -> bool {
        self.pids_by_ord.is_empty()
    }

    /// The 1-based ordinal of `pid` (its leaf number in the paper's
    /// Figure 6).
    pub fn ord(&self, pid: Pid) -> u32 {
        self.ords[pid.index()]
    }

    /// The pid with the given ordinal.
    ///
    /// # Panics
    ///
    /// Panics if `ord` is 0 or out of range.
    pub fn pid_of_ord(&self, ord: u32) -> Pid {
        self.pids_by_ord[(ord - 1) as usize]
    }

    /// Reconstructs the bit sequence of the id with ordinal `ord` by
    /// navigating the tree (paper: "After reaching the leaf node, the
    /// concatenation of the bits of all edges traversed is the bit sequence
    /// of the given path id").
    pub fn bits_of_ord(&self, ord: u32) -> Option<PathIdBits> {
        if ord == 0 || ord as usize > self.pids_by_ord.len() {
            return None;
        }
        let mut bits = PathIdBits::zero(self.nbits);
        let mut depth = 0u32; // bits consumed so far
        let mut cur = self.root;
        loop {
            match cur {
                Child::Empty => return None,
                Child::Leaf { ord: o } => {
                    debug_assert_eq!(o, ord);
                    debug_assert_eq!(depth, self.nbits);
                    return Some(bits);
                }
                Child::Trimmed { ord: o, fill } => {
                    debug_assert_eq!(o, ord);
                    if fill {
                        for p in depth + 1..=self.nbits {
                            bits.set(p);
                        }
                    }
                    return Some(bits);
                }
                Child::Node(idx) => {
                    let node = &self.nodes[idx as usize];
                    depth += 1;
                    if ord <= node.split {
                        cur = node.left;
                    } else {
                        bits.set(depth);
                        cur = node.right;
                    }
                }
            }
        }
    }

    /// Finds the ordinal of a bit sequence by navigating the tree.
    pub fn ord_of_bits(&self, bits: &PathIdBits) -> Option<u32> {
        if bits.nbits() != self.nbits {
            return None;
        }
        let mut depth = 0u32;
        let mut cur = self.root;
        loop {
            match cur {
                Child::Empty => return None,
                Child::Leaf { ord } => return Some(ord),
                Child::Trimmed { ord, fill } => {
                    for p in depth + 1..=self.nbits {
                        if bits.get(p) != fill {
                            return None;
                        }
                    }
                    return Some(ord);
                }
                Child::Node(idx) => {
                    let node = &self.nodes[idx as usize];
                    depth += 1;
                    cur = if bits.get(depth) {
                        node.right
                    } else {
                        node.left
                    };
                }
            }
        }
    }

    /// Number of materialized internal nodes.
    pub fn internal_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf slots (plain + trimmed).
    pub fn leaf_nodes(&self) -> usize {
        let mut leaves = 0;
        let mut count_child = |c: &Child| {
            if matches!(c, Child::Leaf { .. } | Child::Trimmed { .. }) {
                leaves += 1;
            }
        };
        count_child(&self.root);
        for n in &self.nodes {
            count_child(&n.left);
            count_child(&n.right);
        }
        leaves
    }

    /// Byte size under our accounting model: 8 bytes per internal node
    /// (4-byte split ordinal plus two packed child references) and 4 bytes
    /// per leaf (ordinal plus fill flag). Documented in DESIGN.md; the
    /// *relative* saving versus the flat pid table is what Table 3 checks.
    pub fn size_bytes(&self) -> usize {
        self.internal_nodes() * 8 + self.leaf_nodes() * 4
    }
}

struct Builder {
    nodes: Vec<TreeNode>,
    nbits: u32,
}

impl Builder {
    /// Builds the subtree for `items` (ascending by bits, with ordinals),
    /// all of which agree on the first `depth` bits.
    fn build(&mut self, items: &[(u32, &PathIdBits)], depth: u32) -> Child {
        match items {
            [] => Child::Empty,
            [(ord, bits)] => {
                if depth == self.nbits {
                    return Child::Leaf { ord: *ord };
                }
                let rest = depth + 1..=self.nbits;
                if rest.clone().all(|p| !bits.get(p)) {
                    return Child::Trimmed {
                        ord: *ord,
                        fill: false,
                    };
                }
                if rest.clone().all(|p| bits.get(p)) {
                    return Child::Trimmed {
                        ord: *ord,
                        fill: true,
                    };
                }
                self.split(items, depth)
            }
            _ => self.split(items, depth),
        }
    }

    fn split(&mut self, items: &[(u32, &PathIdBits)], depth: u32) -> Child {
        debug_assert!(depth < self.nbits, "duplicate path ids");
        let bit = depth + 1;
        let cut = items.partition_point(|(_, b)| !b.get(bit));
        let (lo, hi) = items.split_at(cut);
        // Reserve the slot first so parent indices precede children.
        let idx = self.nodes.len() as u32;
        self.nodes.push(TreeNode {
            split: 0,
            left: Child::Empty,
            right: Child::Empty,
        });
        let left = self.build(lo, depth + 1);
        let right = self.build(hi, depth + 1);
        let split = match lo.last() {
            Some((ord, _)) => *ord,
            // Empty left subtree: one less than the least ordinal on the
            // right (the paper's leftmost internal node carries 0).
            None => hi.first().map(|(o, _)| o - 1).unwrap_or(0),
        };
        let node = &mut self.nodes[idx as usize];
        node.split = split;
        node.left = left;
        node.right = right;
        Child::Node(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_str(s: &str) -> PathIdBits {
        let mut b = PathIdBits::zero(s.len() as u32);
        for (i, c) in s.chars().enumerate() {
            if c == '1' {
                b.set(i as u32 + 1);
            }
        }
        b
    }

    /// The paper's Figure 1(c)/Figure 6 path-id set.
    fn figure6_interner() -> PidInterner {
        let mut i = PidInterner::new(4);
        for s in [
            "0001", "0010", "0011", "0100", "1000", "1010", "1011", "1100", "1111",
        ] {
            i.intern(from_str(s));
        }
        i
    }

    #[test]
    fn ordinals_follow_sorted_bitstrings() {
        let interner = figure6_interner();
        let tree = PathIdTree::new(&interner);
        assert_eq!(tree.len(), 9);
        // p1 = 0001 has ordinal 1, p9 = 1111 has ordinal 9 (Figure 6).
        let p1 = interner.get(&from_str("0001")).unwrap();
        let p9 = interner.get(&from_str("1111")).unwrap();
        assert_eq!(tree.ord(p1), 1);
        assert_eq!(tree.ord(p9), 9);
        assert_eq!(tree.pid_of_ord(1), p1);
    }

    #[test]
    fn lookup_round_trips_figure6() {
        let interner = figure6_interner();
        let tree = PathIdTree::new(&interner);
        for (pid, bits) in interner.iter() {
            let ord = tree.ord(pid);
            assert_eq!(tree.bits_of_ord(ord).unwrap(), *bits, "ord {ord}");
            assert_eq!(tree.ord_of_bits(bits), Some(ord));
        }
        // Figure 6's worked example: leaf 2 denotes 0010.
        assert_eq!(tree.bits_of_ord(2).unwrap().to_string(), "0010");
    }

    #[test]
    fn compression_trims_uniform_tails() {
        let interner = figure6_interner();
        let tree = PathIdTree::new(&interner);
        // The full (uncompressed) trie over 9 ids of width 4 would need
        // more internal nodes than the compressed one.
        assert!(tree.internal_nodes() < 15, "trimming must drop chains");
        // Still reconstructs everything (checked above); spot-check 1000.
        let p5 = interner.get(&from_str("1000")).unwrap();
        assert_eq!(tree.bits_of_ord(tree.ord(p5)).unwrap().to_string(), "1000");
    }

    #[test]
    fn missing_bits_rejected() {
        let interner = figure6_interner();
        let tree = PathIdTree::new(&interner);
        assert_eq!(tree.ord_of_bits(&from_str("0111")), None);
        assert_eq!(tree.ord_of_bits(&from_str("00010")), None, "wrong width");
        assert_eq!(tree.bits_of_ord(0), None);
        assert_eq!(tree.bits_of_ord(10), None);
    }

    #[test]
    fn long_sparse_ids_compress_well() {
        // XMark-like: long ids, few bits set → large all-zero tails.
        let mut interner = PidInterner::new(256);
        for i in 1..=40u32 {
            interner.intern(PathIdBits::single(256, i));
        }
        let tree = PathIdTree::new(&interner);
        for (pid, bits) in interner.iter() {
            assert_eq!(tree.bits_of_ord(tree.ord(pid)).unwrap(), *bits);
        }
        assert!(
            tree.size_bytes() < interner.table_size_bytes(),
            "tree {} must beat table {}",
            tree.size_bytes(),
            interner.table_size_bytes()
        );
    }

    #[test]
    fn single_pid_tree() {
        let mut interner = PidInterner::new(8);
        let pid = interner.intern(from_str("00000000"));
        let tree = PathIdTree::new(&interner);
        assert_eq!(tree.ord(pid), 1);
        assert_eq!(tree.bits_of_ord(1).unwrap().to_string(), "00000000");
        assert_eq!(tree.internal_nodes(), 0);
    }
}
