//! Precomputed containment adjacency — the indexed join kernel's lookup
//! structure.
//!
//! The path join's inner loop asks, per query edge, "which surviving
//! `(pid_u, pid_v)` pairs pass the §2 containment + tag-relationship
//! test?". With a [`relation_mask`] that is still an `O(|list_u| ·
//! |list_v|)` scan of multi-word bit operations, repeated on every
//! fixpoint pass of every query. But the answer per pair depends only on
//! `(pid_u, pid_v, tag_u, tag_v, axis-class)` and the summary — not on
//! the query — so a whole workload keeps re-deriving the same relation.
//!
//! A [`ContainmentAdjacency`] materializes that relation once per
//! `(tag_u, tag_v, child_axis)` key: for every interned pid it stores the
//! sorted list of compatible partner pids, in both directions (CSR
//! layout). The join's pruning step then becomes a semi-join — "does this
//! pid's adjacency row intersect the surviving set on the other side?" —
//! which touches only actually-compatible pairs instead of scanning all
//! candidate pairs with 344-bit containment tests.
//!
//! [`JoinIndexCache`] memoizes adjacencies per summary exactly like
//! [`RelationMaskCache`](crate::RelationMaskCache) memoizes masks, and
//! additionally counts builds and build wall-time so the bench harness
//! can report amortization (`adjacency_build_ms` in the perf snapshot).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use xpe_xml::TagId;

use crate::encoding::EncodingTable;
use crate::interner::{Pid, PidInterner};
use crate::rel::relation_mask;
use crate::slab::PidBitmapSlab;
use crate::words;

/// The full pid-containment relation of one interner, as bitmap rows.
///
/// Path ids are per-node-instance unions of root-to-leaf path encodings,
/// so the family is *not* laminar in general — two ids can overlap
/// without nesting (Figure 1's interner already does). What every
/// `(tag_u, tag_v, axis)` adjacency shares is the underlying subset
/// relation `pv ⊆ pu`, which depends only on the interner. Computing it
/// once per summary turns each per-key build from a quadratic pair scan
/// into a row copy plus a word-AND with that key's mask candidates.
///
/// Rows use the dense pid-index bitmap layout (LSB-first, like
/// [`ContainmentAdjacency::candidates`]): `set_words` words per pid, bit
/// `v` of forward row `u` set iff `pv ⊆ pu` (non-strict, so every
/// nonempty pid relates at least to itself). Empty ids get empty rows —
/// they fail every mask screen and contain nothing nonempty.
#[derive(Debug)]
pub struct PidContainmentRelation {
    /// Words per row (`pid_count.div_ceil(64)`).
    set_words: usize,
    /// Forward rows: bit `v` of row `u` set iff `pv ⊆ pu`.
    fwd_bits: Vec<u64>,
    /// Reverse rows: bit `u` of row `v` set iff `pv ⊆ pu`.
    rev_bits: Vec<u64>,
    /// Number of `(u, v)` pairs in the relation.
    pairs: usize,
}

impl PidContainmentRelation {
    /// Builds the relation over every row of `slab`.
    ///
    /// The scan is the same screened quadratic loop as
    /// [`ContainmentAdjacency::build_with_slab`] — ascending-popcount
    /// prefix bound, word-support signature refutation, support-truncated
    /// subset walks — run once over the nonempty pids instead of once per
    /// key over each key's mask survivors.
    pub fn build(slab: &PidBitmapSlab) -> Self {
        let n = slab.rows();
        let set_words = n.div_ceil(64);
        let mut fwd_bits = vec![0u64; n * set_words];
        let mut rev_bits = vec![0u64; n * set_words];

        let ne: Vec<u32> = (0..n as u32)
            .filter(|&i| !words::is_empty(slab.row_words(i as usize)))
            .collect();
        let m = ne.len();
        let pc: Vec<u32> = ne
            .iter()
            .map(|&i| words::count_ones(slab.row_words(i as usize)))
            .collect();
        let sig: Vec<u64> = ne
            .iter()
            .map(|&i| words::support_signature(slab.row_words(i as usize)))
            .collect();

        // Candidates in ascending-popcount order with popcounts,
        // signatures, and dense indices permuted alongside: `pv ⊆ pu`
        // forces `pc(v) ≤ pc(u)`, so each u examines only the sorted
        // prefix and the popcount screen degenerates into the loop bound.
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_unstable_by_key(|&r| pc[r as usize]);
        let spc: Vec<u32> = order.iter().map(|&r| pc[r as usize]).collect();
        let ssig: Vec<u64> = order.iter().map(|&r| sig[r as usize]).collect();
        let sidx: Vec<u32> = order.iter().map(|&r| ne[r as usize]).collect();

        // The signature aliases word `j` to bit `j % 64`, so its top bit
        // only bounds a row's true support when rows fit in 64 words;
        // wider rows must walk their full width or any word at index
        // ≥ 64 would be silently ignored, admitting false pairs.
        let full = slab.words_per_row();
        let sig_exact = full <= 64;

        let mut pairs = 0usize;
        for (r, &u32_) in ne.iter().enumerate() {
            let u = u32_ as usize;
            let wu = slab.row_words(u);
            let (pc_u, sig_u) = (pc[r], sig[r]);
            for k in 0..m {
                if spc[k] > pc_u {
                    break;
                }
                if ssig[k] & !sig_u != 0 {
                    continue;
                }
                // Words past v's highest nonzero word are zero and subset
                // anything, so the multi-word walk stops at v's support —
                // when the signature is exact about where that support ends.
                let lv = if sig_exact {
                    64 - ssig[k].leading_zeros() as usize
                } else {
                    full
                };
                let v = sidx[k] as usize;
                if words::is_subset(&slab.row_words(v)[..lv], &wu[..lv]) {
                    words::set_bit(&mut fwd_bits[u * set_words..(u + 1) * set_words], v);
                    words::set_bit(&mut rev_bits[v * set_words..(v + 1) * set_words], u);
                    pairs += 1;
                }
            }
        }
        Self {
            set_words,
            fwd_bits,
            rev_bits,
            pairs,
        }
    }

    /// Words per row (`pid_count.div_ceil(64)`).
    #[inline]
    pub fn set_words(&self) -> usize {
        self.set_words
    }

    /// Bitmap of pids contained in pid index `u` (its descendants-or-self).
    #[inline]
    pub fn forward_row(&self, u: usize) -> &[u64] {
        &self.fwd_bits[u * self.set_words..(u + 1) * self.set_words]
    }

    /// Bitmap of pids containing pid index `v` (its ancestors-or-self).
    #[inline]
    pub fn reverse_row(&self, v: usize) -> &[u64] {
        &self.rev_bits[v * self.set_words..(v + 1) * self.set_words]
    }

    /// Number of `(pu, pv)` pairs with `pv ⊆ pu`, both nonempty.
    #[inline]
    pub fn pair_count(&self) -> usize {
        self.pairs
    }
}

/// The compatible-pair relation of one `(tag_u, tag_v, child_axis)` key,
/// stored as forward (`pid_u → pid_v`) and reverse (`pid_v → pid_u`)
/// compressed adjacency rows over the interner's dense pid indices.
///
/// `(pu, pv)` is in the relation iff
/// [`axis_compatible_masked`](crate::axis_compatible_masked) holds for the
/// key's relation mask — the index never changes which pairs pass, only
/// how fast the question is answered.
#[derive(Debug)]
pub struct ContainmentAdjacency {
    /// Forward CSR offsets: row of `pid_u` is `fwd[fwd_off[u]..fwd_off[u+1]]`.
    fwd_off: Vec<u32>,
    fwd: Vec<Pid>,
    /// Reverse CSR offsets: row of `pid_v` is `rev[rev_off[v]..rev_off[v+1]]`.
    rev_off: Vec<u32>,
    rev: Vec<Pid>,
    /// Candidate bitmap over dense pid indices (LSB-first index layout):
    /// bit `i` set iff pid `i` survives the relation-mask screen.
    /// Containment-or-equality is reflexive, so every screened-in pid
    /// pairs at least with itself — the candidates are *exactly* the pids
    /// with nonempty rows, on both sides.
    cand: Vec<u64>,
    /// Words per pid-index bitmap (`pid_count.div_ceil(64)`).
    set_words: usize,
    /// Dense pid index → row in `fwd_bits`/`rev_bits`; `u32::MAX` when
    /// the pid was screened out (its row is empty).
    row_of: Vec<u32>,
    /// Bitmap mirror of the forward CSR rows: `set_words` words per
    /// candidate, bit `v` set iff `(u, v)` is in the relation.
    fwd_bits: Vec<u64>,
    /// Bitmap mirror of the reverse CSR rows.
    rev_bits: Vec<u64>,
}

impl ContainmentAdjacency {
    /// Materializes the relation for `(tag_u, tag_v, child_axis)` over
    /// every interned pid. `O(#pids² × id words)` once, versus the same
    /// cost *per query edge* for the scan it replaces.
    pub fn build(
        encoding: &EncodingTable,
        pids: &PidInterner,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> Self {
        let slab = PidBitmapSlab::from_interner(pids);
        let relation = PidContainmentRelation::build(&slab);
        Self::build_with_layout(encoding, pids, &slab, &relation, tag_u, tag_v, child_axis)
    }

    /// [`build`](Self::build) against a prebuilt slab *and* containment
    /// relation, so a cache amortizes both across every `(tag_u, tag_v,
    /// axis)` key of a summary. With the subset relation precomputed the
    /// fill is a row copy and a word-AND per mask survivor: `(pu, pv)` is
    /// compatible iff `pv ⊆ pu` **and** `pv ∩ mask ≠ ∅`, so each
    /// adjacency row is the relation row masked by the key's candidate
    /// bitmap. No containment test runs at all.
    pub fn build_with_layout(
        encoding: &EncodingTable,
        pids: &PidInterner,
        slab: &PidBitmapSlab,
        relation: &PidContainmentRelation,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> Self {
        debug_assert_eq!(slab.rows(), pids.len(), "slab/interner mismatch");
        debug_assert_eq!(relation.set_words(), pids.len().div_ceil(64));
        let mask = relation_mask(encoding, tag_u, tag_v, child_axis);
        let mask_words = mask.words();
        let n = pids.len();
        let set_words = n.div_ceil(64);

        // Same screen as the scan path: only pids intersecting the mask
        // can appear on either side (see `build_with_slab`).
        let ok: Vec<usize> = (0..n)
            .filter(|&i| words::intersects(slab.row_words(i), mask_words))
            .collect();
        let m = ok.len();
        let mut cand = vec![0u64; set_words];
        let mut row_of = vec![u32::MAX; n];
        for (r, &i) in ok.iter().enumerate() {
            words::set_bit(&mut cand, i);
            row_of[i] = r as u32;
        }

        // Forward row of a survivor `u` is `relation.forward_row(u) ∩
        // cand`: the AND removes descendants that fail the mask. The
        // reverse AND is a no-op by the screen argument (every superset
        // of a survivor intersects the mask too) but keeps the two fills
        // uniform. `words::ones` yields ascending dense indices, which is
        // exactly the CSR row order contract.
        let mut fwd_bits = vec![0u64; m * set_words];
        let mut rev_bits = vec![0u64; m * set_words];
        let mut fwd_off = vec![0u32; n + 1];
        let mut rev_off = vec![0u32; n + 1];
        let mut fwd: Vec<Pid> = Vec::new();
        let mut rev: Vec<Pid> = Vec::new();
        for (r, &i) in ok.iter().enumerate() {
            let frow = &mut fwd_bits[r * set_words..(r + 1) * set_words];
            frow.copy_from_slice(relation.forward_row(i));
            words::and_assign(frow, &cand);
            fwd.extend(words::ones(frow).map(Pid::from_index));
            fwd_off[i + 1] = fwd.len() as u32;

            let rrow = &mut rev_bits[r * set_words..(r + 1) * set_words];
            rrow.copy_from_slice(relation.reverse_row(i));
            words::and_assign(rrow, &cand);
            rev.extend(words::ones(rrow).map(Pid::from_index));
            rev_off[i + 1] = rev.len() as u32;
        }
        // Rows of screened-out pids are empty: carry the running offsets
        // forward so every row slice stays well-defined.
        for i in 0..n {
            fwd_off[i + 1] = fwd_off[i + 1].max(fwd_off[i]);
            rev_off[i + 1] = rev_off[i + 1].max(rev_off[i]);
        }

        ContainmentAdjacency {
            fwd_off,
            fwd,
            rev_off,
            rev,
            cand,
            set_words,
            row_of,
            fwd_bits,
            rev_bits,
        }
    }

    /// [`build`](Self::build) against a prebuilt [`PidBitmapSlab`] of the
    /// same interner, so a cache amortizes the arena layout across every
    /// `(tag_u, tag_v, axis)` key of a summary.
    pub fn build_with_slab(
        encoding: &EncodingTable,
        pids: &PidInterner,
        slab: &PidBitmapSlab,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> Self {
        debug_assert_eq!(slab.rows(), pids.len(), "slab/interner mismatch");
        let mask = relation_mask(encoding, tag_u, tag_v, child_axis);
        let mask_words = mask.words();
        let n = pids.len();
        let set_words = n.div_ceil(64);

        // A compatible pair needs `pv ∩ mask ≠ ∅`, and `pu ⊇ pv` then
        // forces `pu ∩ mask ≠ ∅` as well — so only pids intersecting the
        // mask can appear on *either* side. Screening both sides up front
        // shrinks the quadratic fill loop from all interned pids to the
        // (usually few) mask-relevant ones.
        let ok: Vec<usize> = (0..n)
            .filter(|&i| words::intersects(slab.row_words(i), mask_words))
            .collect();
        let mut cand = vec![0u64; set_words];
        let mut row_of = vec![u32::MAX; n];
        for (r, &i) in ok.iter().enumerate() {
            words::set_bit(&mut cand, i);
            row_of[i] = r as u32;
        }

        // One popcount and one word-support signature per candidate:
        // `pc(v) > pc(u)` or `sig(v) ⊄ sig(u)` each refute `pu ⊇ pv` in
        // a couple of scalar ops, so the multi-word subset walk only runs
        // on pairs that usually pass it.
        let pc: Vec<u32> = ok
            .iter()
            .map(|&i| words::count_ones(slab.row_words(i)))
            .collect();
        let sig: Vec<u64> = ok
            .iter()
            .map(|&i| words::support_signature(slab.row_words(i)))
            .collect();

        // Candidates in ascending-popcount order, with their popcounts,
        // signatures, and dense pid indices permuted alongside so the
        // inner scan walks contiguous memory. `pu ⊇ pv` forces
        // `pc(v) ≤ pc(u)`, so each u examines only the sorted prefix —
        // on average half the quadratic pair loop, and the popcount
        // screen degenerates into the loop bound.
        let m = ok.len();
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_unstable_by_key(|&r| pc[r as usize]);
        let spc: Vec<u32> = order.iter().map(|&r| pc[r as usize]).collect();
        let ssig: Vec<u64> = order.iter().map(|&r| sig[r as usize]).collect();
        let sidx: Vec<u32> = order.iter().map(|&r| ok[r as usize] as u32).collect();

        // As in `PidContainmentRelation::build`: the signature aliases
        // word `j` to bit `j % 64`, so support truncation is only sound
        // for rows up to 64 words — wider rows walk their full width.
        let full = slab.words_per_row();
        let sig_exact = full <= 64;

        let mut fwd_off = vec![0u32; n + 1];
        let mut fwd = Vec::new();
        let mut rev_len = vec![0u32; n];
        let mut fwd_bits = vec![0u64; m * set_words];
        let mut rev_bits = vec![0u64; m * set_words];
        let mut hits: Vec<u32> = Vec::new();
        for (ru, &u) in ok.iter().enumerate() {
            let wu = slab.row_words(u);
            let (pc_u, sig_u) = (pc[ru], sig[ru]);
            hits.clear();
            for k in 0..m {
                if spc[k] > pc_u {
                    break;
                }
                if ssig[k] & !sig_u != 0 {
                    continue;
                }
                // Words past v's highest nonzero word are zero and subset
                // anything, so the multi-word walk stops at v's support —
                // typically 1–2 words of the 8-word padded row.
                let lv = if sig_exact {
                    64 - ssig[k].leading_zeros() as usize
                } else {
                    full
                };
                let v = sidx[k] as usize;
                if words::is_subset(&slab.row_words(v)[..lv], &wu[..lv]) {
                    hits.push(sidx[k]);
                }
            }
            // The prefix visits v in popcount order; rows must stay
            // ascending in dense pid index (the public contract, and what
            // the bitmap mirrors decode to).
            hits.sort_unstable();
            for &v32 in &hits {
                let v = v32 as usize;
                fwd.push(Pid::from_index(v));
                rev_len[v] += 1;
                let rv = row_of[v] as usize;
                words::set_bit(&mut fwd_bits[ru * set_words..(ru + 1) * set_words], v);
                words::set_bit(&mut rev_bits[rv * set_words..(rv + 1) * set_words], u);
            }
            fwd_off[u + 1] = fwd.len() as u32;
        }
        // Rows of screened-out pids are empty: carry the running offset
        // forward so every row slice stays well-defined.
        for u in 0..n {
            fwd_off[u + 1] = fwd_off[u + 1].max(fwd_off[u]);
        }

        // Transpose the forward rows into reverse rows; both stay sorted
        // by dense pid index because `u` ascends in the fill loop.
        let mut rev_off = Vec::with_capacity(n + 1);
        rev_off.push(0u32);
        for v in 0..n {
            rev_off.push(rev_off[v] + rev_len[v]);
        }
        let mut cursor: Vec<u32> = rev_off[..n].to_vec();
        let mut rev = vec![Pid::from_index(0); fwd.len()];
        for u in 0..n {
            for &pv in &fwd[fwd_off[u] as usize..fwd_off[u + 1] as usize] {
                let slot = cursor[pv.index()];
                rev[slot as usize] = Pid::from_index(u);
                cursor[pv.index()] += 1;
            }
        }

        ContainmentAdjacency {
            fwd_off,
            fwd,
            rev_off,
            rev,
            cand,
            set_words,
            row_of,
            fwd_bits,
            rev_bits,
        }
    }

    /// Pids compatible as the descendant side of `pid_u`, ascending.
    #[inline]
    pub fn forward(&self, pid_u: Pid) -> &[Pid] {
        let u = pid_u.index();
        &self.fwd[self.fwd_off[u] as usize..self.fwd_off[u + 1] as usize]
    }

    /// Pids compatible as the ancestor side of `pid_v`, ascending.
    #[inline]
    pub fn reverse(&self, pid_v: Pid) -> &[Pid] {
        let v = pid_v.index();
        &self.rev[self.rev_off[v] as usize..self.rev_off[v + 1] as usize]
    }

    /// Candidate bitmap over dense pid indices (LSB-first index layout,
    /// [`set_words`](Self::set_words) words): bit `i` set iff pid `i`
    /// has a nonempty row — on either side, the sets coincide by
    /// reflexivity. The bitmap kernel ANDs this into its surviving sets
    /// so "which pids can pass this edge" is word-parallel.
    #[inline]
    pub fn candidates(&self) -> &[u64] {
        &self.cand
    }

    /// Words per pid-index bitmap row (`pid_count.div_ceil(64)`).
    #[inline]
    pub fn set_words(&self) -> usize {
        self.set_words
    }

    /// Bitmap of pids compatible as the descendant side of `pid_u`, or
    /// `None` when `pid_u` was screened out (its row is empty).
    #[inline]
    pub fn forward_bits(&self, pid_u: Pid) -> Option<&[u64]> {
        let r = self.row_of[pid_u.index()] as usize;
        (r != u32::MAX as usize)
            .then(|| &self.fwd_bits[r * self.set_words..(r + 1) * self.set_words])
    }

    /// Bitmap of pids compatible as the ancestor side of `pid_v`, or
    /// `None` when `pid_v` was screened out.
    #[inline]
    pub fn reverse_bits(&self, pid_v: Pid) -> Option<&[u64]> {
        let r = self.row_of[pid_v.index()] as usize;
        (r != u32::MAX as usize)
            .then(|| &self.rev_bits[r * self.set_words..(r + 1) * self.set_words])
    }

    /// Number of compatible pairs in the relation.
    pub fn pair_count(&self) -> usize {
        self.fwd.len()
    }

    /// Number of pids the index covers (the interner size at build time).
    pub fn pid_count(&self) -> usize {
        self.fwd_off.len() - 1
    }
}

/// Pass-through hasher for packed-`u64` cache keys: one odd-constant
/// multiply (Fibonacci hashing) spreads the packed low bits across the
/// word, replacing SipHash's per-byte rounds on every cache probe. The
/// keys are injective per map (see the packing at each call site), so
/// equality still compares full keys — the hash only has to scatter,
/// never to disambiguate.
#[derive(Debug, Default)]
struct PackedKeyHasher(u64);

impl std::hash::Hasher for PackedKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("packed cache keys hash through write_u64 only")
    }

    fn write_u64(&mut self, key: u64) {
        self.0 = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A map keyed by pre-packed `u64`s through [`PackedKeyHasher`].
type PackedMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<PackedKeyHasher>>;

/// An immutable view of every adjacency and seed bitmap published so far.
///
/// The owning [`JoinIndexCache`] publishes a fresh snapshot (map clone +
/// insert + `Arc` swap under its mutex) each time a cold build completes,
/// and bumps its epoch. Readers hold one `Arc` per observed epoch and
/// probe it with plain hash lookups — no lock, no atomic RMW — which is
/// what lets warm joins on the per-estimator memos stay lock-free even
/// when the cache is shared by every worker of a batch.
#[derive(Debug, Default)]
pub struct JoinIndexSnapshot {
    /// Adjacencies keyed by `(tag_u << 32) | tag_v`, one map per axis
    /// (index 1 = child) — splitting on the axis keeps the packed key
    /// injective for every representable tag index.
    maps: [PackedMap<Arc<ContainmentAdjacency>>; 2],
    /// Seed bitmaps keyed by `(tag << 1) | rooted`.
    seeds: PackedMap<Arc<Vec<u64>>>,
}

impl JoinIndexSnapshot {
    fn adjacency_key(tag_u: TagId, tag_v: TagId) -> u64 {
        ((tag_u.index() as u64) << 32) | tag_v.index() as u64
    }

    fn seed_key(tag: TagId, rooted: bool) -> u64 {
        ((tag.index() as u64) << 1) | u64::from(rooted)
    }

    /// The published adjacency for `(tag_u, tag_v, child_axis)`, if any.
    #[inline]
    pub fn adjacency(
        &self,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> Option<&Arc<ContainmentAdjacency>> {
        self.maps[usize::from(child_axis)].get(&Self::adjacency_key(tag_u, tag_v))
    }

    /// The published seed bitmap for `(tag, rooted)`, if any.
    #[inline]
    pub fn seed(&self, tag: TagId, rooted: bool) -> Option<&Arc<Vec<u64>>> {
        self.seeds.get(&Self::seed_key(tag, rooted))
    }

    /// Number of published adjacencies.
    pub fn len(&self) -> usize {
        self.maps.iter().map(HashMap::len).sum()
    }

    /// Whether no adjacency has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Epoch-published memo table over [`ContainmentAdjacency::build`], keyed
/// like the relation-mask cache by `(tag_u, tag_v, child_axis)`.
///
/// Reads go through an immutable [`JoinIndexSnapshot`]: grab it once via
/// [`snapshot`](Self::snapshot), revalidate with a single
/// [`epoch`](Self::epoch) load, and probe lock-free until the epoch
/// moves. The mutex guards publication only — a miss builds its
/// adjacency *outside* the lock, then rechecks, clones the current maps,
/// inserts, swaps the `Arc`, and bumps the epoch. A per-key in-flight
/// guard keeps same-key cold misses from duplicating work: the first
/// worker claims the key and builds, racers wait on a condvar and then
/// read the published entry, and misses on *different* keys still build
/// fully in parallel. The publish-side recheck stays as a belt-and-braces
/// first-publication-wins backstop (a claim released by a panicking
/// builder can let a second attempt run). Builds are pure functions of
/// the key and the (immutable) summary structures, so every reader
/// observes the same rows regardless of which epoch it joined at. Build
/// count, build attempts, cumulative build time, pair totals, and mutex
/// acquisitions are tracked for the perf snapshot.
#[derive(Debug, Default)]
pub struct JoinIndexCache {
    /// The current snapshot; the mutex guards publication, not reads —
    /// readers clone the `Arc` out and drop the lock immediately.
    published: Mutex<Arc<JoinIndexSnapshot>>,
    /// Bumped (release) after every publication; readers revalidate
    /// their held snapshot with one acquire load.
    epoch: AtomicU64,
    /// Arena layout of the summary's interner, built on first use and
    /// shared by every adjacency build (the cache is per-summary, like
    /// the adjacencies themselves).
    slab: OnceLock<Arc<PidBitmapSlab>>,
    /// Containment relation over the slab rows, built on first use and
    /// shared by every adjacency build.
    relation: OnceLock<Arc<PidContainmentRelation>>,
    builds: AtomicU64,
    build_nanos: AtomicU64,
    pairs: AtomicU64,
    locks: AtomicU64,
    /// Keys (adjacency or seed) whose build is currently running. A cold
    /// miss claims its key here before building; racing workers on the
    /// *same* key wait on [`inflight_cv`](Self::inflight_cv) and then
    /// re-probe the snapshot instead of duplicating the build. Different
    /// keys still build fully in parallel.
    inflight: Mutex<HashSet<(u8, u64)>>,
    /// Wakes same-key waiters when a claim is released (publish or
    /// panic — the claim is a drop guard).
    inflight_cv: Condvar,
    /// Adjacency builds *started* (claimed and run), published or not.
    /// With the in-flight guard this equals [`builds`](Self::builds)
    /// in the absence of builder panics; the serving regression tests
    /// assert exactly that.
    build_attempts: AtomicU64,
}

/// Ownership of one in-flight build key. Dropping it — on publish *or*
/// on a panicking build unwinding through the claim scope — removes the
/// key and wakes every same-key waiter, so a dead builder can never
/// strand them.
struct InflightClaim<'a> {
    cache: &'a JoinIndexCache,
    key: (u8, u64),
}

impl Drop for InflightClaim<'_> {
    fn drop(&mut self) {
        let mut set = self
            .cache
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        set.remove(&self.key);
        drop(set);
        self.cache.inflight_cv.notify_all();
    }
}

impl JoinIndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current publication epoch. A reader holding a snapshot taken
    /// at this epoch sees every entry published so far; snapshots only
    /// ever grow, so a stale one is still correct — merely incomplete.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot (one mutex acquisition; probe the returned
    /// `Arc` lock-free afterwards).
    pub fn snapshot(&self) -> Arc<JoinIndexSnapshot> {
        Arc::clone(&self.lock_published())
    }

    fn lock_published(&self) -> MutexGuard<'_, Arc<JoinIndexSnapshot>> {
        self.locks.fetch_add(1, Ordering::Relaxed);
        self.published
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to claim an in-flight key; `None` means another worker is
    /// already building it.
    fn try_claim(&self, key: (u8, u64)) -> Option<InflightClaim<'_>> {
        let mut set = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        // `then`, not `then_some`: the guard's constructor must stay
        // lazy. An eagerly built claim would be dropped right here on
        // the `false` path — deadlocking on the lock this function
        // already holds and erasing the real builder's claim.
        set.insert(key).then(|| InflightClaim { cache: self, key })
    }

    /// Blocks until `key`'s current builder releases its claim (or a
    /// short timeout elapses, bounding any missed-wakeup window). The
    /// caller re-probes the snapshot afterwards.
    fn wait_inflight(&self, key: (u8, u64)) {
        let set = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        if set.contains(&key) {
            let _ = self
                .inflight_cv
                .wait_timeout(set, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The adjacency for `(tag_u, tag_v, child_axis)`, building and
    /// publishing it on first use. Concurrent cold calls on the same key
    /// coalesce into one build; other keys build in parallel.
    pub fn get(
        &self,
        encoding: &EncodingTable,
        pids: &PidInterner,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> Arc<ContainmentAdjacency> {
        let claim_key = (
            u8::from(child_axis),
            JoinIndexSnapshot::adjacency_key(tag_u, tag_v),
        );
        loop {
            if let Some(a) = self.snapshot().adjacency(tag_u, tag_v, child_axis) {
                return Arc::clone(a);
            }
            let Some(_claim) = self.try_claim(claim_key) else {
                // Another worker is building this key right now: wait
                // for its publication instead of duplicating the work,
                // then re-probe.
                self.wait_inflight(claim_key);
                continue;
            };
            // Claimed. Re-probe once — the previous holder may have
            // published between our probe and our claim.
            if let Some(a) = self.snapshot().adjacency(tag_u, tag_v, child_axis) {
                return Arc::clone(a);
            }
            // Resolve the shared layout first: the OnceLocks serialize
            // their own (expensive, once-per-summary) builds without
            // stalling unrelated publications.
            let slab = self.slab(pids);
            let relation = self.relation(pids);
            // Build outside the publish lock: the mutex guards
            // publication only, so a long adjacency build never convoys
            // other workers' snapshot refreshes. The claim guarantees at
            // most one same-key build at a time; the publish-side
            // recheck below stays as the first-publication-wins backstop
            // for claims released by a panicking builder.
            self.build_attempts.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let built = Arc::new(ContainmentAdjacency::build_with_layout(
                encoding, pids, &slab, &relation, tag_u, tag_v, child_axis,
            ));
            let build_nanos = t0.elapsed().as_nanos() as u64;
            let mut published = self.lock_published();
            if let Some(a) = published.adjacency(tag_u, tag_v, child_axis) {
                return Arc::clone(a);
            }
            self.builds.fetch_add(1, Ordering::Relaxed);
            self.build_nanos.fetch_add(build_nanos, Ordering::Relaxed);
            self.pairs
                .fetch_add(built.pair_count() as u64, Ordering::Relaxed);
            let mut next = JoinIndexSnapshot {
                maps: published.maps.clone(),
                seeds: published.seeds.clone(),
            };
            next.maps[usize::from(child_axis)].insert(
                JoinIndexSnapshot::adjacency_key(tag_u, tag_v),
                Arc::clone(&built),
            );
            *published = Arc::new(next);
            self.epoch.fetch_add(1, Ordering::Release);
            return built;
        }
    }

    /// The memoized arena layout of `pids`, building it on first use.
    /// Callers must always pass the same interner (the cache is
    /// per-summary); the first call fixes the layout.
    pub fn slab(&self, pids: &PidInterner) -> Arc<PidBitmapSlab> {
        Arc::clone(
            self.slab
                .get_or_init(|| Arc::new(PidBitmapSlab::from_interner(pids))),
        )
    }

    /// The memoized containment relation of `pids`, building it (and the
    /// slab, if cold) on first use.
    pub fn relation(&self, pids: &PidInterner) -> Arc<PidContainmentRelation> {
        if let Some(r) = self.relation.get() {
            return Arc::clone(r);
        }
        let slab = self.slab(pids);
        Arc::clone(
            self.relation
                .get_or_init(|| Arc::new(PidContainmentRelation::build(&slab))),
        )
    }

    /// The memoized seed bitmap for `(tag, rooted)`, running `build` on
    /// first use. The build runs outside the publish lock; the per-key
    /// in-flight guard coalesces concurrent cold calls (a waiter whose
    /// builder panicked re-runs `build`, so the closure may run more
    /// than once across failures — never concurrently for one key).
    pub fn seed_bitmap(
        &self,
        tag: TagId,
        rooted: bool,
        build: impl Fn() -> Vec<u64>,
    ) -> Arc<Vec<u64>> {
        // Namespaces 2/3 keep seed claims disjoint from adjacency claims
        // (which use the axis bit, 0/1).
        let claim_key = (2 + u8::from(rooted), tag.index() as u64);
        loop {
            if let Some(s) = self.snapshot().seed(tag, rooted) {
                return Arc::clone(s);
            }
            let Some(_claim) = self.try_claim(claim_key) else {
                self.wait_inflight(claim_key);
                continue;
            };
            if let Some(s) = self.snapshot().seed(tag, rooted) {
                return Arc::clone(s);
            }
            // Built outside the publish lock; the recheck below is the
            // first-publication-wins backstop, as in [`get`](Self::get).
            let built = Arc::new(build());
            let mut published = self.lock_published();
            if let Some(s) = published.seed(tag, rooted) {
                return Arc::clone(s);
            }
            let mut next = JoinIndexSnapshot {
                maps: published.maps.clone(),
                seeds: published.seeds.clone(),
            };
            next.seeds
                .insert(JoinIndexSnapshot::seed_key(tag, rooted), Arc::clone(&built));
            *published = Arc::new(next);
            self.epoch.fetch_add(1, Ordering::Release);
            return built;
        }
    }

    /// Number of published adjacencies.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether no adjacency has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total *published* builds. A build that loses a same-key publish
    /// race is discarded without counting, so this equals
    /// [`len`](Self::len).
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Total adjacency builds *started*. The per-key in-flight guard
    /// coalesces same-key cold misses, so this equals
    /// [`builds`](Self::builds) unless a builder panicked mid-build (its
    /// claim is released and a waiter retries) — the regression tests
    /// for duplicate cold builds assert the equality.
    pub fn build_attempts(&self) -> u64 {
        self.build_attempts.load(Ordering::Relaxed)
    }

    /// Cumulative wall-clock milliseconds spent building adjacencies.
    pub fn build_ms(&self) -> f64 {
        self.build_nanos.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Total compatible pairs across every build.
    pub fn pair_total(&self) -> u64 {
        self.pairs.load(Ordering::Relaxed)
    }

    /// Number of publish-mutex acquisitions so far: snapshot refreshes,
    /// cold builds, and introspection ([`len`](Self::len)) all count.
    /// Warm joins served from per-estimator memos must not move this —
    /// `kernel_stats()` surfaces the sum so tests can assert exactly
    /// that.
    pub fn lock_count(&self) -> u64 {
        self.locks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Labeling;
    use crate::rel::axis_compatible_masked;

    #[test]
    fn adjacency_rows_match_masked_test() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        for &tu in &tags {
            for &tv in &tags {
                for child in [true, false] {
                    let adj =
                        ContainmentAdjacency::build(&lab.encoding, &lab.interner, tu, tv, child);
                    let mask = relation_mask(&lab.encoding, tu, tv, child);
                    let mut pairs = 0;
                    for (pu, _) in lab.interner.iter() {
                        let row = adj.forward(pu);
                        for (pv, _) in lab.interner.iter() {
                            let expected = axis_compatible_masked(&lab.interner, pu, pv, &mask);
                            assert_eq!(
                                row.contains(&pv),
                                expected,
                                "fwd {tu:?}/{tv:?} child={child} {pu:?}->{pv:?}"
                            );
                            assert_eq!(
                                adj.reverse(pv).contains(&pu),
                                expected,
                                "rev {tu:?}/{tv:?} child={child} {pu:?}->{pv:?}"
                            );
                            pairs += usize::from(expected);
                        }
                    }
                    assert_eq!(adj.pair_count(), pairs);
                    assert_eq!(adj.pid_count(), lab.interner.len());
                }
            }
        }
    }

    #[test]
    fn adjacency_rows_are_sorted() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        let adj =
            ContainmentAdjacency::build(&lab.encoding, &lab.interner, tags[0], tags[1], false);
        for (p, _) in lab.interner.iter() {
            assert!(adj.forward(p).windows(2).all(|w| w[0] < w[1]));
            assert!(adj.reverse(p).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn bitmap_rows_mirror_csr_rows() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        for &tu in &tags {
            for &tv in &tags {
                for child in [true, false] {
                    let adj =
                        ContainmentAdjacency::build(&lab.encoding, &lab.interner, tu, tv, child);
                    assert_eq!(adj.set_words(), lab.interner.len().div_ceil(64));
                    for (p, _) in lab.interner.iter() {
                        // The candidate bitmap is exactly the nonempty
                        // rows (reflexivity), on both sides.
                        let is_cand = words::test_bit(adj.candidates(), p.index());
                        assert_eq!(is_cand, !adj.forward(p).is_empty());
                        assert_eq!(is_cand, !adj.reverse(p).is_empty());
                        match adj.forward_bits(p) {
                            Some(bits) => {
                                assert!(is_cand);
                                let from_bits: Vec<Pid> =
                                    words::ones(bits).map(Pid::from_index).collect();
                                assert_eq!(from_bits, adj.forward(p).to_vec());
                            }
                            None => assert!(!is_cand),
                        }
                        match adj.reverse_bits(p) {
                            Some(bits) => {
                                let from_bits: Vec<Pid> =
                                    words::ones(bits).map(Pid::from_index).collect();
                                assert_eq!(from_bits, adj.reverse(p).to_vec());
                            }
                            None => assert!(!is_cand),
                        }
                    }
                }
            }
        }
    }

    /// The relation-masking fill and the quadratic scan fill must produce
    /// identical structures on every key of a real document.
    #[test]
    fn relation_fill_matches_quadratic_scan() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let slab = PidBitmapSlab::from_interner(&lab.interner);
        let relation = PidContainmentRelation::build(&slab);
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        for &tu in &tags {
            for &tv in &tags {
                for child in [true, false] {
                    let fast = ContainmentAdjacency::build_with_layout(
                        &lab.encoding,
                        &lab.interner,
                        &slab,
                        &relation,
                        tu,
                        tv,
                        child,
                    );
                    let slow = ContainmentAdjacency::build_with_slab(
                        &lab.encoding,
                        &lab.interner,
                        &slab,
                        tu,
                        tv,
                        child,
                    );
                    assert_eq!(fast.pair_count(), slow.pair_count());
                    for (p, _) in lab.interner.iter() {
                        assert_eq!(fast.forward(p), slow.forward(p), "{tu:?}/{tv:?}/{child}");
                        assert_eq!(fast.reverse(p), slow.reverse(p), "{tu:?}/{tv:?}/{child}");
                        assert_eq!(fast.forward_bits(p), slow.forward_bits(p));
                        assert_eq!(fast.reverse_bits(p), slow.reverse_bits(p));
                    }
                    assert_eq!(fast.candidates(), slow.candidates());
                }
            }
        }
    }

    /// Real documents' path ids overlap without nesting (each id is a
    /// per-instance union of leaf-path encodings), so the relation must
    /// handle arbitrary bit-set families exactly — no laminarity
    /// assumption anywhere. Hand-build an overlapping family and check
    /// the fill against the §2 predicate directly.
    #[test]
    fn overlapping_unnested_ids_are_exact() {
        use crate::bits::PathIdBits;
        use crate::interner::PidInterner;

        // Overlap without containment: {1,2} and {2,3} over three paths.
        let mut tags = xpe_xml::TagInterner::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        let mut encoding = EncodingTable::new();
        encoding.intern(&[a, b]);
        encoding.intern(&[a, b, b]);
        encoding.intern(&[a]);
        let width = encoding.len() as u32;
        let mut pids = PidInterner::new(width);
        for bits in [&[1u32, 2][..], &[2, 3], &[1, 2, 3]] {
            let mut id = PathIdBits::zero(width);
            for &p in bits {
                id.set(p);
            }
            pids.intern(id);
        }
        let slab = PidBitmapSlab::from_interner(&pids);
        let relation = PidContainmentRelation::build(&slab);
        // {1,2} ⊆ {1,2,3}, {2,3} ⊆ {1,2,3}, plus the three reflexive
        // pairs; the overlapping pair {1,2} vs {2,3} nests neither way.
        assert_eq!(relation.pair_count(), 5);

        for child in [true, false] {
            let adj = ContainmentAdjacency::build_with_layout(
                &encoding, &pids, &slab, &relation, a, b, child,
            );
            let mask = relation_mask(&encoding, a, b, child);
            for (pu, _) in pids.iter() {
                for (pv, _) in pids.iter() {
                    assert_eq!(
                        adj.forward(pu).contains(&pv),
                        axis_compatible_masked(&pids, pu, pv, &mask),
                        "{pu:?}->{pv:?} child={child}"
                    );
                }
            }
        }
    }

    /// Interners wider than 64 words alias the support signature (word
    /// `j` → bit `j % 64`), so the subset walk must not truncate rows to
    /// the aliased support. Regression: a 65-word interner with ids
    /// {1,2} and {1,4099} used to report a bogus {1,2} ⊇ {1,4099} pair
    /// (pair_count 3 instead of 2) in every builder that took the
    /// truncated fast path.
    #[test]
    fn wide_interner_relation_is_exact() {
        use crate::bits::PathIdBits;
        use crate::interner::PidInterner;

        let width = 4160u32; // 65 words — one past the signature's reach
        let mut pids = PidInterner::new(width);
        for bits in [
            &[1u32, 2][..],
            &[1, 4099],
            &[4099],
            &[2, 4099, 4100],
            &[1, 2, 4099, 4100],
            &[65, 4160],
        ] {
            let mut id = PathIdBits::zero(width);
            for &p in bits {
                id.set(p);
            }
            pids.intern(id);
        }
        let slab = PidBitmapSlab::from_interner(&pids);
        let relation = PidContainmentRelation::build(&slab);
        let mut pairs = 0;
        for (pu, bu) in pids.iter() {
            for (pv, bv) in pids.iter() {
                let expected = bu.contains_or_equal(bv);
                assert_eq!(
                    words::test_bit(relation.forward_row(pu.index()), pv.index()),
                    expected,
                    "fwd {pu:?} ⊇ {pv:?}"
                );
                assert_eq!(
                    words::test_bit(relation.reverse_row(pv.index()), pu.index()),
                    expected,
                    "rev {pu:?} ⊇ {pv:?}"
                );
                pairs += usize::from(expected);
            }
        }
        assert_eq!(relation.pair_count(), pairs);

        // The reviewer's minimal counterexample, verbatim.
        let mut two = PidInterner::new(width);
        for bits in [&[1u32, 2][..], &[1, 4099]] {
            let mut id = PathIdBits::zero(width);
            for &p in bits {
                id.set(p);
            }
            two.intern(id);
        }
        let rel = PidContainmentRelation::build(&PidBitmapSlab::from_interner(&two));
        assert_eq!(rel.pair_count(), 2, "only the two reflexive pairs");
    }

    /// Both adjacency fills stay exact past 64 words of interner width —
    /// the same regression as `wide_interner_relation_is_exact`, but
    /// through `build_with_slab`'s own truncated walk and the masked
    /// `build_with_layout` fill.
    #[test]
    fn wide_interner_adjacency_matches_masked_test() {
        use crate::bits::PathIdBits;
        use crate::interner::PidInterner;

        // 4160 distinct paths via binary strings over two tags: enough
        // encodings that high pid words are real, cheap to intern.
        let mut tags = xpe_xml::TagInterner::new();
        let r = tags.intern("r");
        let a = tags.intern("a");
        let b = tags.intern("b");
        let mut encoding = EncodingTable::new();
        for i in 0..4160u32 {
            let mut path = vec![r];
            for bit in 0..13 {
                path.push(if i >> bit & 1 == 1 { a } else { b });
            }
            encoding.intern(&path);
        }
        let width = encoding.len() as u32;
        assert!(width > 4096);

        let mut pids = PidInterner::new(width);
        for bits in [
            &[1u32, 2][..],
            &[1, 4099],
            &[4099],
            &[2, 4099, 4100],
            &[1, 2, 4099, 4100],
            &[65, 126, 4160],
        ] {
            let mut id = PathIdBits::zero(width);
            for &p in bits {
                id.set(p);
            }
            pids.intern(id);
        }
        let slab = PidBitmapSlab::from_interner(&pids);
        let relation = PidContainmentRelation::build(&slab);
        for child in [true, false] {
            let fast = ContainmentAdjacency::build_with_layout(
                &encoding, &pids, &slab, &relation, r, a, child,
            );
            let slow = ContainmentAdjacency::build_with_slab(&encoding, &pids, &slab, r, a, child);
            let mask = relation_mask(&encoding, r, a, child);
            for (pu, _) in pids.iter() {
                for (pv, _) in pids.iter() {
                    let expected = axis_compatible_masked(&pids, pu, pv, &mask);
                    assert_eq!(
                        fast.forward(pu).contains(&pv),
                        expected,
                        "fast {pu:?}->{pv:?} child={child}"
                    );
                    assert_eq!(
                        slow.forward(pu).contains(&pv),
                        expected,
                        "slow {pu:?}->{pv:?} child={child}"
                    );
                }
            }
            assert_eq!(fast.pair_count(), slow.pair_count());
        }
    }

    #[test]
    fn seed_bitmaps_memoize() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        let cache = JoinIndexCache::new();
        let s1 = cache.seed_bitmap(tags[0], true, || vec![0b101]);
        let s2 = cache.seed_bitmap(tags[0], true, || panic!("memo must hit"));
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(*s1, vec![0b101]);
        let s3 = cache.seed_bitmap(tags[0], false, || vec![0b11]);
        assert_eq!(*s3, vec![0b11]);
        let slab1 = cache.slab(&lab.interner);
        let slab2 = cache.slab(&lab.interner);
        assert!(Arc::ptr_eq(&slab1, &slab2));
        assert_eq!(slab1.rows(), lab.interner.len());
    }

    #[test]
    fn cache_memoizes_and_counts() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let cache = JoinIndexCache::new();
        assert!(cache.is_empty());
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        let a1 = cache.get(&lab.encoding, &lab.interner, tags[0], tags[1], true);
        let a2 = cache.get(&lab.encoding, &lab.interner, tags[0], tags[1], true);
        assert!(Arc::ptr_eq(&a1, &a2), "second lookup hits the memo");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.pair_total(), a1.pair_count() as u64);
        cache.get(&lab.encoding, &lab.interner, tags[1], tags[0], false);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let cache = Arc::new(JoinIndexCache::new());
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for &tu in &tags {
                        for &tv in &tags {
                            let a = cache.get(&lab.encoding, &lab.interner, tu, tv, true);
                            assert_eq!(a.pid_count(), lab.interner.len());
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), tags.len() * tags.len());
        // Every cold miss either built or waited for the builder; the
        // in-flight guard means no key was ever built twice.
        assert_eq!(cache.build_attempts(), cache.builds());
    }

    #[test]
    fn same_key_cold_race_coalesces_into_one_build() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        // Many rounds: each uses a fresh cache and races 8 threads on a
        // single cold key, the historically racy shape.
        for round in 0..20 {
            let cache = JoinIndexCache::new();
            let built: Vec<Arc<ContainmentAdjacency>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|_| {
                        s.spawn(|| cache.get(&lab.encoding, &lab.interner, tags[0], tags[1], true))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            // Exactly one build ran; every thread got the published Arc.
            assert_eq!(cache.build_attempts(), 1, "round {round}");
            assert_eq!(cache.builds(), 1, "round {round}");
            for a in &built {
                assert!(Arc::ptr_eq(a, &built[0]), "round {round}");
            }
        }
    }

    #[test]
    fn same_key_seed_race_runs_the_closure_once() {
        use std::sync::atomic::AtomicU64;
        let doc = xpe_xml::fixtures::paper_figure1();
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        for round in 0..20 {
            let cache = JoinIndexCache::new();
            let calls = AtomicU64::new(0);
            let seeds: Vec<Arc<Vec<u64>>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|_| {
                        s.spawn(|| {
                            cache.seed_bitmap(tags[0], true, || {
                                calls.fetch_add(1, Ordering::Relaxed);
                                // Widen the race window a little.
                                std::thread::yield_now();
                                vec![0b1011]
                            })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(calls.load(Ordering::Relaxed), 1, "round {round}");
            for sdw in &seeds {
                assert!(Arc::ptr_eq(sdw, &seeds[0]), "round {round}");
            }
        }
    }

    #[test]
    fn panicking_builder_releases_the_claim_for_waiters() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        let cache = JoinIndexCache::new();
        // First builder panics inside the seed closure; its claim must
        // drop so a later caller can build the key instead of hanging.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.seed_bitmap(tags[0], true, || panic!("builder dies"))
        }));
        std::panic::set_hook(prev);
        assert!(died.is_err());
        let s = cache.seed_bitmap(tags[0], true, || vec![0b1]);
        assert_eq!(*s, vec![0b1]);
    }
}
