//! Precomputed containment adjacency — the indexed join kernel's lookup
//! structure.
//!
//! The path join's inner loop asks, per query edge, "which surviving
//! `(pid_u, pid_v)` pairs pass the §2 containment + tag-relationship
//! test?". With a [`relation_mask`] that is still an `O(|list_u| ·
//! |list_v|)` scan of multi-word bit operations, repeated on every
//! fixpoint pass of every query. But the answer per pair depends only on
//! `(pid_u, pid_v, tag_u, tag_v, axis-class)` and the summary — not on
//! the query — so a whole workload keeps re-deriving the same relation.
//!
//! A [`ContainmentAdjacency`] materializes that relation once per
//! `(tag_u, tag_v, child_axis)` key: for every interned pid it stores the
//! sorted list of compatible partner pids, in both directions (CSR
//! layout). The join's pruning step then becomes a semi-join — "does this
//! pid's adjacency row intersect the surviving set on the other side?" —
//! which touches only actually-compatible pairs instead of scanning all
//! candidate pairs with 344-bit containment tests.
//!
//! [`JoinIndexCache`] memoizes adjacencies per summary exactly like
//! [`RelationMaskCache`](crate::RelationMaskCache) memoizes masks, and
//! additionally counts builds and build wall-time so the bench harness
//! can report amortization (`adjacency_build_ms` in the perf snapshot).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use xpe_xml::TagId;

use crate::encoding::EncodingTable;
use crate::interner::{Pid, PidInterner};
use crate::rel::relation_mask;

/// The compatible-pair relation of one `(tag_u, tag_v, child_axis)` key,
/// stored as forward (`pid_u → pid_v`) and reverse (`pid_v → pid_u`)
/// compressed adjacency rows over the interner's dense pid indices.
///
/// `(pu, pv)` is in the relation iff
/// [`axis_compatible_masked`](crate::axis_compatible_masked) holds for the
/// key's relation mask — the index never changes which pairs pass, only
/// how fast the question is answered.
#[derive(Debug)]
pub struct ContainmentAdjacency {
    /// Forward CSR offsets: row of `pid_u` is `fwd[fwd_off[u]..fwd_off[u+1]]`.
    fwd_off: Vec<u32>,
    fwd: Vec<Pid>,
    /// Reverse CSR offsets: row of `pid_v` is `rev[rev_off[v]..rev_off[v+1]]`.
    rev_off: Vec<u32>,
    rev: Vec<Pid>,
}

impl ContainmentAdjacency {
    /// Materializes the relation for `(tag_u, tag_v, child_axis)` over
    /// every interned pid. `O(#pids² × id words)` once, versus the same
    /// cost *per query edge* for the scan it replaces.
    pub fn build(
        encoding: &EncodingTable,
        pids: &PidInterner,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> Self {
        let mask = relation_mask(encoding, tag_u, tag_v, child_axis);
        let n = pids.len();

        // A compatible pair needs `pv ∩ mask ≠ ∅`, and `pu ⊇ pv` then
        // forces `pu ∩ mask ≠ ∅` as well — so only pids intersecting the
        // mask can appear on *either* side. Screening both sides up front
        // shrinks the quadratic fill loop from all interned pids to the
        // (usually few) mask-relevant ones.
        let ok: Vec<usize> = (0..n)
            .filter(|&i| pids.bits(Pid::from_index(i)).intersects(&mask))
            .collect();

        let mut fwd_off = vec![0u32; n + 1];
        let mut fwd = Vec::new();
        let mut rev_len = vec![0u32; n];
        for &u in &ok {
            let bu = pids.bits(Pid::from_index(u));
            for &v in &ok {
                if bu.contains_or_equal(pids.bits(Pid::from_index(v))) {
                    fwd.push(Pid::from_index(v));
                    rev_len[v] += 1;
                }
            }
            fwd_off[u + 1] = fwd.len() as u32;
        }
        // Rows of screened-out pids are empty: carry the running offset
        // forward so every row slice stays well-defined.
        for u in 0..n {
            fwd_off[u + 1] = fwd_off[u + 1].max(fwd_off[u]);
        }

        // Transpose the forward rows into reverse rows; both stay sorted
        // by dense pid index because `u` ascends in the fill loop.
        let mut rev_off = Vec::with_capacity(n + 1);
        rev_off.push(0u32);
        for v in 0..n {
            rev_off.push(rev_off[v] + rev_len[v]);
        }
        let mut cursor: Vec<u32> = rev_off[..n].to_vec();
        let mut rev = vec![Pid::from_index(0); fwd.len()];
        for u in 0..n {
            for &pv in &fwd[fwd_off[u] as usize..fwd_off[u + 1] as usize] {
                let slot = cursor[pv.index()];
                rev[slot as usize] = Pid::from_index(u);
                cursor[pv.index()] += 1;
            }
        }

        ContainmentAdjacency {
            fwd_off,
            fwd,
            rev_off,
            rev,
        }
    }

    /// Pids compatible as the descendant side of `pid_u`, ascending.
    #[inline]
    pub fn forward(&self, pid_u: Pid) -> &[Pid] {
        let u = pid_u.index();
        &self.fwd[self.fwd_off[u] as usize..self.fwd_off[u + 1] as usize]
    }

    /// Pids compatible as the ancestor side of `pid_v`, ascending.
    #[inline]
    pub fn reverse(&self, pid_v: Pid) -> &[Pid] {
        let v = pid_v.index();
        &self.rev[self.rev_off[v] as usize..self.rev_off[v + 1] as usize]
    }

    /// Number of compatible pairs in the relation.
    pub fn pair_count(&self) -> usize {
        self.fwd.len()
    }

    /// Number of pids the index covers (the interner size at build time).
    pub fn pid_count(&self) -> usize {
        self.fwd_off.len() - 1
    }
}

/// Thread-safe memo table over [`ContainmentAdjacency::build`], keyed like
/// the relation-mask cache by `(tag_u, tag_v, child_axis)`.
///
/// Two threads racing on a cold key may both build the adjacency; the
/// first insert wins and both observe the same `Arc`. Builds are pure
/// functions of the key and the (immutable) summary structures, so this
/// duplicates work but never diverges. Build count, cumulative build
/// time, and pair totals are tracked for the perf snapshot.
#[derive(Debug, Default)]
pub struct JoinIndexCache {
    map: RwLock<HashMap<(TagId, TagId, bool), Arc<ContainmentAdjacency>>>,
    builds: AtomicU64,
    build_nanos: AtomicU64,
    pairs: AtomicU64,
}

impl JoinIndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The adjacency for `(tag_u, tag_v, child_axis)`, building and
    /// memoizing it on first use.
    pub fn get(
        &self,
        encoding: &EncodingTable,
        pids: &PidInterner,
        tag_u: TagId,
        tag_v: TagId,
        child_axis: bool,
    ) -> Arc<ContainmentAdjacency> {
        let key = (tag_u, tag_v, child_axis);
        if let Some(a) = self
            .map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return Arc::clone(a);
        }
        let t0 = Instant::now();
        let built = Arc::new(ContainmentAdjacency::build(
            encoding, pids, tag_u, tag_v, child_axis,
        ));
        self.builds.fetch_add(1, Ordering::Relaxed);
        self.build_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.pairs
            .fetch_add(built.pair_count() as u64, Ordering::Relaxed);
        let mut w = self
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(w.entry(key).or_insert(built))
    }

    /// Number of memoized adjacencies.
    pub fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no adjacency has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total builds performed (≥ [`len`](Self::len) under races).
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Cumulative wall-clock milliseconds spent building adjacencies.
    pub fn build_ms(&self) -> f64 {
        self.build_nanos.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Total compatible pairs across every build (duplicates included
    /// under races).
    pub fn pair_total(&self) -> u64 {
        self.pairs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Labeling;
    use crate::rel::axis_compatible_masked;

    #[test]
    fn adjacency_rows_match_masked_test() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        for &tu in &tags {
            for &tv in &tags {
                for child in [true, false] {
                    let adj =
                        ContainmentAdjacency::build(&lab.encoding, &lab.interner, tu, tv, child);
                    let mask = relation_mask(&lab.encoding, tu, tv, child);
                    let mut pairs = 0;
                    for (pu, _) in lab.interner.iter() {
                        let row = adj.forward(pu);
                        for (pv, _) in lab.interner.iter() {
                            let expected = axis_compatible_masked(&lab.interner, pu, pv, &mask);
                            assert_eq!(
                                row.contains(&pv),
                                expected,
                                "fwd {tu:?}/{tv:?} child={child} {pu:?}->{pv:?}"
                            );
                            assert_eq!(
                                adj.reverse(pv).contains(&pu),
                                expected,
                                "rev {tu:?}/{tv:?} child={child} {pu:?}->{pv:?}"
                            );
                            pairs += usize::from(expected);
                        }
                    }
                    assert_eq!(adj.pair_count(), pairs);
                    assert_eq!(adj.pid_count(), lab.interner.len());
                }
            }
        }
    }

    #[test]
    fn adjacency_rows_are_sorted() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        let adj =
            ContainmentAdjacency::build(&lab.encoding, &lab.interner, tags[0], tags[1], false);
        for (p, _) in lab.interner.iter() {
            assert!(adj.forward(p).windows(2).all(|w| w[0] < w[1]));
            assert!(adj.reverse(p).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn cache_memoizes_and_counts() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let cache = JoinIndexCache::new();
        assert!(cache.is_empty());
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        let a1 = cache.get(&lab.encoding, &lab.interner, tags[0], tags[1], true);
        let a2 = cache.get(&lab.encoding, &lab.interner, tags[0], tags[1], true);
        assert!(Arc::ptr_eq(&a1, &a2), "second lookup hits the memo");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.pair_total(), a1.pair_count() as u64);
        cache.get(&lab.encoding, &lab.interner, tags[1], tags[0], false);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let lab = Labeling::compute(&doc);
        let cache = Arc::new(JoinIndexCache::new());
        let tags: Vec<TagId> = doc.tags().iter().map(|(t, _)| t).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for &tu in &tags {
                        for &tv in &tags {
                            let a = cache.get(&lab.encoding, &lab.interner, tu, tv, true);
                            assert_eq!(a.pid_count(), lab.interner.len());
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), tags.len() * tags.len());
    }
}
