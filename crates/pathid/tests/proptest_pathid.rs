//! Property tests over the path encoding scheme on random documents:
//! labeling invariants (paper §2) and binary-tree round trips (paper §6).

use proptest::prelude::*;
use xpe_pathid::{Labeling, PathIdTree};
use xpe_xml::{Document, TreeBuilder};

#[derive(Debug, Clone)]
struct TreeSpec {
    tag: u8,
    children: Vec<TreeSpec>,
}

fn arb_doc() -> impl Strategy<Value = TreeSpec> {
    let leaf = (0u8..5).prop_map(|t| TreeSpec {
        tag: t,
        children: vec![],
    });
    leaf.prop_recursive(4, 48, 4, |inner| {
        (0u8..5, prop::collection::vec(inner, 0..5))
            .prop_map(|(tag, children)| TreeSpec { tag, children })
    })
}

fn build_doc(spec: &TreeSpec) -> Document {
    let mut b = TreeBuilder::new();
    fn rec(b: &mut TreeBuilder, s: &TreeSpec) {
        b.begin_element(&format!("t{}", s.tag));
        for c in &s.children {
            rec(b, c);
        }
        b.end_element().unwrap();
    }
    rec(&mut b, spec);
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Leaves carry exactly the bit of their root path; internal nodes the
    /// OR of their children; parents always contain-or-equal children.
    #[test]
    fn labeling_invariants(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let lab = Labeling::compute(&doc);
        prop_assert_eq!(lab.interner.width() as usize, lab.encoding.len());
        for n in doc.node_ids() {
            let bits = lab.interner.bits(lab.pid(n));
            if doc.children(n).is_empty() {
                prop_assert_eq!(bits.count_ones(), 1);
                let enc = bits.first_one().unwrap();
                // The encoded path is this leaf's root path.
                let path = doc.root_path(n);
                prop_assert_eq!(lab.encoding.path(enc), &path[..]);
            } else {
                let mut or = xpe_pathid::PathIdBits::zero(lab.interner.width());
                for &c in doc.children(n) {
                    or.or_assign(lab.interner.bits(lab.pid(c)));
                }
                prop_assert_eq!(bits, &or);
            }
            if let Some(p) = doc.parent(n) {
                prop_assert!(lab.interner.contains_or_equal(lab.pid(p), lab.pid(n)));
            }
        }
        // The root's id covers every path.
        let root_bits = lab.interner.bits(lab.pid(doc.root()));
        prop_assert_eq!(root_bits.count_ones() as usize, lab.encoding.len());
    }

    /// Soundness of the path-join pruning test (paper §2 Cases 1–2, §4):
    /// for every *real* ancestor/descendant or parent/child pair in the
    /// document, `axis_compatible` must accept the pair's (pid, tag)
    /// annotations — the join may only ever prune ids that cannot
    /// contribute. (The converse is deliberately not required: the paper's
    /// containment lemma is a heuristic and over-approximates on recursive
    /// or same-tag data, which is what makes this an estimator.)
    #[test]
    fn pruning_test_is_sound(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let lab = Labeling::compute(&doc);
        for x in doc.node_ids() {
            for y in doc.node_ids() {
                if !doc.is_ancestor(x, y) {
                    continue;
                }
                let (px, py) = (lab.pid(x), lab.pid(y));
                prop_assert!(
                    lab.axis_compatible(px, doc.tag(x), py, doc.tag(y), false),
                    "ancestor pair rejected"
                );
                if doc.parent(y) == Some(x) {
                    prop_assert!(
                        lab.axis_compatible(px, doc.tag(x), py, doc.tag(y), true),
                        "parent pair rejected"
                    );
                }
            }
        }
    }

    /// Tree ordinals round-trip through bit reconstruction and reverse
    /// lookup on arbitrary documents.
    #[test]
    fn binary_tree_round_trip(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let lab = Labeling::compute(&doc);
        let tree = PathIdTree::new(&lab.interner);
        prop_assert_eq!(tree.len(), lab.interner.len());
        let mut seen = std::collections::HashSet::new();
        for (pid, bits) in lab.interner.iter() {
            let ord = tree.ord(pid);
            prop_assert!(ord >= 1 && ord as usize <= tree.len());
            prop_assert!(seen.insert(ord), "ordinals must be unique");
            prop_assert_eq!(&tree.bits_of_ord(ord).unwrap(), bits);
            prop_assert_eq!(tree.ord_of_bits(bits), Some(ord));
            prop_assert_eq!(tree.pid_of_ord(ord), pid);
        }
    }

    /// Ordinals are monotone in the bit-string order (Figure 6 leaf order).
    #[test]
    fn ordinals_are_sorted(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let lab = Labeling::compute(&doc);
        let tree = PathIdTree::new(&lab.interner);
        let mut pairs: Vec<_> = lab
            .interner
            .iter()
            .map(|(pid, bits)| (tree.ord(pid), bits.clone()))
            .collect();
        pairs.sort_by_key(|(o, _)| *o);
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 < w[1].1);
        }
    }
}
