//! Property test: the streaming ingest pipeline persists a **byte-identical**
//! `.xps` to the DOM build over random documents — including recursive
//! documents at and near the parser depth cap and documents with text or
//! whitespace between siblings (where the order tables must still agree).

use proptest::prelude::*;

use xpe_datagen::{random_document, RandomDocConfig};
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xml::{parse_document, Document, NodeId, MAX_DEPTH};

/// Both pipelines on the same text must persist the same bytes.
fn assert_streams_identical(xml: &str, p_variance: f64, o_variance: f64) {
    let config = SummaryConfig {
        p_variance,
        o_variance,
        ..SummaryConfig::default()
    };
    let doc = parse_document(xml).expect("generated document must parse");
    let dom = Summary::build(&doc, config).to_bytes();
    let stream = Summary::build_streaming(xml, config)
        .expect("streaming build must accept what the DOM parser accepts")
        .to_bytes();
    assert_eq!(dom, stream, "persisted summaries diverged for {xml:?}");
}

/// Serializes `doc` with a deterministic mix of text runs and whitespace
/// between siblings, so sibling-order statistics are exercised across
/// non-element content.
fn serialize_with_text(doc: &Document) -> String {
    fn walk(doc: &Document, node: NodeId, out: &mut String, counter: &mut u32) {
        let name = doc.tag_name(node);
        out.push('<');
        out.push_str(name);
        out.push('>');
        for &child in doc.children(node) {
            *counter += 1;
            match *counter % 4 {
                0 => out.push_str("text run "),
                1 => out.push_str("\n  \t"),
                2 => out.push_str("&amp;"),
                _ => {}
            }
            walk(doc, child, out, counter);
        }
        out.push_str("</");
        out.push_str(name);
        out.push('>');
    }
    let mut out = String::new();
    let mut counter = 0;
    walk(doc, doc.root(), &mut out, &mut counter);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_matches_dom_on_random_documents(
        seed in 0u64..1_000_000,
        max_depth in 1usize..6,
        max_children in 1usize..5,
        tag_count in 1usize..4,
        layered in any::<bool>(),
        p_variance in prop_oneof![Just(0.0), Just(1.0), Just(8.0)],
    ) {
        let doc = random_document(&RandomDocConfig {
            seed,
            max_depth,
            max_children,
            tag_count,
            layered,
        });
        // Compact, pretty (whitespace between siblings), and mixed-text
        // serializations must all round-trip identically.
        assert_streams_identical(&xpe_xml::to_string(&doc), p_variance, p_variance);
        assert_streams_identical(&xpe_xml::to_string_pretty(&doc), p_variance, p_variance);
        assert_streams_identical(&serialize_with_text(&doc), p_variance, p_variance);
    }
}

/// A recursive single-tag chain of the given element depth.
fn nested_chain(depth: usize) -> String {
    let mut xml = String::with_capacity(depth * 7 + 16);
    for _ in 0..depth {
        xml.push_str("<a>");
    }
    xml.push_str("<leaf/>");
    for _ in 0..depth {
        xml.push_str("</a>");
    }
    xml
}

#[test]
fn streaming_matches_dom_at_depth_cap() {
    // The <leaf/> sits one level below the chain, so the deepest accepted
    // chain is MAX_DEPTH - 1 elements of <a>.
    for depth in [MAX_DEPTH - 2, MAX_DEPTH - 1] {
        assert_streams_identical(&nested_chain(depth), 0.0, 0.0);
    }
}

#[test]
fn streaming_rejects_past_depth_cap_like_dom() {
    let xml = nested_chain(MAX_DEPTH);
    let dom_err = parse_document(&xml).unwrap_err();
    let stream_err = Summary::build_streaming(&xml, SummaryConfig::default()).unwrap_err();
    assert_eq!(dom_err, stream_err);
}

#[test]
fn streaming_matches_dom_with_text_between_siblings() {
    for xml in [
        "<r>lead<x/>mid<y/>mid<x/>tail</r>",
        "<r>\n  <x/>\n  <y/>\n  <x/>\n</r>",
        "<r><a>t1<b/>t2</a> <a><b/>only</a></r>",
    ] {
        assert_streams_identical(xml, 0.0, 0.0);
        assert_streams_identical(xml, 4.0, 4.0);
    }
}
