//! Property tests pinning the indexed join kernel to the naive reference.
//!
//! `path_join` is the paper's Figure 3 verbatim — nested-loop containment
//! tests, all edges re-swept until stable, root pinning re-derived from
//! the encoding table per pid. `path_join_cached` layers every
//! optimization of the estimation engine on top: memoized relation masks,
//! containment adjacency with a semi-join inner loop, the worklist
//! fixpoint schedule, the precomputed root-pid index, and pooled scratch.
//! These tests assert the two kernels are **bit-identical** — same pids,
//! in the same order, with the same `f64` frequency bits — over random
//! documents and random twig queries, and that the engine's workload-level
//! join cache never changes an estimate either.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xpe_core::{path_join, path_join_cached, EstimationEngine, Estimator, JoinScratch};
use xpe_datagen::{random_document, RandomDocConfig};
use xpe_diff::{random_query, tag_paths};
use xpe_pathid::{JoinIndexCache, Pid, RelationMaskCache};
use xpe_synopsis::{Summary, SummaryConfig};

/// One random `(document, queries)` scenario derived from a master seed —
/// the same sampling ranges the differential battery uses.
fn scenario(seed: u64) -> (Summary, Vec<xpe_xpath::Query>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let doc = random_document(&RandomDocConfig {
        seed: rng.gen::<u64>(),
        max_depth: rng.gen_range(2..=5),
        max_children: rng.gen_range(1..=4),
        tag_count: rng.gen_range(1..=3),
        layered: rng.gen_bool(0.5),
    });
    let summary = Summary::build(&doc, SummaryConfig::default());
    let paths = tag_paths(&doc);
    let queries = if paths.is_empty() {
        Vec::new()
    } else {
        (0..8).map(|_| random_query(&mut rng, &paths)).collect()
    };
    (summary, queries)
}

fn as_bits(lists: &[Vec<(Pid, f64)>]) -> Vec<Vec<(Pid, u64)>> {
    lists
        .iter()
        .map(|l| l.iter().map(|&(p, f)| (p, f.to_bits())).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fully-indexed kernel (masks + adjacency + scratch, worklist
    /// schedule, precomputed root pids) returns exactly the reference
    /// kernel's lists on every random document and query.
    #[test]
    fn indexed_join_is_bit_identical_to_naive(seed in 0u64..1_000_000) {
        let (summary, queries) = scenario(seed);
        let masks = RelationMaskCache::new();
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        for query in &queries {
            let reference = path_join(&summary, query);
            let fast = path_join_cached(
                &summary,
                query,
                Some(&masks),
                Some(&index),
                Some(&mut scratch),
            );
            prop_assert_eq!(
                as_bits(&reference.lists),
                as_bits(&fast.lists),
                "seed {}",
                seed
            );
            scratch.recycle(fast);
        }
    }

    /// End to end: a batch engine with the workload join cache enabled
    /// (including intra-query hits from repeated derived skeletons)
    /// produces bit-identical estimates to a bare, cacheless estimator.
    #[test]
    fn cached_engine_estimates_match_plain_estimator(seed in 0u64..1_000_000) {
        let (summary, queries) = scenario(seed);
        let plain = Estimator::new(&summary);
        let serial: Vec<u64> = queries
            .iter()
            .map(|q| plain.estimate(q).to_bits())
            .collect();
        // Run the batch twice so the second pass is served from the warm
        // join cache rather than the kernel.
        let engine = EstimationEngine::new(&summary).with_threads(2);
        for run in 0..2 {
            let batch: Vec<u64> = engine
                .estimate_batch(&queries)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(&batch, &serial, "seed {} run {}", seed, run);
        }
    }
}
