//! Property tests for the full-query estimate cache.
//!
//! The cache is pure memoization: its only contract is that a cached
//! answer is the bit-identical `f64` the kernel would have produced.
//! These tests drive random documents and random twig queries through
//! every join kernel at several worker counts, through warm repeat
//! passes and reused estimator fronts, and assert the cached path never
//! drifts from a cacheless reference engine. A second property derives
//! order-constraint variants that share a join skeleton (same tags,
//! same edges) and interleaves them through one shared cache: because
//! the cache key is the canonical query text — which renders order
//! constraints — variants must never collide on an entry, or one
//! variant would answer with another's value.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xpe_core::{EstimationEngine, JoinKernel};
use xpe_datagen::{random_document, RandomDocConfig};
use xpe_diff::{random_query, tag_paths};
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xpath::{Axis, OrderConstraint, OrderKind, Query};

/// All three kernels: the naive reference is cheap at these document
/// sizes and pins the cache against the paper's Figure-3 semantics too.
const KERNELS: [JoinKernel; 3] = [JoinKernel::Naive, JoinKernel::Indexed, JoinKernel::Bitmap];

/// One random `(document, queries)` scenario derived from a master seed —
/// the same sampling ranges the differential battery uses.
fn scenario(seed: u64) -> (Summary, Vec<Query>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let doc = random_document(&RandomDocConfig {
        seed: rng.gen::<u64>(),
        max_depth: rng.gen_range(2..=5),
        max_children: rng.gen_range(1..=4),
        tag_count: rng.gen_range(1..=3),
        layered: rng.gen_bool(0.5),
    });
    let summary = Summary::build(&doc, SummaryConfig::default());
    let paths = tag_paths(&doc);
    let queries = if paths.is_empty() {
        Vec::new()
    } else {
        (0..8).map(|_| random_query(&mut rng, &paths)).collect()
    };
    (summary, queries)
}

/// Bitwise uncached reference values from a cacheless one-worker engine.
fn uncached_bits(summary: &Summary, kernel: JoinKernel, queries: &[Query]) -> Vec<u64> {
    let reference = EstimationEngine::new(summary)
        .with_threads(1)
        .with_kernel(kernel)
        .with_estimate_cache_capacity(0);
    reference
        .estimate_batch(queries)
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Order-constraint variants of `query` that share its join skeleton:
/// the constraint list of the first node with two or more edges is
/// rewritten (none, document order both ways, sibling order both ways
/// when both edges are child-axis). Returns an empty vector when no
/// node can own a constraint.
fn order_variants(query: &Query) -> Vec<Query> {
    let Some(owner) = query.nodes().iter().position(|n| n.edges.len() >= 2) else {
        return Vec::new();
    };
    let both_child = {
        let edges = &query.nodes()[owner].edges;
        edges[0].axis == Axis::Child && edges[1].axis == Axis::Child
    };
    let mut constraint_sets = vec![
        Vec::new(),
        vec![OrderConstraint {
            before: 0,
            after: 1,
            kind: OrderKind::Document,
        }],
        vec![OrderConstraint {
            before: 1,
            after: 0,
            kind: OrderKind::Document,
        }],
    ];
    if both_child {
        for (before, after) in [(0, 1), (1, 0)] {
            constraint_sets.push(vec![OrderConstraint {
                before,
                after,
                kind: OrderKind::Sibling,
            }]);
        }
    }
    constraint_sets
        .into_iter()
        .map(|constraints| {
            let mut nodes = query.nodes().to_vec();
            nodes[owner].constraints = constraints;
            Query::new(nodes, query.root_axis(), query.target())
                .expect("rewriting constraints keeps the query structurally valid")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached == uncached, bitwise, across every kernel, at one and two
    /// workers, on cold and warm passes, and through a reused
    /// estimator front sharing the engine's warm cache.
    #[test]
    fn cached_estimates_are_bit_identical_to_uncached(seed in 0u64..1_000_000) {
        let (summary, queries) = scenario(seed);
        if queries.is_empty() {
            return Ok(());
        }
        for kernel in KERNELS {
            let expected = uncached_bits(&summary, kernel, &queries);
            for threads in [1usize, 2] {
                let engine = EstimationEngine::new(&summary)
                    .with_threads(threads)
                    .with_kernel(kernel);
                // Pass 0 fills the cache, pass 1 is served from it.
                for pass in 0..2 {
                    let got = engine.estimate_batch(&queries);
                    for (i, (got, want)) in got.iter().zip(&expected).enumerate() {
                        prop_assert_eq!(
                            got.to_bits(),
                            *want,
                            "seed {} kernel {} threads {} pass {} query {}",
                            seed,
                            kernel.name(),
                            threads,
                            pass,
                            i
                        );
                    }
                }
                // A reused estimator front over the same warm cache.
                let est = engine.estimator();
                for (q, want) in queries.iter().zip(&expected) {
                    prop_assert_eq!(est.estimate(q).to_bits(), *want, "seed {}", seed);
                }
                drop(est);
                let stats = engine.kernel_stats();
                prop_assert!(
                    stats.estimate_cache_hits > 0,
                    "warm passes must hit: {:?}",
                    stats
                );
            }
        }
    }

    /// Order-constraint variants sharing a skeleton interleave through
    /// one shared cache without ever answering with each other's value.
    #[test]
    fn order_variants_never_share_a_cache_entry(seed in 0u64..1_000_000) {
        let (summary, queries) = scenario(seed);
        let variants: Vec<Query> = queries.iter().flat_map(order_variants).collect();
        if variants.is_empty() {
            return Ok(());
        }
        for kernel in KERNELS {
            let expected = uncached_bits(&summary, kernel, &variants);
            let engine = EstimationEngine::new(&summary)
                .with_threads(1)
                .with_kernel(kernel);
            let est = engine.estimator();
            // Three interleaved passes: every answer after the first is
            // a cache hit, and a collision between variants would
            // surface as one variant returning another's bits.
            for pass in 0..3 {
                for (i, (variant, want)) in variants.iter().zip(&expected).enumerate() {
                    prop_assert_eq!(
                        est.estimate(variant).to_bits(),
                        *want,
                        "seed {} kernel {} pass {} variant {} ({})",
                        seed,
                        kernel.name(),
                        pass,
                        i,
                        variant
                    );
                }
            }
        }
    }
}
