//! The differential battery, run for real and against injected faults.
//!
//! A correctness harness is only trustworthy once it has been seen to
//! catch a bug, so half of this file *reintroduces* the failure classes
//! the invariants exist for — an unguarded `0/0`, a biased formula, a
//! desynced batch path — and asserts the harness flags them.

use xpe_diff::{run_diff, run_diff_with, DiffConfig, Invariant};

/// The production estimator passes the whole battery.
#[test]
fn production_estimator_has_zero_violations() {
    let report = run_diff(&DiffConfig {
        seed: 0xD1FF,
        cases: 120,
    });
    assert_eq!(
        report.total_violations(),
        0,
        "violations: {:#?}",
        report.violations
    );
    // The run must actually exercise every invariant, not vacuously pass.
    for inv in Invariant::ALL {
        assert!(
            report.tally(inv).checks > 0,
            "invariant {} was never checked",
            inv.name()
        );
    }
    assert_eq!(report.cases, 120);
}

/// Removing a division guard (the historical bug: a `0/0` on queries with
/// empty denominators) is caught by the `finite` invariant — and, because
/// the batch engine still runs the guarded code, by `batch-identical` too.
#[test]
fn injected_unguarded_division_is_caught() {
    let report = run_diff_with(
        &DiffConfig {
            seed: 0xD1FF,
            cases: 120,
        },
        |est, q| {
            // Faulty variant of Eq. 2's ratio with the guard removed:
            // (v·v)/v is v for any nonzero population but 0/0 = NaN when
            // the denominator population is empty — exactly the failure
            // `safe_div` exists to prevent.
            let v = est.estimate(q);
            (v * v) / v
        },
    );
    assert!(
        report.tally(Invariant::Finite).violations > 0,
        "harness failed to catch an injected NaN"
    );
    assert!(
        report.tally(Invariant::BatchIdentical).violations > 0,
        "batch comparison failed to catch the divergence"
    );
    // Failing cases are recorded with a minimized repro.
    let v = report
        .violations
        .iter()
        .find(|v| v.invariant == Invariant::Finite)
        .expect("a finite violation is recorded");
    assert!(!v.minimized.is_empty());
    assert!(v.estimate.is_nan());
}

/// A systematically biased formula (off by +1 everywhere) violates
/// Theorem 4.1 agreement on simple queries.
#[test]
fn injected_bias_is_caught_by_exactness_oracle() {
    let report = run_diff_with(
        &DiffConfig {
            seed: 0xD1FF,
            cases: 120,
        },
        |est, q| est.estimate(q) + 1.0,
    );
    assert!(
        report.tally(Invariant::ExactSimple).violations > 0,
        "exactness oracle failed to catch a biased estimate"
    );
}

/// A sign error is caught by `non-negative`, and a dropped clamp by
/// `tag-bound`.
#[test]
fn injected_sign_and_bound_errors_are_caught() {
    let negated = run_diff_with(
        &DiffConfig {
            seed: 0xD1FF,
            cases: 60,
        },
        |est, q| -est.estimate(q) - 1.0,
    );
    assert!(negated.tally(Invariant::NonNegative).violations > 0);

    let unclamped = run_diff_with(
        &DiffConfig {
            seed: 0xD1FF,
            cases: 60,
        },
        |est, q| est.estimate(q) * 1e6 + 1e6,
    );
    assert!(unclamped.tally(Invariant::TagBound).violations > 0);
}

/// Reports are reproducible: same seed, same run, bit-identical JSON.
#[test]
fn runs_are_deterministic_in_the_seed() {
    let cfg = DiffConfig {
        seed: 42,
        cases: 30,
    };
    let a = run_diff(&cfg);
    let b = run_diff(&cfg);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.total_checks(), b.total_checks());
}
