//! Property test: the battery passes for *every* seed, not just the
//! pinned ones — each proptest case is a full (small) differential run.

use proptest::prelude::*;

use xpe_diff::{run_diff, DiffConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn battery_passes_for_arbitrary_seeds(seed in 0u64..1_000_000) {
        let report = run_diff(&DiffConfig { seed, cases: 12 });
        prop_assert_eq!(
            report.total_violations(),
            0,
            "seed {} produced violations: {:#?}",
            seed,
            report.violations
        );
    }
}
