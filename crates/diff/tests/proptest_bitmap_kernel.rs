//! Property tests pinning the bit-parallel join kernel to the naive
//! reference.
//!
//! `path_join` is the paper's Figure 3 verbatim. `path_join_bitmap`
//! replaces the per-node `(Pid, f64)` candidate lists with dense
//! pid-index bitmaps, resolves containment edges through the adjacency
//! index's forward/reverse row bitmaps, pre-screens each semi-join with
//! the per-(tag,axis) candidate bitmap, and rebuilds the surviving lists
//! from the p-histogram at the end. Because the path join converges to a
//! greatest fixpoint, every correct kernel must agree **bit-for-bit** —
//! same pids, same order, same `f64` frequency bits. These tests assert
//! exactly that over random documents and random twig queries (both
//! axes, order constraints, and tags absent from the document), for the
//! screened kernel, the unscreened ablation, and the budgeted entry
//! point with an effectively unlimited budget.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::sync::Arc;

use xpe_core::{
    path_join, path_join_bitmap, path_join_bitmap_budgeted, path_join_bitmap_unscreened,
    path_join_cached, Budget, BudgetState, EstimationEngine, Estimator, JoinCache, JoinKernel,
    JoinScratch,
};
use xpe_datagen::{random_document, RandomDocConfig};
use xpe_diff::{random_query, tag_paths};
use xpe_pathid::{JoinIndexCache, Pid, RelationMaskCache};
use xpe_synopsis::{Summary, SummaryConfig};

/// One random `(document, queries)` scenario derived from a master seed —
/// the same sampling ranges the differential battery uses.
fn scenario(seed: u64) -> (Summary, Vec<xpe_xpath::Query>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let doc = random_document(&RandomDocConfig {
        seed: rng.gen::<u64>(),
        max_depth: rng.gen_range(2..=5),
        max_children: rng.gen_range(1..=4),
        tag_count: rng.gen_range(1..=3),
        layered: rng.gen_bool(0.5),
    });
    let summary = Summary::build(&doc, SummaryConfig::default());
    let paths = tag_paths(&doc);
    let queries = if paths.is_empty() {
        Vec::new()
    } else {
        (0..8).map(|_| random_query(&mut rng, &paths)).collect()
    };
    (summary, queries)
}

fn as_bits(lists: &[Vec<(Pid, f64)>]) -> Vec<Vec<(Pid, u64)>> {
    lists
        .iter()
        .map(|l| l.iter().map(|&(p, f)| (p, f.to_bits())).collect())
        .collect()
}

/// A deterministic document whose summary interner is wider than 4096
/// bits (> 64 `u64` words): 70 blocks of nested `m` elements, each with
/// 60 uniquely-tagged leaves, for 4200 distinct root-to-leaf paths. The
/// random scenarios above cap tag count and depth, so interner widths
/// stay far below the adjacency builders' 64-word support-signature
/// reach; this is the regime where the signature aliases word `j` to bit
/// `j % 64` and an unsound truncation once admitted false containment
/// pairs between pids living in low and high words.
fn wide_scenario() -> (Summary, Vec<xpe_xpath::Query>) {
    let mut leaf = 0usize;
    let mut block = |b: &mut xpe_xml::TreeBuilder| {
        b.begin_element("p");
        b.begin_element("q");
        for _ in 0..60 {
            b.begin_element(&format!("l{leaf}"));
            b.end_element().unwrap();
            leaf += 1;
        }
        b.end_element().unwrap();
        b.end_element().unwrap();
    };
    let mut b = xpe_xml::TreeBuilder::new();
    b.begin_element("r");
    // 69 x→p→q blocks: 4140 low-word encodings.
    for _ in 0..69 {
        b.begin_element("x");
        block(&mut b);
        b.end_element().unwrap();
    }
    // One x-less p→q block whose 60 encodings land entirely in words
    // ≥ 64 of the 4200-path id space. Under //x//p//q its q pid must be
    // pruned (no x ancestor, and no low-word p truly contains it) — a
    // truncated subset walk that ignores high words sees the pid as
    // contained in word-0/1 p pids and keeps it alive.
    block(&mut b);
    b.end_element().unwrap();
    let doc = b.finish().unwrap();
    let summary = Summary::build(&doc, SummaryConfig::default());
    assert!(
        summary.pids.width() > 4096,
        "scenario must exceed 64 words, got {} paths",
        summary.pids.width()
    );
    let queries = ["//x//p//q", "//p//q", "//p/q", "/r/x//q", "//q//l4185"]
        .iter()
        .map(|q| xpe_xpath::parse_query(q).expect(q))
        .collect();
    (summary, queries)
}

/// Asserts that every warm execution path — reused per-estimator flat
/// memos, cached prepared plans, and the engine's shared join cache at
/// 1/2/4 worker threads — reproduces the bit pattern of a completely
/// cold estimator, for every kernel. The cold reference rebuilds the
/// `Estimator` per query so no memo, plan, or cache entry survives
/// between queries; the warm runs then replay the same batch twice so
/// the second pass hits every cache the first pass filled.
fn check_warm_paths(summary: &Summary, queries: &[xpe_xpath::Query]) {
    for kernel in JoinKernel::ALL {
        let cold: Vec<u64> = queries
            .iter()
            .map(|q| {
                Estimator::new(summary)
                    .with_kernel(kernel)
                    .estimate(q)
                    .to_bits()
            })
            .collect();
        // One reused serial estimator: warm flat memos and adjacency
        // caches, but no join/plan cache in front of the kernel.
        let est = Estimator::new(summary).with_kernel(kernel);
        for pass in 0..2 {
            for (query, &want) in queries.iter().zip(&cold) {
                assert_eq!(
                    est.estimate(query).to_bits(),
                    want,
                    "reused estimator, kernel {kernel:?}, pass {pass}, {query}"
                );
            }
        }
        // Engines add the skeleton-keyed join cache and prepared-plan
        // reuse; parallel batches add per-worker scratch and memos.
        for threads in [1usize, 2, 4] {
            let engine = EstimationEngine::new(summary)
                .with_kernel(kernel)
                .with_threads(threads);
            for pass in 0..2 {
                let got: Vec<u64> = engine
                    .estimate_batch(queries)
                    .iter()
                    .map(|f| f.to_bits())
                    .collect();
                assert_eq!(
                    got, cold,
                    "engine batch, kernel {kernel:?}, threads {threads}, pass {pass}"
                );
            }
        }
    }
}

/// Warm plans and memos on the wide (> 64-word) interner: the flat
/// memo tables and packed adjacency keys must index correctly far past
/// the support-signature reach.
#[test]
fn warm_plans_are_bit_identical_on_wide_interner() {
    let (summary, queries) = wide_scenario();
    check_warm_paths(&summary, &queries);
}

/// Every kernel stays bit-identical to the naive oracle on an interner
/// wider than the 64-bit support signature — deterministic coverage the
/// random scenarios (tag_count ≤ 3, max_depth ≤ 5) can never reach.
#[test]
fn wide_interner_kernels_match_naive() {
    let (summary, queries) = wide_scenario();
    let index = JoinIndexCache::new();
    let mut scratch = JoinScratch::new();
    for query in &queries {
        let reference = as_bits(&path_join(&summary, query).lists);
        let bitmap = path_join_bitmap(&summary, query, &index, Some(&mut scratch));
        assert_eq!(as_bits(&bitmap.lists), reference, "bitmap {query}");
        scratch.recycle(bitmap);
        let bare = path_join_bitmap_unscreened(&summary, query, &index, None);
        assert_eq!(as_bits(&bare.lists), reference, "unscreened {query}");
        let indexed = path_join_cached(&summary, query, None, Some(&index), Some(&mut scratch));
        assert_eq!(as_bits(&indexed.lists), reference, "indexed {query}");
        scratch.recycle(indexed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bitmap kernel (candidate screens on) returns exactly the
    /// reference kernel's lists on every random document and query, with
    /// and without pooled scratch.
    #[test]
    fn bitmap_join_is_bit_identical_to_naive(seed in 0u64..1_000_000) {
        let (summary, queries) = scenario(seed);
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        for query in &queries {
            let reference = as_bits(&path_join(&summary, query).lists);
            let cold = path_join_bitmap(&summary, query, &index, None);
            prop_assert_eq!(&as_bits(&cold.lists), &reference, "cold, seed {}", seed);
            let pooled = path_join_bitmap(&summary, query, &index, Some(&mut scratch));
            prop_assert_eq!(&as_bits(&pooled.lists), &reference, "pooled, seed {}", seed);
            scratch.recycle(pooled);
        }
    }

    /// Ablation parity: skipping the per-(tag,axis) candidate-bitmap
    /// pre-screen does strictly more row tests but must never change the
    /// fixpoint.
    #[test]
    fn unscreened_bitmap_join_matches_naive(seed in 0u64..1_000_000) {
        let (summary, queries) = scenario(seed);
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        for query in &queries {
            let reference = as_bits(&path_join(&summary, query).lists);
            let bare = path_join_bitmap_unscreened(&summary, query, &index, Some(&mut scratch));
            prop_assert_eq!(&as_bits(&bare.lists), &reference, "seed {}", seed);
            scratch.recycle(bare);
        }
    }

    /// The budgeted entry point under a budget it can never exhaust is
    /// the same kernel: identical lists, no exhaustion, and a nonzero
    /// edge charge whenever the query has edges to sweep.
    #[test]
    fn bitmap_join_with_ample_budget_matches_naive(seed in 0u64..1_000_000) {
        let (summary, queries) = scenario(seed);
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        for query in &queries {
            let reference = as_bits(&path_join(&summary, query).lists);
            let budget = BudgetState::start(&Budget {
                deadline: None,
                max_join_edges: Some(1_000_000),
            });
            let got = path_join_bitmap_budgeted(
                &summary,
                query,
                &index,
                Some(&mut scratch),
                Some(&budget),
            );
            prop_assert!(budget.exhausted().is_none(), "seed {}", seed);
            prop_assert_eq!(&as_bits(&got.lists), &reference, "seed {}", seed);
            scratch.recycle(got);
        }
    }
}

/// Asserts the lazy-merge seam directly: several estimators sharing one
/// [`JoinCache`] through their private worker fronts, with merges forced
/// at adversarial points (after every single query, on another worker
/// than the one that ran it, and finally via drop), reproduce a bare
/// cache-free estimator bit for bit — and a fresh estimator served
/// purely from the merged shared cache does too.
fn check_lazy_merge(summary: &Summary, queries: &[xpe_xpath::Query]) {
    for kernel in JoinKernel::ALL {
        let bare: Vec<u64> = queries
            .iter()
            .map(|q| {
                Estimator::new(summary)
                    .with_kernel(kernel)
                    .estimate(q)
                    .to_bits()
            })
            .collect();
        for workers in [1usize, 2, 4] {
            let shared = Arc::new(JoinCache::with_capacity(64));
            let masks = Arc::new(RelationMaskCache::new());
            let adjacency = Arc::new(JoinIndexCache::new());
            let make = || {
                Estimator::with_caches(
                    summary,
                    Arc::clone(&masks),
                    Arc::clone(&adjacency),
                    Some(Arc::clone(&shared)),
                )
                .with_kernel(kernel)
            };
            let ests: Vec<Estimator> = (0..workers).map(|_| make()).collect();
            // Round-robin the queries across workers; after each query,
            // flush a *different* worker, so merge points interleave
            // with lookups in every order the engine could produce.
            for pass in 0..2 {
                for (i, (query, &want)) in queries.iter().zip(&bare).enumerate() {
                    let got = ests[i % workers].estimate(query).to_bits();
                    assert_eq!(
                        got, want,
                        "kernel {kernel:?}, workers {workers}, pass {pass}, {query}"
                    );
                    ests[(i + 1) % workers].flush_join_cache();
                }
            }
            // Drop-merge whatever is still pending, then serve a fresh
            // estimator entirely from the merged shared cache.
            drop(ests);
            let fresh = make();
            for (query, &want) in queries.iter().zip(&bare) {
                assert_eq!(
                    fresh.estimate(query).to_bits(),
                    want,
                    "post-merge fresh estimator, kernel {kernel:?}, workers {workers}, {query}"
                );
            }
        }
    }
}

/// Deterministic lazy-merge coverage on the wide (> 64-word) interner.
#[test]
fn lazy_merge_is_bit_identical_on_wide_interner() {
    let (summary, queries) = wide_scenario();
    check_lazy_merge(&summary, &queries);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Warm prepared plans, flat per-estimator memos, and the shared
    /// join cache never perturb a single estimate bit, for any kernel
    /// and 1/2/4 worker threads, on random documents and twig queries.
    #[test]
    fn warm_plans_and_memos_are_bit_identical(seed in 0u64..1_000_000) {
        let (summary, queries) = scenario(seed);
        check_warm_paths(&summary, &queries);
    }

    /// Worker-private join caches with lazy merge are pure speed: any
    /// interleaving of queries and merges across 1/2/4 workers, for
    /// every kernel, is bit-identical to the cache-free estimator.
    #[test]
    fn lazily_merged_worker_caches_are_bit_identical(seed in 0u64..1_000_000) {
        let (summary, queries) = scenario(seed);
        check_lazy_merge(&summary, &queries);
    }
}
