//! Fault-injection harness for the resilience layer.
//!
//! [`run_diff`](crate::run_diff) proves the estimator is *numerically*
//! trustworthy; this module proves it is *operationally* trustworthy: for
//! every fault class the serving layer claims to survive, seeded random
//! trials inject the fault and assert the contract — a **typed error** or
//! a **`Degraded`/`Rejected` outcome bounded by `[0, f(tag)]`** — never a
//! panic, never a hang, never silently-accepted corruption.
//!
//! | class | injection | required behavior |
//! |---|---|---|
//! | `bit-flip` | one bit of a persisted summary image flipped | `from_bytes` returns a typed [`LoadError`] |
//! | `truncation` | image cut to a strict prefix | typed `LoadError` |
//! | `version-flip` | version field rewritten to an unknown value | typed `LoadError` naming the version |
//! | `trailing-garbage` | random bytes appended | typed `LoadError` with the byte count |
//! | `worker-panic` | one batch query's estimate closure panics | that slot degrades, every other slot is bit-identical to serial |
//! | `deadline` | zero wall-clock budget | `Ok` or `Degraded(Deadline)`, value in `[0, f(tag)]` |
//! | `join-budget` | zero join-edge budget | `Ok` or `Degraded(JoinBudget)`, value in `[0, f(tag)]` |
//! | `oversized-query` | admission limit below the query size | `Rejected` exactly when the limit is exceeded |
//! | `truncated-request` | serve request line cut off before its newline | typed `protocol:truncated`, no panic |
//! | `oversized-line` | serve request line above the byte cap | typed `protocol:line-too-long`, no panic |
//! | `invalid-utf8-frame` | serve frame bytes that are not UTF-8 | typed `protocol:invalid-utf8`, connection may continue |
//! | `garbage-then-valid` | junk line pipelined before a valid request | typed recoverable error, then the valid request parses |
//! | `mid-request-disconnect` | transport resets mid-request | typed I/O error, no panic |
//!
//! The last five classes drive the `xpe serve` wire protocol
//! ([`FrameReader`](xpe_core::server::FrameReader) +
//! [`parse_request`](xpe_core::server::parse_request)) in-process, with no
//! sockets: the same code the daemon runs per connection is fed hostile
//! byte streams directly.
//!
//! Every trial also runs under `catch_unwind`, so an escaped panic in any
//! layer is itself recorded as a harness failure. The report renders to
//! JSON for CI's `fault-smoke` artifact, mirroring the diff report.

use std::io::{self, Cursor, Read};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xpe_core::server::{parse_request, FrameError, FrameReader, ProtocolError, Request};
use xpe_core::{Budget, DegradedReason, EstimateStatus, EstimationEngine, Estimator, QueryLimits};
use xpe_datagen::{random_document, RandomDocConfig};
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xpath::Query;

use crate::{json_escape, random_query, tag_paths};

/// The injected fault classes, in report order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// One bit of a persisted summary image is flipped.
    BitFlip,
    /// The image is truncated to a strict prefix.
    Truncation,
    /// The image's version field is rewritten to an unknown version.
    VersionFlip,
    /// Random bytes are appended after a well-formed image.
    TrailingGarbage,
    /// One query's estimate closure panics inside a batch.
    WorkerPanic,
    /// Estimation runs under an already-expired wall-clock deadline.
    Deadline,
    /// Estimation runs under a zero join-edge budget.
    JoinBudget,
    /// Admission limits are set below the query's size.
    OversizedQuery,
    /// A serve request line is cut off mid-frame (the peer died before
    /// sending its newline).
    TruncatedRequest,
    /// A serve request line exceeds the configured byte cap.
    OversizedLine,
    /// A serve frame carries bytes that are not valid UTF-8.
    InvalidUtf8Frame,
    /// A garbage line is pipelined ahead of a valid request on one
    /// connection.
    GarbageThenValid,
    /// The transport errors out (connection reset) mid-request.
    MidRequestDisconnect,
}

impl FaultClass {
    /// Every fault class, in report order.
    pub const ALL: [FaultClass; 13] = [
        FaultClass::BitFlip,
        FaultClass::Truncation,
        FaultClass::VersionFlip,
        FaultClass::TrailingGarbage,
        FaultClass::WorkerPanic,
        FaultClass::Deadline,
        FaultClass::JoinBudget,
        FaultClass::OversizedQuery,
        FaultClass::TruncatedRequest,
        FaultClass::OversizedLine,
        FaultClass::InvalidUtf8Frame,
        FaultClass::GarbageThenValid,
        FaultClass::MidRequestDisconnect,
    ];

    /// Stable machine-readable name (used in the JSON report).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::BitFlip => "bit-flip",
            FaultClass::Truncation => "truncation",
            FaultClass::VersionFlip => "version-flip",
            FaultClass::TrailingGarbage => "trailing-garbage",
            FaultClass::WorkerPanic => "worker-panic",
            FaultClass::Deadline => "deadline",
            FaultClass::JoinBudget => "join-budget",
            FaultClass::OversizedQuery => "oversized-query",
            FaultClass::TruncatedRequest => "truncated-request",
            FaultClass::OversizedLine => "oversized-line",
            FaultClass::InvalidUtf8Frame => "invalid-utf8-frame",
            FaultClass::GarbageThenValid => "garbage-then-valid",
            FaultClass::MidRequestDisconnect => "mid-request-disconnect",
        }
    }

    fn idx(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("in ALL")
    }
}

/// Harness parameters.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Master seed; equal plans replay identical runs.
    pub seed: u64,
    /// Trials per fault class.
    pub cases_per_class: u64,
    /// Suppress the default panic hook while injecting panics, so the
    /// expected caught panics do not flood stderr with backtrace banners.
    pub quiet: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            cases_per_class: 25,
            quiet: true,
        }
    }
}

/// Per-class trial counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultTally {
    /// Trials run.
    pub cases: u64,
    /// Trials where the fault surfaced as a typed load/decode error.
    pub typed_errors: u64,
    /// Trials that produced `Degraded` outcomes (all value-bounded).
    pub degraded: u64,
    /// Trials that produced `Rejected` outcomes.
    pub rejected: u64,
    /// Trials where the contract was broken (panic escaped, corruption
    /// accepted, value out of bounds, wrong status).
    pub failures: u64,
}

/// One broken-contract trial, with enough context to replay it.
#[derive(Clone, Debug)]
pub struct FaultFailure {
    /// The fault class under injection.
    pub class: FaultClass,
    /// Trial index within the class (0-based).
    pub case: u64,
    /// What went wrong.
    pub detail: String,
}

/// Outcome of a fault-injection run.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Seed the run used.
    pub seed: u64,
    /// Trials per class the run executed.
    pub cases_per_class: u64,
    /// Counters, indexed as [`FaultClass::ALL`].
    pub tallies: [FaultTally; 13],
    /// Broken-contract trials (the run passes iff this is empty).
    pub failures: Vec<FaultFailure>,
}

impl FaultReport {
    /// Counters for one class.
    pub fn tally(&self, class: FaultClass) -> FaultTally {
        self.tallies[class.idx()]
    }

    /// Total broken-contract trials across every class.
    pub fn total_failures(&self) -> u64 {
        self.tallies.iter().map(|t| t.failures).sum()
    }

    /// Whether every trial honored the resilience contract.
    pub fn passed(&self) -> bool {
        self.total_failures() == 0
    }

    /// Machine-readable JSON rendering for the CI artifact (hand-rolled,
    /// like [`DiffReport::to_json`](crate::DiffReport::to_json)).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"tool\": \"xpe-faults\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"cases_per_class\": {},\n",
            self.cases_per_class
        ));
        s.push_str(&format!(
            "  \"total_failures\": {},\n",
            self.total_failures()
        ));
        s.push_str(&format!("  \"passed\": {},\n", self.passed()));
        s.push_str("  \"classes\": [\n");
        for (i, class) in FaultClass::ALL.iter().enumerate() {
            let t = self.tally(*class);
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"cases\": {}, \"typed_errors\": {}, \
                 \"degraded\": {}, \"rejected\": {}, \"failures\": {}}}{}\n",
                class.name(),
                t.cases,
                t.typed_errors,
                t.degraded,
                t.rejected,
                t.failures,
                if i + 1 < FaultClass::ALL.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"class\": \"{}\", \"case\": {}, \"detail\": \"{}\"}}{}\n",
                f.class.name(),
                f.case,
                json_escape(&f.detail),
                if i + 1 < self.failures.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// At most this many failures keep their full record; tallies count all.
const MAX_RECORDED: usize = 50;

/// One trial's world: a random document's summary and query workload.
struct Trial {
    summary: Summary,
    queries: Vec<Query>,
}

fn make_trial(rng: &mut StdRng, queries: usize) -> Trial {
    // Regenerate until the document has at least one element path; tiny
    // configs occasionally produce a root-only document.
    loop {
        let doc = random_document(&RandomDocConfig {
            seed: rng.gen::<u64>(),
            max_depth: rng.gen_range(2..=5),
            max_children: rng.gen_range(1..=4),
            tag_count: rng.gen_range(1..=3),
            layered: rng.gen_bool(0.5),
        });
        let paths = tag_paths(&doc);
        if paths.is_empty() {
            continue;
        }
        let queries = (0..queries).map(|_| random_query(rng, &paths)).collect();
        return Trial {
            summary: Summary::build(&doc, SummaryConfig::default()),
            queries,
        };
    }
}

/// The `[0, f(tag)]` bound check every degraded/rejected value must obey.
fn in_tag_bound(summary: &Summary, q: &Query, value: f64) -> bool {
    let cap = summary.tag_total(&q.node(q.target()).tag);
    value.is_finite() && value >= 0.0 && value <= cap * (1.0 + 1e-9) + 1e-9
}

/// Runs every fault class of `plan` and collects the report.
pub fn run_faults(plan: &FaultPlan) -> FaultReport {
    let mut report = FaultReport {
        seed: plan.seed,
        cases_per_class: plan.cases_per_class,
        tallies: [FaultTally::default(); 13],
        failures: Vec::new(),
    };
    let prev_hook = plan.quiet.then(std::panic::take_hook);
    if prev_hook.is_some() {
        std::panic::set_hook(Box::new(|_| {}));
    }
    for class in FaultClass::ALL {
        // Independent stream per class: adding cases to one class never
        // shifts another class's trials.
        let mut rng =
            StdRng::seed_from_u64(plan.seed ^ 0x4641_554C_5453_u64 ^ ((class.idx() as u64) << 56));
        for case in 0..plan.cases_per_class {
            run_one(&mut report, class, case, &mut rng);
        }
    }
    if let Some(hook) = prev_hook {
        std::panic::set_hook(hook);
    }
    report
}

fn fail(report: &mut FaultReport, class: FaultClass, case: u64, detail: String) {
    report.tallies[class.idx()].failures += 1;
    if report.failures.len() < MAX_RECORDED {
        report.failures.push(FaultFailure {
            class,
            case,
            detail,
        });
    }
}

fn run_one(report: &mut FaultReport, class: FaultClass, case: u64, rng: &mut StdRng) {
    report.tallies[class.idx()].cases += 1;
    match class {
        FaultClass::BitFlip
        | FaultClass::Truncation
        | FaultClass::VersionFlip
        | FaultClass::TrailingGarbage => run_integrity(report, class, case, rng),
        FaultClass::WorkerPanic => run_worker_panic(report, case, rng),
        FaultClass::Deadline => run_budget(
            report,
            FaultClass::Deadline,
            case,
            rng,
            Budget {
                deadline: Some(Duration::ZERO),
                max_join_edges: None,
            },
        ),
        FaultClass::JoinBudget => run_budget(
            report,
            FaultClass::JoinBudget,
            case,
            rng,
            Budget {
                deadline: None,
                max_join_edges: Some(0),
            },
        ),
        FaultClass::OversizedQuery => run_oversized(report, case, rng),
        FaultClass::TruncatedRequest
        | FaultClass::OversizedLine
        | FaultClass::InvalidUtf8Frame
        | FaultClass::GarbageThenValid
        | FaultClass::MidRequestDisconnect => run_protocol(report, class, case, rng),
    }
}

/// Integrity classes: corrupt a persisted image and require a typed
/// [`LoadError`](xpe_synopsis::LoadError) — decoding must neither panic
/// nor accept the corruption.
fn run_integrity(report: &mut FaultReport, class: FaultClass, case: u64, rng: &mut StdRng) {
    let trial = make_trial(rng, 0);
    let mut bytes = trial.summary.to_bytes();
    match class {
        FaultClass::BitFlip => {
            let byte = rng.gen_range(0..bytes.len());
            bytes[byte] ^= 1 << rng.gen_range(0..8u32);
        }
        FaultClass::Truncation => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
        }
        FaultClass::VersionFlip => {
            // Versions 1 and 2 are real; anything else must be refused.
            // The version field is the little-endian u32 after the magic.
            let bogus: u32 = loop {
                let v = rng.gen_range(0..=255u32);
                if v != 1 && v != 2 {
                    break v;
                }
            };
            bytes[4..8].copy_from_slice(&bogus.to_le_bytes());
        }
        FaultClass::TrailingGarbage => {
            for _ in 0..rng.gen_range(1..=16usize) {
                bytes.push(rng.gen::<u8>());
            }
        }
        _ => unreachable!("integrity classes only"),
    }
    match catch_unwind(AssertUnwindSafe(|| Summary::from_bytes(&bytes))) {
        Ok(Err(_)) => report.tallies[class.idx()].typed_errors += 1,
        Ok(Ok(_)) => fail(
            report,
            class,
            case,
            "corrupted image decoded without an error".to_owned(),
        ),
        Err(_) => fail(
            report,
            class,
            case,
            "decoding a corrupted image panicked".to_owned(),
        ),
    }
}

/// Worker-panic class: poison one query of a batch and require exactly
/// that slot to degrade while every other slot stays bit-identical to the
/// serial estimates — and no panic escapes the batch call.
fn run_worker_panic(report: &mut FaultReport, case: u64, rng: &mut StdRng) {
    let trial = make_trial(rng, 8);
    let poisoned = rng.gen_range(0..trial.queries.len());
    let threads = rng.gen_range(1..=4usize);
    let engine = EstimationEngine::new(&trial.summary).with_threads(threads);
    let serial: Vec<f64> = {
        let est = Estimator::new(&trial.summary);
        trial.queries.iter().map(|q| est.estimate(q)).collect()
    };
    let queries = &trial.queries;
    let outcomes = catch_unwind(AssertUnwindSafe(|| {
        engine.try_estimate_batch_with(queries, |est, q| {
            if std::ptr::eq(q, &queries[poisoned]) {
                panic!("injected worker panic");
            }
            est.try_estimate(q, &QueryLimits::unlimited(), &Budget::unlimited())
        })
    }));
    let outcomes = match outcomes {
        Ok(o) => o,
        Err(_) => {
            fail(
                report,
                FaultClass::WorkerPanic,
                case,
                "a panic escaped try_estimate_batch".to_owned(),
            );
            return;
        }
    };
    if outcomes.len() != queries.len() {
        fail(
            report,
            FaultClass::WorkerPanic,
            case,
            format!("{} outcomes for {} queries", outcomes.len(), queries.len()),
        );
        return;
    }
    let mut ok = true;
    for (i, out) in outcomes.iter().enumerate() {
        if i == poisoned {
            let degraded_panic = matches!(
                out.status,
                EstimateStatus::Degraded {
                    reason: DegradedReason::Panicked { .. }
                }
            );
            if !degraded_panic || !in_tag_bound(&trial.summary, &queries[i], out.value) {
                fail(
                    report,
                    FaultClass::WorkerPanic,
                    case,
                    format!("poisoned slot {i} returned {out:?}"),
                );
                ok = false;
            }
        } else if out.status != EstimateStatus::Ok || out.value.to_bits() != serial[i].to_bits() {
            fail(
                report,
                FaultClass::WorkerPanic,
                case,
                format!("healthy slot {i} returned {:?} (serial {})", out, serial[i]),
            );
            ok = false;
        }
    }
    if ok {
        report.tallies[FaultClass::WorkerPanic.idx()].degraded += 1;
    }
}

/// Budget classes: estimation under an exhausted budget must return `Ok`
/// (for queries cheap enough to never charge the budget) or the matching
/// `Degraded` reason, always inside `[0, f(tag)]`, and never panic.
fn run_budget(
    report: &mut FaultReport,
    class: FaultClass,
    case: u64,
    rng: &mut StdRng,
    budget: Budget,
) {
    let trial = make_trial(rng, 6);
    let est = Estimator::new(&trial.summary);
    for q in &trial.queries {
        let out = match catch_unwind(AssertUnwindSafe(|| {
            est.try_estimate(q, &QueryLimits::unlimited(), &budget)
        })) {
            Ok(out) => out,
            Err(_) => {
                fail(
                    report,
                    class,
                    case,
                    "budgeted estimation panicked".to_owned(),
                );
                continue;
            }
        };
        let expected_reason = match class {
            FaultClass::Deadline => DegradedReason::Deadline,
            _ => DegradedReason::JoinBudget,
        };
        match &out.status {
            EstimateStatus::Ok => {}
            EstimateStatus::Degraded { reason } if *reason == expected_reason => {
                report.tallies[class.idx()].degraded += 1;
            }
            other => {
                fail(report, class, case, format!("unexpected status {other:?}"));
                continue;
            }
        }
        if !in_tag_bound(&trial.summary, q, out.value) {
            fail(
                report,
                class,
                case,
                format!("value {} escapes [0, f(tag)] for {}", out.value, q),
            );
        }
    }
}

/// Oversized-query class: with admission limits in force, `Rejected` must
/// fire exactly on the queries that exceed them, with bounded values.
fn run_oversized(report: &mut FaultReport, case: u64, rng: &mut StdRng) {
    let trial = make_trial(rng, 6);
    let est = Estimator::new(&trial.summary);
    let max_nodes = rng.gen_range(1..=2usize);
    let limits = QueryLimits {
        max_nodes: Some(max_nodes),
        ..QueryLimits::unlimited()
    };
    for q in &trial.queries {
        let out = match catch_unwind(AssertUnwindSafe(|| {
            est.try_estimate(q, &limits, &Budget::unlimited())
        })) {
            Ok(out) => out,
            Err(_) => {
                fail(
                    report,
                    FaultClass::OversizedQuery,
                    case,
                    "admission-checked estimation panicked".to_owned(),
                );
                continue;
            }
        };
        let should_reject = q.len() > max_nodes;
        match (&out.status, should_reject) {
            (EstimateStatus::Rejected { .. }, true) => {
                report.tallies[FaultClass::OversizedQuery.idx()].rejected += 1;
            }
            (EstimateStatus::Ok, false) => {}
            (status, _) => {
                fail(
                    report,
                    FaultClass::OversizedQuery,
                    case,
                    format!(
                        "query with {} nodes under limit {max_nodes} returned {status:?}",
                        q.len()
                    ),
                );
                continue;
            }
        }
        if !in_tag_bound(&trial.summary, q, out.value) {
            fail(
                report,
                FaultClass::OversizedQuery,
                case,
                format!("value {} escapes [0, f(tag)] for {}", out.value, q),
            );
        }
    }
}

/// Network-protocol classes: feed the serve framing and request parser a
/// hostile byte stream and require the typed error the daemon's contract
/// promises — never a panic, never a silently-accepted frame.
fn run_protocol(report: &mut FaultReport, class: FaultClass, case: u64, rng: &mut StdRng) {
    let outcome = catch_unwind(AssertUnwindSafe(|| protocol_trial(class, rng)));
    match outcome {
        Ok(Ok(())) => report.tallies[class.idx()].typed_errors += 1,
        Ok(Err(detail)) => fail(report, class, case, detail),
        Err(_) => fail(report, class, case, "protocol handling panicked".to_owned()),
    }
}

/// A syntactically valid wire query ("/A//B/..."), built without a
/// document — these trials exercise framing, not estimation.
fn random_wire_query(rng: &mut StdRng) -> String {
    let mut q = String::new();
    for i in 0..rng.gen_range(1..=4usize) {
        q.push_str(if i > 0 || rng.gen_bool(0.5) {
            "//"
        } else {
            "/"
        });
        q.push((b'A' + rng.gen_range(0..4u8)) as char);
    }
    q
}

/// A full, well-formed `estimate` request line (newline included).
fn wire_request_line(query: &str) -> String {
    format!("{{\"op\": \"estimate\", \"query\": \"{query}\"}}\n")
}

/// A transport that yields `data` in small reads, then fails with
/// `ConnectionReset` — a peer that died mid-request.
struct ResetAfter {
    data: Vec<u8>,
    pos: usize,
}

impl Read for ResetAfter {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "peer reset the connection",
            ));
        }
        // Drip at most 3 bytes per read so the reset lands mid-frame.
        let n = 3.min(self.data.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// One protocol trial; `Ok(())` means the contract held.
fn protocol_trial(class: FaultClass, rng: &mut StdRng) -> Result<(), String> {
    const CAP: usize = 64 * 1024;
    match class {
        FaultClass::TruncatedRequest => {
            // A valid request cut to a strict prefix of its line — the
            // newline never arrives, so EOF must surface as a typed
            // (fatal) truncation, not an empty or partial frame.
            let line = wire_request_line(&random_wire_query(rng));
            let cut = rng.gen_range(1..line.len());
            let mut frames = FrameReader::new(Cursor::new(line.as_bytes()[..cut].to_vec()), CAP);
            match frames.read_frame() {
                Err(FrameError::Protocol(e @ ProtocolError::TruncatedFrame { .. })) => {
                    if e.is_recoverable() {
                        return Err("truncated frame reported as recoverable".to_owned());
                    }
                    Ok(())
                }
                Err(other) => Err(format!("truncated stream produced {other:?}")),
                Ok(frame) => Err(format!("truncated stream yielded frame {frame:?}")),
            }
        }
        FaultClass::OversizedLine => {
            // The line must span multiple transport reads before its
            // newline, so the reader's buffer crosses the cap; the typed
            // error names the configured limit.
            let cap = rng.gen_range(32..=256usize);
            let len = 4096 + rng.gen_range(1..=4096usize);
            let mut bytes = vec![b'x'; len];
            bytes.push(b'\n');
            let mut frames = FrameReader::new(Cursor::new(bytes), cap);
            match frames.read_frame() {
                Err(FrameError::Protocol(e @ ProtocolError::LineTooLong { limit })) => {
                    if limit != cap {
                        return Err(format!("error names limit {limit}, configured {cap}"));
                    }
                    if e.is_recoverable() {
                        return Err("oversized line reported as recoverable".to_owned());
                    }
                    Ok(())
                }
                Err(other) => Err(format!("oversized line produced {other:?}")),
                Ok(frame) => Err(format!(
                    "oversized line yielded frame of {:?} bytes",
                    frame.map(|f| f.len())
                )),
            }
        }
        FaultClass::InvalidUtf8Frame => {
            // Framing is byte-oriented and must deliver the line; the
            // request parser must refuse it with a recoverable typed
            // error (the connection survives a single bad frame).
            let mut bytes = b"{\"op\": \"estimate\", \"query\": \"".to_vec();
            for _ in 0..rng.gen_range(1..=8usize) {
                bytes.push(rng.gen_range(0xF8..=0xFFu8));
            }
            bytes.extend_from_slice(b"\"}\n");
            let mut frames = FrameReader::new(Cursor::new(bytes), CAP);
            let frame = match frames.read_frame() {
                Ok(Some(frame)) => frame,
                other => return Err(format!("framing rejected the bytes early: {other:?}")),
            };
            match parse_request(&frame) {
                Err(e @ ProtocolError::InvalidUtf8) => {
                    if !e.is_recoverable() {
                        return Err("invalid UTF-8 reported as fatal".to_owned());
                    }
                    Ok(())
                }
                Err(other) => Err(format!("expected invalid-utf8, got {other:?}")),
                Ok(req) => Err(format!("invalid UTF-8 parsed as {req:?}")),
            }
        }
        FaultClass::GarbageThenValid => {
            // Pipelining: one junk line then a valid request on the same
            // stream. The junk must fail with a *recoverable* typed error
            // and the next frame must still parse to the exact request.
            let query = random_wire_query(rng);
            let garbage = match rng.gen_range(0..3u8) {
                0 => format!("!@#$ not json {}", rng.gen::<u32>()),
                1 => "[1, 2, 3]".to_owned(),
                _ => "{\"op\": \"frobnicate\"}".to_owned(),
            };
            let wire = format!("{garbage}\n{}", wire_request_line(&query));
            let mut frames = FrameReader::new(Cursor::new(wire.into_bytes()), CAP);
            let junk = match frames.read_frame() {
                Ok(Some(frame)) => frame,
                other => return Err(format!("junk line failed to frame: {other:?}")),
            };
            match parse_request(&junk) {
                Err(e) if e.is_recoverable() => {}
                Err(e) => return Err(format!("junk raised fatal {:?}", e.code())),
                Ok(req) => return Err(format!("junk parsed as {req:?}")),
            }
            match frames.read_frame() {
                Ok(Some(frame)) => match parse_request(&frame) {
                    Ok(Request::Estimate { query: q }) if q == query => Ok(()),
                    other => Err(format!("pipelined request parsed as {other:?}")),
                },
                other => Err(format!("pipelined frame lost after junk: {other:?}")),
            }
        }
        FaultClass::MidRequestDisconnect => {
            // The transport itself errors partway through a request; the
            // reader must surface the I/O error typed, never panic or
            // fabricate a frame.
            let line = wire_request_line(&random_wire_query(rng));
            let cut = rng.gen_range(0..line.len());
            let mut frames = FrameReader::new(
                ResetAfter {
                    data: line.as_bytes()[..cut].to_vec(),
                    pos: 0,
                },
                CAP,
            );
            match frames.read_frame() {
                Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::ConnectionReset => Ok(()),
                Err(other) => Err(format!("disconnect produced {other:?}")),
                Ok(frame) => Err(format!("disconnect yielded frame {frame:?}")),
            }
        }
        _ => unreachable!("protocol classes only"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_class_honors_the_contract() {
        let report = run_faults(&FaultPlan {
            seed: 0x00C0_FFEE,
            cases_per_class: 8,
            quiet: true,
        });
        assert!(
            report.passed(),
            "contract failures:\n{:#?}",
            report.failures
        );
        for class in FaultClass::ALL {
            assert_eq!(report.tally(class).cases, 8, "{}", class.name());
        }
        // The injections actually bit: integrity classes saw typed
        // errors, the panic class saw isolation, budgets degraded, and
        // oversized queries were rejected.
        for class in [
            FaultClass::BitFlip,
            FaultClass::Truncation,
            FaultClass::VersionFlip,
            FaultClass::TrailingGarbage,
        ] {
            assert!(
                report.tally(class).typed_errors > 0,
                "{} never produced a typed error",
                class.name()
            );
        }
        assert!(report.tally(FaultClass::WorkerPanic).degraded > 0);
        assert!(report.tally(FaultClass::Deadline).degraded > 0);
        assert!(report.tally(FaultClass::JoinBudget).degraded > 0);
        assert!(report.tally(FaultClass::OversizedQuery).rejected > 0);
        // Network classes: every trial must end in the promised typed
        // error (the contract check inside each trial already verified
        // which error and its recoverability).
        for class in [
            FaultClass::TruncatedRequest,
            FaultClass::OversizedLine,
            FaultClass::InvalidUtf8Frame,
            FaultClass::GarbageThenValid,
            FaultClass::MidRequestDisconnect,
        ] {
            assert_eq!(
                report.tally(class).typed_errors,
                8,
                "{} missed typed errors",
                class.name()
            );
        }
    }

    #[test]
    fn report_replays_deterministically() {
        let plan = FaultPlan {
            seed: 7,
            cases_per_class: 4,
            quiet: true,
        };
        let a = run_faults(&plan);
        let b = run_faults(&plan);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn fault_json_is_well_formed() {
        let report = run_faults(&FaultPlan {
            seed: 3,
            cases_per_class: 2,
            quiet: true,
        });
        let json = report.to_json();
        assert!(json.contains("\"tool\": \"xpe-faults\""));
        assert!(json.contains("\"worker-panic\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn harness_detects_a_broken_contract() {
        // Feed the integrity checker an image that "decodes" corruption:
        // simulate by checking that an *uncorrupted* image would be
        // flagged — i.e., prove `fail` wiring by invoking the checker on
        // a healthy summary and asserting no failure is (wrongly) logged,
        // then force a failure record and see it in the JSON.
        let mut report = FaultReport {
            seed: 0,
            cases_per_class: 0,
            tallies: [FaultTally::default(); 13],
            failures: Vec::new(),
        };
        fail(
            &mut report,
            FaultClass::BitFlip,
            3,
            "synthetic failure".to_owned(),
        );
        assert!(!report.passed());
        assert!(report.to_json().contains("synthetic failure"));
    }
}
