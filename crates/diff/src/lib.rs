//! Differential testing of the estimator against the exact evaluator.
//!
//! The estimator is *approximate by design*, which makes its bugs
//! insidious: a sign flip, an unguarded `0/0`, or a dropped join predicate
//! does not crash anything — it just quietly corrupts every experiment
//! figure downstream. The defense is an oracle the estimator must agree
//! with *where agreement is provable*, plus numeric invariants that hold
//! for **every** estimate:
//!
//! | invariant | statement |
//! |---|---|
//! | `finite` | estimates are never `NaN` or `±inf` |
//! | `non-negative` | estimates are never below zero |
//! | `tag-bound` | an estimate never exceeds the target tag's total frequency |
//! | `exact-simple` | simple path queries on non-recursive documents at variance 0 match the exact evaluator (Theorem 4.1) |
//! | `batch-identical` | [`EstimationEngine::estimate_batch`] is bit-identical to serial estimation |
//!
//! [`run_diff`] drives the battery over seeded random documents
//! ([`xpe_datagen::random_document`]) and random positive-and-negative
//! twig queries spanning child/descendant edges and all four order axes.
//! Failures are shrunk to a minimal failing query and collected into a
//! [`DiffReport`] with per-invariant tallies and a machine-readable JSON
//! rendering (`xpe diff --json`, archived by CI's `diff-smoke` step).
//!
//! [`run_diff_with`] accepts the estimate function as a closure so tests
//! can *inject faults* (e.g. reintroduce an unguarded division) and prove
//! the harness catches them — a differential harness that has never seen
//! a failure is itself untested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;

pub use faults::{run_faults, FaultClass, FaultFailure, FaultPlan, FaultReport, FaultTally};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xpe_core::{EstimationEngine, Estimator};
use xpe_datagen::{random_document, RandomDocConfig};
use xpe_pathid::Labeling;
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xml::nav::DocOrder;
use xpe_xml::Document;
use xpe_xpath::{
    Axis, Evaluator, OrderConstraint, OrderKind, Query, QueryEdge, QueryNode, QueryNodeId,
};

/// Tolerance for the `exact-simple` comparison: Theorem 4.1 equality is
/// over real arithmetic; the implementation accumulates f64 rounding.
const EXACT_TOL: f64 = 1e-6;

/// At most this many violations keep their full repro record; the tallies
/// count every one regardless.
const MAX_RECORDED: usize = 50;

/// Queries generated per random document (a fresh document costs a
/// labeling, two summaries and an evaluator, so cases are batched).
const QUERIES_PER_DOC: u64 = 6;

/// Harness parameters.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Master seed; equal configs replay identical runs.
    pub seed: u64,
    /// Number of query cases. Each case is checked against two summaries
    /// (lossless and coarse), so the check count is a multiple of this.
    pub cases: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            seed: 0,
            cases: 100,
        }
    }
}

/// The invariants the harness checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Estimates are finite (no `NaN`, no `±inf`).
    Finite,
    /// Estimates are `≥ 0`.
    NonNegative,
    /// Estimates never exceed the target tag's total frequency.
    TagBound,
    /// Theorem 4.1: simple path queries on non-recursive documents at
    /// variance 0 equal the exact selectivity.
    ExactSimple,
    /// Batched estimation is bit-identical to serial estimation.
    BatchIdentical,
}

impl Invariant {
    /// Every invariant, in report order.
    pub const ALL: [Invariant; 5] = [
        Invariant::Finite,
        Invariant::NonNegative,
        Invariant::TagBound,
        Invariant::ExactSimple,
        Invariant::BatchIdentical,
    ];

    /// Stable machine-readable name (used in the JSON report).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::Finite => "finite",
            Invariant::NonNegative => "non-negative",
            Invariant::TagBound => "tag-bound",
            Invariant::ExactSimple => "exact-simple",
            Invariant::BatchIdentical => "batch-identical",
        }
    }

    fn idx(self) -> usize {
        match self {
            Invariant::Finite => 0,
            Invariant::NonNegative => 1,
            Invariant::TagBound => 2,
            Invariant::ExactSimple => 3,
            Invariant::BatchIdentical => 4,
        }
    }
}

/// One invariant failure, with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: Invariant,
    /// Global case index (0-based) at which it failed.
    pub case: u64,
    /// Seed of the [`RandomDocConfig`] that generated the document.
    pub doc_seed: u64,
    /// Whether the document was layered (non-recursive by construction).
    pub layered: bool,
    /// p-histogram variance of the summary in use.
    pub p_variance: f64,
    /// The failing query, in the paper's XPath notation.
    pub query: String,
    /// The smallest derived query that still fails the same invariant.
    pub minimized: String,
    /// The offending estimate.
    pub estimate: f64,
    /// The exact selectivity of the original query.
    pub exact: u64,
    /// Human-readable description of the failure.
    pub detail: String,
}

/// Per-invariant check/violation counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct InvariantTally {
    /// Times the invariant was evaluated.
    pub checks: u64,
    /// Times it failed.
    pub violations: u64,
}

/// Outcome of a differential run.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Seed the run used.
    pub seed: u64,
    /// Cases the run executed.
    pub cases: u64,
    /// Counters, indexed as [`Invariant::ALL`].
    pub tallies: [InvariantTally; 5],
    /// Recorded failures (capped at an internal limit; tallies count all).
    pub violations: Vec<Violation>,
}

impl DiffReport {
    fn new(cfg: &DiffConfig) -> Self {
        DiffReport {
            seed: cfg.seed,
            cases: cfg.cases,
            tallies: [InvariantTally::default(); 5],
            violations: Vec::new(),
        }
    }

    /// Counters for one invariant.
    pub fn tally(&self, inv: Invariant) -> InvariantTally {
        self.tallies[inv.idx()]
    }

    /// Total number of invariant evaluations.
    pub fn total_checks(&self) -> u64 {
        self.tallies.iter().map(|t| t.checks).sum()
    }

    /// Total number of failures (including unrecorded ones).
    pub fn total_violations(&self) -> u64 {
        self.tallies.iter().map(|t| t.violations).sum()
    }

    fn record(&mut self, inv: Invariant, make: impl FnOnce() -> Violation) {
        self.tallies[inv.idx()].violations += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(make());
        }
    }

    /// Machine-readable JSON rendering (hand-rolled: the workspace has no
    /// serialization dependency). Non-finite estimates are encoded as
    /// strings, since JSON has no `NaN`/`inf` literals.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"tool\": \"xpe-diff\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"cases\": {},\n", self.cases));
        s.push_str(&format!("  \"total_checks\": {},\n", self.total_checks()));
        s.push_str(&format!(
            "  \"total_violations\": {},\n",
            self.total_violations()
        ));
        s.push_str("  \"invariants\": [\n");
        for (i, inv) in Invariant::ALL.iter().enumerate() {
            let t = self.tally(*inv);
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"checks\": {}, \"violations\": {}}}{}\n",
                inv.name(),
                t.checks,
                t.violations,
                if i + 1 < Invariant::ALL.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"invariant\": \"{}\", \"case\": {}, \"doc_seed\": {}, \
                 \"layered\": {}, \"p_variance\": {}, \"query\": \"{}\", \
                 \"minimized\": \"{}\", \"estimate\": {}, \"exact\": {}, \
                 \"detail\": \"{}\"}}{}\n",
                v.invariant.name(),
                v.case,
                v.doc_seed,
                v.layered,
                json_num(v.p_variance),
                json_escape(&v.query),
                json_escape(&v.minimized),
                json_num(v.estimate),
                v.exact,
                json_escape(&v.detail),
                if i + 1 < self.violations.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs the full battery with the production estimator.
pub fn run_diff(cfg: &DiffConfig) -> DiffReport {
    run_diff_with(cfg, |est, q| est.estimate(q))
}

/// Runs the battery with a caller-supplied estimate function.
///
/// Production callers use [`run_diff`]; tests inject faulty closures here
/// to demonstrate that each invariant actually detects the failure class
/// it exists for.
pub fn run_diff_with<F>(cfg: &DiffConfig, est_fn: F) -> DiffReport
where
    F: Fn(&Estimator<'_>, &Query) -> f64,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4449_4646_5845_5245);
    let mut report = DiffReport::new(cfg);
    let mut case = 0u64;

    while case < cfg.cases {
        let layered = rng.gen_bool(0.5);
        let doc_cfg = RandomDocConfig {
            seed: rng.gen::<u64>(),
            max_depth: rng.gen_range(2..=5),
            max_children: rng.gen_range(1..=4),
            tag_count: rng.gen_range(1..=3),
            layered,
        };
        let doc = random_document(&doc_cfg);
        let order = DocOrder::new(&doc);
        let evaluator = Evaluator::new(&doc, &order);
        let paths = tag_paths(&doc);
        if paths.is_empty() {
            continue;
        }

        // One lossless summary (Theorem 4.1 territory) and one coarse
        // summary (the invariants must survive histogram approximation).
        let summaries = [
            Summary::build(&doc, SummaryConfig::default()),
            Summary::build(
                &doc,
                SummaryConfig {
                    p_variance: 2.0,
                    o_variance: 4.0,
                    ..SummaryConfig::default()
                },
            ),
        ];

        let n = QUERIES_PER_DOC.min(cfg.cases - case);
        let queries: Vec<Query> = (0..n).map(|_| random_query(&mut rng, &paths)).collect();

        for summary in &summaries {
            let est = Estimator::new(summary);
            let mut serial = Vec::with_capacity(queries.len());
            for (qi, q) in queries.iter().enumerate() {
                let case_id = case + qi as u64;
                let estimate = est_fn(&est, q);
                let exact = evaluator.selectivity(q);
                serial.push(estimate);
                check_pointwise(
                    &mut report,
                    &est,
                    &est_fn,
                    &evaluator,
                    summary,
                    &doc_cfg,
                    case_id,
                    q,
                    estimate,
                    exact,
                );
            }

            // Batch path must agree with the serial path bit-for-bit:
            // estimates are pure functions of (summary, query), so any
            // divergence means nondeterminism or state leakage.
            let engine = EstimationEngine::new(summary).with_threads(2);
            let batch = engine.estimate_batch(&queries);
            for (qi, (s, b)) in serial.iter().zip(&batch).enumerate() {
                report.tallies[Invariant::BatchIdentical.idx()].checks += 1;
                if s.to_bits() != b.to_bits() {
                    let q = &queries[qi];
                    let exact = evaluator.selectivity(q);
                    report.record(Invariant::BatchIdentical, || Violation {
                        invariant: Invariant::BatchIdentical,
                        case: case + qi as u64,
                        doc_seed: doc_cfg.seed,
                        layered,
                        p_variance: summary.config.p_variance,
                        query: q.to_string(),
                        minimized: q.to_string(),
                        estimate: *b,
                        exact,
                        detail: format!("serial {s} != batch {b}"),
                    });
                }
            }
        }
        case += n;
    }
    report
}

/// Distinct root-to-leaf paths of `doc` as tag-name sequences — the
/// vocabulary the query generator draws from, so most queries are
/// satisfiable (negative queries still arise from depth-mismatched
/// branches and deliberately bogus tags).
pub fn tag_paths(doc: &Document) -> Vec<Vec<String>> {
    let labeling = Labeling::compute(doc);
    labeling
        .encoding
        .iter()
        .map(|(_, tags)| {
            tags.iter()
                .map(|&t| doc.tags().name(t).to_string())
                .collect()
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn check_pointwise<F>(
    report: &mut DiffReport,
    est: &Estimator<'_>,
    est_fn: &F,
    evaluator: &Evaluator<'_>,
    summary: &Summary,
    doc_cfg: &RandomDocConfig,
    case_id: u64,
    q: &Query,
    estimate: f64,
    exact: u64,
) where
    F: Fn(&Estimator<'_>, &Query) -> f64,
{
    let violation = |inv: Invariant, minimized: String, detail: String| Violation {
        invariant: inv,
        case: case_id,
        doc_seed: doc_cfg.seed,
        layered: doc_cfg.layered,
        p_variance: summary.config.p_variance,
        query: q.to_string(),
        minimized,
        estimate,
        exact,
        detail,
    };

    report.tallies[Invariant::Finite.idx()].checks += 1;
    if !estimate.is_finite() {
        let min = minimize(q, |c| !est_fn(est, c).is_finite());
        report.record(Invariant::Finite, || {
            violation(
                Invariant::Finite,
                min.to_string(),
                format!("estimate is {estimate}"),
            )
        });
    }

    report.tallies[Invariant::NonNegative.idx()].checks += 1;
    if estimate < 0.0 {
        let min = minimize(q, |c| est_fn(est, c) < 0.0);
        report.record(Invariant::NonNegative, || {
            violation(
                Invariant::NonNegative,
                min.to_string(),
                format!("estimate is {estimate}"),
            )
        });
    }

    report.tallies[Invariant::TagBound.idx()].checks += 1;
    let over_bound = |c: &Query, e: f64| {
        let cap = summary.tag_total(&c.node(c.target()).tag);
        e > cap * (1.0 + 1e-9) + 1e-9
    };
    if over_bound(q, estimate) {
        let min = minimize(q, |c| over_bound(c, est_fn(est, c)));
        let cap = summary.tag_total(&q.node(q.target()).tag);
        report.record(Invariant::TagBound, || {
            violation(
                Invariant::TagBound,
                min.to_string(),
                format!("estimate {estimate} exceeds tag total {cap}"),
            )
        });
    }

    // Theorem 4.1 gate: lossless histograms, a non-recursive document,
    // and a simple path query whose target is its last step.
    if doc_cfg.layered && summary.config.p_variance == 0.0 && is_simple_chain(q) {
        report.tallies[Invariant::ExactSimple.idx()].checks += 1;
        let differs = |c: &Query, e: f64| {
            let x = evaluator.selectivity(c) as f64;
            (e - x).abs() > EXACT_TOL * x.max(1.0)
        };
        if differs(q, estimate) {
            let min = minimize(q, |c| is_simple_chain(c) && differs(c, est_fn(est, c)));
            report.record(Invariant::ExactSimple, || {
                violation(
                    Invariant::ExactSimple,
                    min.to_string(),
                    format!("estimate {estimate} but exact selectivity is {exact}"),
                )
            });
        }
    }
}

/// A simple path query in the sense of Theorem 4.1: a single chain of
/// child/descendant steps, no order constraints, target at the end.
pub fn is_simple_chain(q: &Query) -> bool {
    q.nodes()
        .iter()
        .all(|n| n.edges.len() <= 1 && n.constraints.is_empty())
        && q.node(q.target()).edges.is_empty()
}

/// Generates one random twig query over the document's path vocabulary:
/// a spine sampled from a real root-to-leaf path (so positives are
/// plentiful), optional branches (possibly from a *different* path, which
/// yields negatives), optional sibling/document order constraints in both
/// directions, a random target, and occasional bogus tags.
pub fn random_query(rng: &mut StdRng, paths: &[Vec<String>]) -> Query {
    let p = &paths[rng.gen_range(0..paths.len())];
    let start = rng.gen_range(0..p.len());
    let want = rng.gen_range(1..=4usize);

    // Strictly increasing indices into `p`: step 1 is a child edge, a
    // longer stride becomes a descendant edge.
    let mut idxs = vec![start];
    let mut i = start;
    while idxs.len() < want && i + 1 < p.len() {
        // The loop guard ensures at least one step remains, so the clamp
        // bounds are always ordered.
        let max_step = (p.len() - 1 - i).clamp(1, 2);
        i += rng.gen_range(1..=max_step);
        idxs.push(i);
    }

    let mut nodes: Vec<QueryNode> = idxs
        .iter()
        .map(|&ix| QueryNode {
            tag: p[ix].clone(),
            edges: Vec::new(),
            constraints: Vec::new(),
        })
        .collect();
    for k in 1..idxs.len() {
        let axis = if idxs[k] == idxs[k - 1] + 1 {
            Axis::Child
        } else {
            Axis::Descendant
        };
        nodes[k - 1].edges.push(QueryEdge {
            axis,
            to: QueryNodeId::from_index(k),
        });
    }
    let root_axis = if start == 0 {
        Axis::Child
    } else {
        Axis::Descendant
    };

    // Branches: extra single-node edges off one spine node. Drawing the
    // branch tag from a random (possibly different) path makes both
    // positive and negative branch predicates common.
    let spine_len = nodes.len();
    if rng.gen_bool(0.5) {
        let owner = rng.gen_range(0..spine_len);
        let owner_depth = idxs[owner];
        for _ in 0..rng.gen_range(1..=2usize) {
            let src = &paths[rng.gen_range(0..paths.len())];
            let (tag, axis) = if owner_depth + 1 < src.len() && rng.gen_bool(0.8) {
                if rng.gen_bool(0.7) {
                    (src[owner_depth + 1].clone(), Axis::Child)
                } else {
                    let ix = rng.gen_range(owner_depth + 1..src.len());
                    (src[ix].clone(), Axis::Descendant)
                }
            } else {
                (src[rng.gen_range(0..src.len())].clone(), Axis::Descendant)
            };
            let id = QueryNodeId::from_index(nodes.len());
            nodes.push(QueryNode {
                tag,
                edges: Vec::new(),
                constraints: Vec::new(),
            });
            nodes[owner].edges.push(QueryEdge { axis, to: id });
        }

        // An order constraint between two of the owner's edges. Sibling
        // constraints are only valid over child-axis edges (they compare
        // positions among one parent's children); any pair supports a
        // document-order constraint. `before`/`after` are drawn in both
        // directions, covering folls/pres and foll/prec respectively.
        let edges = &nodes[owner].edges;
        if edges.len() >= 2 && rng.gen_bool(0.6) {
            let a = rng.gen_range(0..edges.len());
            let mut b = rng.gen_range(0..edges.len() - 1);
            if b >= a {
                b += 1;
            }
            let both_child = edges[a].axis == Axis::Child && edges[b].axis == Axis::Child;
            let kind = if both_child && rng.gen_bool(0.7) {
                OrderKind::Sibling
            } else {
                OrderKind::Document
            };
            nodes[owner].constraints.push(OrderConstraint {
                before: a,
                after: b,
                kind,
            });
        }
    }

    // Bogus tags probe the absent-tag paths (selectivity must be 0, and
    // the estimator must not divide by the resulting empty populations).
    if rng.gen_bool(0.1) {
        let victim = rng.gen_range(0..nodes.len());
        nodes[victim].tag = format!("zz{}", rng.gen_range(0..3u32));
    }

    let target = QueryNodeId::from_index(rng.gen_range(0..nodes.len()));
    Query::new(nodes, root_axis, target).expect("generated query is structurally valid")
}

/// Shrinks a failing query: repeatedly drop all order constraints or
/// remove one non-target leaf node, keeping each reduction only if
/// `still_fails` holds, until no reduction applies.
pub fn minimize<P>(q: &Query, still_fails: P) -> Query
where
    P: Fn(&Query) -> bool,
{
    let mut cur = q.clone();
    loop {
        let mut progressed = false;

        if cur.nodes().iter().any(|n| !n.constraints.is_empty()) {
            let stripped = xpe_core::without_constraints(&cur).query;
            if still_fails(&stripped) {
                cur = stripped;
                progressed = true;
            }
        }

        for victim in cur.node_ids() {
            if victim == cur.target() || !cur.node(victim).edges.is_empty() {
                continue;
            }
            if let Some(smaller) = remove_leaf(&cur, victim) {
                if still_fails(&smaller) {
                    cur = smaller;
                    progressed = true;
                    break;
                }
            }
        }

        if !progressed {
            return cur;
        }
    }
}

/// Removes leaf node `victim`, remapping node ids and the parent's
/// constraint edge indices (constraints touching the removed edge are
/// dropped; later edge indices shift down). `None` when the reduction is
/// not applicable (last node, or the result fails validation).
fn remove_leaf(q: &Query, victim: QueryNodeId) -> Option<Query> {
    if q.len() <= 1 || victim == q.target() || !q.node(victim).edges.is_empty() {
        return None;
    }
    let vi = victim.index();
    let remap = |id: QueryNodeId| {
        let i = id.index();
        QueryNodeId::from_index(if i > vi { i - 1 } else { i })
    };

    let mut nodes = Vec::with_capacity(q.len() - 1);
    for old in q.node_ids() {
        if old == victim {
            continue;
        }
        let src = q.node(old);
        let mut removed_edge = None;
        let mut edges = Vec::with_capacity(src.edges.len());
        for (ei, e) in src.edges.iter().enumerate() {
            if e.to == victim {
                removed_edge = Some(ei);
                continue;
            }
            edges.push(QueryEdge {
                axis: e.axis,
                to: remap(e.to),
            });
        }
        let constraints = src
            .constraints
            .iter()
            .filter(|c| removed_edge != Some(c.before) && removed_edge != Some(c.after))
            .map(|c| {
                let shift = |ei: usize| match removed_edge {
                    Some(rm) if ei > rm => ei - 1,
                    _ => ei,
                };
                OrderConstraint {
                    before: shift(c.before),
                    after: shift(c.after),
                    kind: c.kind,
                }
            })
            .collect();
        nodes.push(QueryNode {
            tag: src.tag.clone(),
            edges,
            constraints,
        });
    }
    Query::new(nodes, q.root_axis(), remap(q.target())).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(tags: &[&str]) -> Query {
        let mut nodes: Vec<QueryNode> = tags
            .iter()
            .map(|t| QueryNode {
                tag: t.to_string(),
                edges: Vec::new(),
                constraints: Vec::new(),
            })
            .collect();
        for k in 1..nodes.len() {
            nodes[k - 1].edges.push(QueryEdge {
                axis: Axis::Child,
                to: QueryNodeId::from_index(k),
            });
        }
        let target = QueryNodeId::from_index(tags.len() - 1);
        Query::new(nodes, Axis::Descendant, target).unwrap()
    }

    #[test]
    fn remove_leaf_shrinks_and_remaps() {
        let q = chain(&["a", "b", "c"]);
        // Target is "c"; only removable leaf is nothing (b, a have edges,
        // c is the target) — so removal must refuse.
        for id in q.node_ids() {
            assert!(remove_leaf(&q, id).is_none());
        }

        // Branching query: //a[/b]/c with target c — leaf b removable.
        let mut nodes = vec![
            QueryNode {
                tag: "a".into(),
                edges: vec![
                    QueryEdge {
                        axis: Axis::Child,
                        to: QueryNodeId::from_index(1),
                    },
                    QueryEdge {
                        axis: Axis::Child,
                        to: QueryNodeId::from_index(2),
                    },
                ],
                constraints: vec![OrderConstraint {
                    before: 0,
                    after: 1,
                    kind: OrderKind::Sibling,
                }],
            },
            QueryNode {
                tag: "b".into(),
                edges: Vec::new(),
                constraints: Vec::new(),
            },
            QueryNode {
                tag: "c".into(),
                edges: Vec::new(),
                constraints: Vec::new(),
            },
        ];
        nodes[0].tag = "a".into();
        let q = Query::new(nodes, Axis::Descendant, QueryNodeId::from_index(2)).unwrap();
        let smaller = remove_leaf(&q, QueryNodeId::from_index(1)).unwrap();
        assert_eq!(smaller.len(), 2);
        // The constraint referenced the removed edge, so it is gone.
        assert!(smaller.nodes().iter().all(|n| n.constraints.is_empty()));
        assert_eq!(smaller.node(smaller.target()).tag, "c");
    }

    #[test]
    fn minimize_reaches_fixpoint() {
        let q = chain(&["a", "b", "c"]);
        // Predicate that always fails: minimization bottoms out at the
        // target-only spine it cannot legally shrink further.
        let min = minimize(&q, |_| true);
        assert!(min.len() <= q.len());
        assert!(is_simple_chain(&min));
    }

    #[test]
    fn generated_queries_are_valid_and_diverse() {
        let doc = random_document(&RandomDocConfig {
            seed: 11,
            max_depth: 5,
            max_children: 4,
            tag_count: 3,
            layered: false,
        });
        let paths = tag_paths(&doc);
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_constraint = false;
        let mut saw_branch = false;
        let mut saw_descendant = false;
        for _ in 0..200 {
            let q = random_query(&mut rng, &paths);
            assert!(!q.is_empty());
            saw_constraint |= q.has_order_constraints();
            saw_branch |= q.nodes().iter().any(|n| n.edges.len() > 1);
            saw_descendant |= q
                .nodes()
                .iter()
                .flat_map(|n| &n.edges)
                .any(|e| e.axis == Axis::Descendant);
        }
        assert!(saw_constraint, "generator never emitted order constraints");
        assert!(saw_branch, "generator never emitted branches");
        assert!(saw_descendant, "generator never emitted descendant edges");
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = run_diff(&DiffConfig { seed: 1, cases: 6 });
        let json = report.to_json();
        assert!(json.contains("\"tool\": \"xpe-diff\""));
        assert!(json.contains("\"exact-simple\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
