//! Figure 10: estimation error of queries *without* order axes versus
//! p-histogram memory (series: simple queries, branch queries, all).
//! Expected shape: error falls as memory grows (variance shrinks); simple
//! queries reach zero error at variance 0 (Theorem 4.1); branch queries
//! keep a small residual from the Node Independence Assumption.

use xpe_bench::{err, kb, load, print_table, summary_at, workload_error, ExpContext, P_VARIANCES};
use xpe_core::Estimator;
use xpe_datagen::Dataset;

fn main() {
    let ctx = ExpContext::from_env();
    println!("Figure 10 reproduction (scale = {})", ctx.scale);
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let mut rows = Vec::new();
        for &pv in P_VARIANCES.iter().rev() {
            let s = summary_at(&b, pv, 0.0);
            let est = Estimator::new(&s);
            let e_simple = workload_error(&est, &b.workload.simple);
            let e_branch = workload_error(&est, &b.workload.branch);
            let all: Vec<_> = b
                .workload
                .simple
                .iter()
                .chain(&b.workload.branch)
                .cloned()
                .collect();
            let e_all = workload_error(&est, &all);
            rows.push(vec![
                format!("{pv}"),
                kb(s.sizes().p_histograms),
                err(e_simple),
                err(e_branch),
                err(e_all),
            ]);
        }
        print_table(
            &format!(
                "Figure 10 ({}): error vs p-histogram memory (no order axes)",
                ds.name()
            ),
            &[
                "P-Var",
                "P-Histo (KB)",
                "Err(simple)",
                "Err(branch)",
                "Err(all)",
            ],
            &rows,
        );
    }
    println!(
        "\n  Shape check: error decreases toward the last row (variance 0),\n  \
         where simple queries are exact and branch error is small (<7% in\n  \
         the paper)."
    );
}
