//! Table 3: space requirement of the encoding table, the flat path-id
//! table and the compressed path-id binary tree, plus pid length and
//! distinct-pid counts.

use xpe_bench::{kb, load, print_table, ExpContext};
use xpe_datagen::Dataset;
use xpe_pathid::PathIdTree;

fn main() {
    let ctx = ExpContext::from_env();
    println!("Table 3 reproduction (scale = {})", ctx.scale);
    let paper: [(&str, &str); 3] = [
        ("SSPlays", "40 paths, 5 B pid, 115 pids; 0.24/0.92/0.93 KB"),
        ("DBLP", "87 paths, 11 B pid, 327 pids; 0.39/3.60/2.97 KB"),
        (
            "XMark",
            "344 paths, 43 B pid, 6811 pids; 2.90/299.7/67.3 KB",
        ),
    ];
    let mut rows = Vec::new();
    for (i, ds) in Dataset::ALL.into_iter().enumerate() {
        let b = load(&ctx, ds);
        let lab = &b.labeling;
        let tree = PathIdTree::new(&lab.interner);
        let pid_bytes = (lab.interner.width() as usize).div_ceil(8);
        rows.push(vec![
            ds.name().to_owned(),
            lab.encoding.len().to_string(),
            pid_bytes.to_string(),
            lab.interner.len().to_string(),
            kb(lab.encoding.size_bytes()),
            kb(lab.interner.table_size_bytes()),
            kb(tree.size_bytes()),
            format!(
                "{:.0}%",
                100.0 * (1.0 - tree.size_bytes() as f64 / lab.interner.table_size_bytes() as f64)
            ),
            paper[i].1.to_owned(),
        ]);
    }
    print_table(
        "Table 3: encoding table / pid table / pid binary tree",
        &[
            "Dataset",
            "#DistPaths",
            "PidSize(B)",
            "#DistPid",
            "EncTab(KB)",
            "PidTab(KB)",
            "BinTree(KB)",
            "TreeSaving",
            "paper",
        ],
        &rows,
    );
}
