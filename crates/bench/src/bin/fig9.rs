//! Figure 9: p-histogram and o-histogram memory usage as the intra-bucket
//! variance grows, per dataset. Expected shape: both curves decrease
//! monotonically with the variance; DBLP's o-histogram dwarfs its
//! p-histogram (wide sibling structure ⇒ much more order information).

use xpe_bench::{kb, load, print_table, summary_at, ExpContext, O_VARIANCES, P_VARIANCES};
use xpe_datagen::Dataset;

fn main() {
    let ctx = ExpContext::from_env();
    println!("Figure 9 reproduction (scale = {})", ctx.scale);
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let mut rows = Vec::new();
        for (&pv, &ov) in P_VARIANCES.iter().zip(O_VARIANCES.iter()) {
            let s = summary_at(&b, pv, ov);
            let sz = s.sizes();
            rows.push(vec![
                format!("{pv}"),
                kb(sz.p_histograms),
                kb(sz.o_histograms),
            ]);
        }
        print_table(
            &format!("Figure 9 ({}): memory vs intra-bucket variance", ds.name()),
            &["Variance", "P-Histo (KB)", "O-Histo (KB)"],
            &rows,
        );
    }
    println!(
        "\n  Shape check: both series decrease with variance; for the DBLP-like\n  \
         dataset the o-histogram needs much more space than the p-histogram."
    );
}
