//! Ablations of the paper's design choices (beyond the published
//! experiments; called out in DESIGN.md):
//!
//! 1. **Variance-threshold vs equi-width p-histogram buckets** at matched
//!    bucket counts — what does sorting + deviation-bounded bucketing buy?
//! 2. **O-histogram box growth vs single-cell buckets** — space cost of
//!    losslessness without Algorithm 2's rectangles.
//! 3. **Eq. 2 branch correction on/off** — raw joined frequency `f_Q(n)`
//!    versus the Node-Independence-corrected estimate for branch targets.

use xpe_bench::{
    err, kb, load, print_table, summary_at, workload_error, workload_error_with, ExpContext,
};
use xpe_core::{path_join, Estimator};
use xpe_datagen::Dataset;
use xpe_synopsis::{OHistogramSet, PHistogramSet, PathIdFrequencyTable, PathOrderTable};

fn main() {
    let ctx = ExpContext::from_env();
    println!("Ablations (scale = {})", ctx.scale);

    // --- 1. p-histogram bucketing strategy -----------------------------
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let freq = PathIdFrequencyTable::build(&b.doc, &b.labeling);
        let all: Vec<_> = b
            .workload
            .simple
            .iter()
            .chain(&b.workload.branch)
            .cloned()
            .collect();
        for v in [2.0, 6.0] {
            let base = summary_at(&b, v, 0.0);
            let mut equi = base.clone();
            equi.phist = PHistogramSet::build_equi_width_like(&freq, v);
            let e_var = workload_error(&Estimator::new(&base), &all);
            let e_equi = workload_error(&Estimator::new(&equi), &all);
            rows.push(vec![
                ds.name().to_owned(),
                format!("{v}"),
                base.phist.size_bytes().to_string(),
                equi.phist.size_bytes().to_string(),
                err(e_var),
                err(e_equi),
            ]);
        }
    }
    print_table(
        "Ablation 1: variance-threshold vs equi-width p-buckets",
        &[
            "Dataset",
            "Var",
            "Bytes(var)",
            "Bytes(equi)",
            "Err(var)",
            "Err(equi)",
        ],
        &rows,
    );

    // --- 2. o-histogram box growth --------------------------------------
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let freq = PathIdFrequencyTable::build(&b.doc, &b.labeling);
        let order = PathOrderTable::build(&b.doc, &b.labeling);
        let phist = PHistogramSet::build(&freq, 0.0);
        let grown = OHistogramSet::build(&order, &phist, b.doc.tags(), 0.0);
        let cells = OHistogramSet::build_single_cell(&order, &phist, b.doc.tags());
        rows.push(vec![
            ds.name().to_owned(),
            kb(grown.size_bytes()),
            grown.bucket_count().to_string(),
            kb(cells.size_bytes()),
            cells.bucket_count().to_string(),
        ]);
    }
    print_table(
        "Ablation 2: o-histogram box growth vs single-cell buckets (both lossless)",
        &["Dataset", "Boxes(KB)", "#Boxes", "Cells(KB)", "#Cells"],
        &rows,
    );

    // --- 3. Eq. 2 branch correction -------------------------------------
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let s = summary_at(&b, 0.0, 0.0);
        let est = Estimator::new(&s);
        let e_eq2 = workload_error(&est, &b.workload.branch);
        // Raw join frequency of the target, no correction.
        let e_raw = workload_error_with(&b.workload.branch, |c| {
            path_join(&s, &c.query).frequency(c.query.target())
        });
        rows.push(vec![
            ds.name().to_owned(),
            b.workload.branch.len().to_string(),
            err(e_eq2),
            err(e_raw),
        ]);
    }
    print_table(
        "Ablation 3: branch queries — Eq. 2 correction vs raw f_Q(n)",
        &["Dataset", "#Queries", "Err(Eq.2)", "Err(raw)"],
        &rows,
    );
    println!(
        "\n  Expected: variance bucketing beats equi-width at matched size;\n  \
         box growth shrinks the lossless o-histogram; Eq. 2 cuts branch\n  \
         error versus the uncorrected join frequency."
    );
}
