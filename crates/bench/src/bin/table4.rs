//! Table 4: construction cost for queries *without* order axes — the
//! proposed path-based solution (collection time, p-histogram size range
//! over the variance sweep, construction time) versus XSketch at a
//! matched memory budget.

use std::time::Instant;

use xpe_bench::{kb, load, print_table, secs, summary_at, ExpContext, P_VARIANCES};
use xpe_datagen::Dataset;
use xpe_xsketch::XSketch;

fn main() {
    let ctx = ExpContext::from_env();
    println!("Table 4 reproduction (scale = {})", ctx.scale);

    let mut ours = Vec::new();
    let mut theirs = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        // Sweep the variance to get the p-histogram size range and the
        // worst-case construction time.
        let mut min_p = usize::MAX;
        let mut max_p = 0usize;
        let mut max_build = 0.0f64;
        let collect = b.collect_path_secs;
        let mut total_budget = 0usize;
        for v in P_VARIANCES {
            let s = summary_at(&b, v, 0.0);
            let sz = s.sizes();
            min_p = min_p.min(sz.p_histograms);
            max_p = max_p.max(sz.p_histograms);
            max_build = max_build.max(s.timings.build_p.as_secs_f64());
            total_budget = total_budget.max(sz.path_total());
        }
        ours.push(vec![
            ds.name().to_owned(),
            secs(collect),
            format!("{} ~ {} KB", kb(min_p), kb(max_p)),
            secs(max_build),
        ]);

        // XSketch at the same total budget (paper: "we ensure the summary
        // size of XSketch is approximately the same as the total memory
        // size of the encoding table, path id binary tree and p-histogram").
        let t0 = Instant::now();
        let sketch = XSketch::build(&b.doc, total_budget);
        let build = t0.elapsed().as_secs_f64();
        theirs.push(vec![
            ds.name().to_owned(),
            format!("{} KB", kb(sketch.size_bytes())),
            sketch.refinement_steps.to_string(),
            secs(build),
        ]);
    }

    print_table(
        "Table 4a: proposed path-based solution",
        &[
            "Dataset",
            "CollectPathTime",
            "P-HistoSize",
            "P-HistoBuildTime",
        ],
        &ours,
    );
    println!(
        "  paper: SSPlays 1.6s / 0.55~0.75 KB / <1ms; DBLP 78.4s / 1.4~2.1 KB / <1ms; \
         XMark 246.2s / 20.4~24.6 KB / <1ms"
    );

    print_table(
        "Table 4b: XSketch at a matched budget",
        &["Dataset", "StatSize", "RefineSteps", "BuildTime"],
        &theirs,
    );
    println!(
        "  paper: SSPlays 1.6~2 KB / 2~3s; DBLP 4.8~5.8 KB / 19~30s; XMark 90~95 KB / >1 week"
    );
    println!(
        "\n  Shape check: p-histogram construction must be orders of magnitude\n  \
         faster than XSketch's greedy refinement at every budget."
    );
}
