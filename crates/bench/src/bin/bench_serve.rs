//! Machine-readable performance snapshot for the `xpe serve` daemon.
//!
//! Boots a real server on an ephemeral loopback port (XMark summary,
//! persisted to a temp `.xps` so hot reload has a file to re-validate),
//! then drives it with a mixed fleet:
//!
//! * **healthy closed-loop clients** — each sends `ROUNDS` estimate
//!   requests over one connection, records per-request latency, and
//!   asserts every answer is `ok` and **bit-identical** to a direct
//!   [`Estimator`] call on the same query text;
//! * **hostile clients** — cycling malformed frames, oversized lines,
//!   mid-frame disconnects, half-closes, and poison-tag queries (the
//!   worker's panic-isolation path), all while the healthy fleet runs;
//! * **one hot reload** issued mid-run, after half the healthy traffic
//!   has completed — answers must stay bit-identical across the epoch
//!   bump because the reloaded file is the same summary.
//!
//! After the hostile mix, a **traffic replay** phase restarts the
//! daemon per mix and replays production-shaped traces from
//! [`xpe_datagen::generate_traffic`]: a uniform cold mix (fresh server,
//! no skew), a Zipf(s=1.1) warm mix (templates pre-touched, estimate
//! cache on), and the same warm Zipf mix with the estimate cache
//! disabled. Reps are interleaved round-robin across the mixes (like
//! `bench_estimation`'s scaling sweep) so a noisy phase of a shared
//! runner taxes every row evenly. Each per-mix row reports q/s,
//! p50/p95/p99/p99.9, shed (`overloaded`) counts, and the server's own
//! estimate-/join-cache hit rates from the `stats` verb.
//!
//! Reports queries/sec of the healthy fleet plus p50/p95/p99/p99.9
//! latency, and writes `results/BENCH_serve.json` (hand-rolled JSON;
//! the workspace carries no serde). Scale/seed come from the usual
//! `XPE_*` variables; CI's perf floor reads `qps` and the per-mix
//! `traffic` rows via `scripts/check_perf_floor.sh`
//! (`XPE_PERF_FLOOR_SERVE_QPS`, `XPE_PERF_MIN_WARM_SKEW_SPEEDUP`).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xpe_bench::{load, print_table, ExpContext};
use xpe_core::server::{Json, Server, ServerConfig};
use xpe_core::Estimator;
use xpe_datagen::{generate_traffic, Dataset, TrafficConfig, TrafficTrace};
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xpath::parse_query;

/// Healthy closed-loop connections.
const CLIENTS: usize = 4;
/// Requests per healthy client.
const ROUNDS: usize = 100;
/// Hostile connections cycling the abuse mix.
const HOSTILES: usize = 2;
/// Cap on distinct workload queries the fleet cycles through.
const MAX_QUERIES: usize = 48;
/// A tag no XMark query targets; the server's chaos hook degrades any
/// estimate whose target tag equals it, exercising panic isolation.
const POISON_TAG: &str = "zzzpoison";

/// Requests per traffic-replay pass.
const TRAFFIC_REQUESTS: usize = 1200;
/// Interleaved repetitions per traffic mix; latencies pool across reps.
const TRAFFIC_REPS: usize = 3;
/// Closed-loop connections replaying each trace.
const TRAFFIC_CLIENTS: usize = 4;

/// One production-shaped replay configuration.
struct MixSpec {
    name: &'static str,
    /// Zipf skew exponent over template popularity (0 = uniform).
    zipf: f64,
    /// Server-side estimate-cache capacity (0 disables).
    estimate_cache: usize,
    /// Pre-touch every template once before the timed pass.
    warmup: bool,
}

/// The replay matrix: skew and cache state are the two axes the
/// skew-aware fast path trades on. `uniform_cold` is the no-locality
/// baseline; `zipf_warm` is steady-state production; `zipf_warm_nocache`
/// prices the estimate cache itself on identical traffic.
const TRAFFIC_MIXES: [MixSpec; 3] = [
    MixSpec {
        name: "uniform_cold",
        zipf: 0.0,
        estimate_cache: xpe_core::DEFAULT_ESTIMATE_CACHE_CAPACITY,
        warmup: false,
    },
    MixSpec {
        name: "zipf_warm",
        zipf: 1.1,
        estimate_cache: xpe_core::DEFAULT_ESTIMATE_CACHE_CAPACITY,
        warmup: true,
    },
    MixSpec {
        name: "zipf_warm_nocache",
        zipf: 1.1,
        estimate_cache: 0,
        warmup: true,
    },
];

struct WireClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl WireClient {
    fn connect(addr: SocketAddr) -> WireClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        WireClient { stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        Json::parse(reply.trim_end()).expect("response is JSON")
    }

    fn estimate(&mut self, query: &str) -> Json {
        self.roundtrip(&format!("{{\"op\": \"estimate\", \"query\": \"{query}\"}}"))
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1e6
}

/// One timed replay of a trace against a fresh daemon.
struct PassResult {
    latencies_ns: Vec<u64>,
    shed: u64,
    wall_secs: f64,
    est_hit_rate: f64,
    join_hit_rate: f64,
}

/// Per-mix accumulator over the interleaved reps.
struct MixAgg {
    name: &'static str,
    latencies_ns: Vec<u64>,
    shed: u64,
    wall_secs: f64,
    est_rate_sum: f64,
    join_rate_sum: f64,
    passes: usize,
}

impl MixAgg {
    fn new(name: &'static str) -> MixAgg {
        MixAgg {
            name,
            latencies_ns: Vec::new(),
            shed: 0,
            wall_secs: 0.0,
            est_rate_sum: 0.0,
            join_rate_sum: 0.0,
            passes: 0,
        }
    }

    fn fold(&mut self, pass: PassResult) {
        self.latencies_ns.extend(pass.latencies_ns);
        self.shed += pass.shed;
        self.wall_secs += pass.wall_secs;
        self.est_rate_sum += pass.est_hit_rate;
        self.join_rate_sum += pass.join_hit_rate;
        self.passes += 1;
    }

    fn sorted(&self) -> Vec<u64> {
        let mut s = self.latencies_ns.clone();
        s.sort_unstable();
        s
    }

    fn qps(&self) -> f64 {
        (self.latencies_ns.len() + self.shed as usize) as f64 / self.wall_secs
    }

    fn est_rate(&self) -> f64 {
        self.est_rate_sum / self.passes.max(1) as f64
    }

    fn join_rate(&self) -> f64 {
        self.join_rate_sum / self.passes.max(1) as f64
    }
}

/// Boots a fresh daemon for `spec`, optionally pre-touches every
/// template, then replays the trace closed-loop from
/// [`TRAFFIC_CLIENTS`] connections (client `c` takes request indices
/// `c mod TRAFFIC_CLIENTS`, preserving arrival order per connection).
/// Every `ok` answer is asserted bit-identical to the direct uncached
/// estimator; `overloaded` answers count as shed. Cache hit rates come
/// from the daemon's own `stats` verb before shutdown.
fn traffic_pass(
    summary: &Arc<Summary>,
    trace: &TrafficTrace,
    expected_bits: &HashMap<&str, u64>,
    spec: &MixSpec,
) -> PassResult {
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(summary),
        None,
        ServerConfig {
            workers: 0,
            estimate_cache_capacity: spec.estimate_cache,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            ..ServerConfig::default()
        },
    )
    .expect("bind traffic port");
    let addr = server.local_addr();
    let server = std::thread::spawn(move || server.run());

    if spec.warmup {
        let mut client = WireClient::connect(addr);
        for template in &trace.templates {
            let resp = client.estimate(&template.case.text);
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("ok"),
                "warmup: {}",
                template.case.text
            );
        }
    }

    let shed = AtomicU64::new(0);
    let wall = Instant::now();
    let latencies_ns = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..TRAFFIC_CLIENTS {
            let shed = &shed;
            handles.push(scope.spawn(move || {
                let mut client = WireClient::connect(addr);
                let mut lat = Vec::new();
                for (i, request) in trace.requests.iter().enumerate() {
                    if i % TRAFFIC_CLIENTS != c {
                        continue;
                    }
                    let text = trace.templates[request.template].case.text.as_str();
                    let t = Instant::now();
                    let resp = client.estimate(text);
                    let ns = t.elapsed().as_nanos() as u64;
                    match resp.get("status").and_then(Json::as_str) {
                        Some("ok") => {
                            let served = resp.get("estimate").and_then(Json::as_f64).unwrap();
                            assert_eq!(
                                served.to_bits(),
                                expected_bits[text],
                                "mix {}: {text} served {served}",
                                spec.name
                            );
                            lat.push(ns);
                        }
                        Some("error") => {
                            assert_eq!(
                                resp.get("error").and_then(Json::as_str),
                                Some("overloaded"),
                                "mix {}: {text}",
                                spec.name
                            );
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("mix {}: {text} answered {other:?}", spec.name),
                    }
                }
                lat
            }));
        }
        let mut all = Vec::with_capacity(trace.requests.len());
        for handle in handles {
            all.extend(handle.join().expect("traffic client"));
        }
        all
    });
    let wall_secs = wall.elapsed().as_secs_f64();

    let mut control = WireClient::connect(addr);
    let stats = control.roundtrip("{\"op\": \"stats\"}");
    let rate = |section: &str| {
        stats
            .get("caches")
            .and_then(|c| c.get(section))
            .and_then(|s| s.get("hit_rate"))
            .and_then(Json::as_f64)
            .expect("stats caches section")
    };
    let (est_hit_rate, join_hit_rate) = (rate("estimate"), rate("join"));
    let resp = control.roundtrip("{\"op\": \"shutdown\"}");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let _ = server.join().expect("traffic server");

    PassResult {
        latencies_ns,
        shed: shed.load(Ordering::Relaxed),
        wall_secs,
        est_hit_rate,
        join_hit_rate,
    }
}

fn main() {
    let ctx = ExpContext::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Serve snapshot: scale = {}, seed = {}, cores = {cores}, clients = {CLIENTS}, \
         hostiles = {HOSTILES}, rounds = {ROUNDS}",
        ctx.scale, ctx.seed
    );

    // Workload: distinct XMark queries whose text roundtrips through the
    // wire (parseable back, JSON-safe, and not targeting the poison tag).
    let bundle = load(&ctx, Dataset::XMark);
    let summary = Arc::new(Summary::build(&bundle.doc, SummaryConfig::default()));
    let direct = Estimator::new(&summary);
    let mut queries: Vec<(String, u64)> = Vec::new();
    for case in bundle
        .workload
        .simple
        .iter()
        .chain(&bundle.workload.branch)
        .chain(&bundle.workload.order_branch)
        .chain(&bundle.workload.order_trunk)
    {
        if queries.len() >= MAX_QUERIES {
            break;
        }
        let text = case.query.to_string();
        if text.contains('"') || text.contains('\\') || text.contains(POISON_TAG) {
            continue;
        }
        if queries.iter().any(|(t, _)| *t == text) {
            continue;
        }
        match parse_query(&text) {
            Ok(q) => queries.push((text, direct.estimate(&q).to_bits())),
            Err(_) => continue,
        }
    }
    assert!(
        queries.len() >= 8,
        "workload yielded only {} wire-safe queries",
        queries.len()
    );
    println!("  {} distinct queries on the wire", queries.len());

    // Persist the summary so `reload` has a file to re-validate.
    let xps = std::env::temp_dir().join(format!("xpe-bench-serve-{}.xps", std::process::id()));
    std::fs::write(&xps, summary.to_bytes()).expect("persist summary");

    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&summary),
        Some(xps.clone()),
        ServerConfig {
            workers: 0, // one per core
            max_line_bytes: 4096,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            poison_tag: Some(POISON_TAG.to_owned()),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let server = std::thread::spawn(move || server.run());

    let completed = AtomicU64::new(0);
    let stop_hostiles = AtomicBool::new(false);
    let hostile_rounds = AtomicU64::new(0);
    let poison_degraded = AtomicU64::new(0);
    let reload_at = (CLIENTS * ROUNDS / 2) as u64;

    let wall = Instant::now();
    let (latencies_ns, reload_ms) = std::thread::scope(|scope| {
        let mut healthy = Vec::new();
        for c in 0..CLIENTS {
            let (queries, completed) = (&queries, &completed);
            healthy.push(scope.spawn(move || {
                let mut client = WireClient::connect(addr);
                let mut lat = Vec::with_capacity(ROUNDS);
                for round in 0..ROUNDS {
                    let (text, expected_bits) = &queries[(c + round * 7) % queries.len()];
                    let t = Instant::now();
                    let resp = client.estimate(text);
                    lat.push(t.elapsed().as_nanos() as u64);
                    assert_eq!(
                        resp.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "client {c} round {round}: {text}"
                    );
                    let served = resp.get("estimate").and_then(Json::as_f64).unwrap();
                    assert_eq!(
                        served.to_bits(),
                        *expected_bits,
                        "client {c} round {round}: {text} served {served}"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                lat
            }));
        }
        for h in 0..HOSTILES {
            let (stop, rounds, poisoned) = (&stop_hostiles, &hostile_rounds, &poison_degraded);
            scope.spawn(move || {
                let mut round = h; // stagger the mix across hostiles
                while !stop.load(Ordering::Relaxed) {
                    match round % 5 {
                        0 => {
                            // Malformed frame: typed error, connection lives.
                            let mut c = WireClient::connect(addr);
                            let resp = c.roundtrip("!!not json");
                            assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
                        }
                        1 => {
                            // Oversized line: typed error, then close.
                            let mut c = WireClient::connect(addr);
                            let long = "x".repeat(8192);
                            let _ = c.stream.write_all(long.as_bytes());
                            let _ = c.stream.write_all(b"\n");
                            let mut reply = String::new();
                            let _ = c.reader.read_line(&mut reply);
                        }
                        2 => {
                            // Mid-frame disconnect: bytes, no newline, gone.
                            let c = WireClient::connect(addr);
                            let _ = (&c.stream).write_all(b"{\"op\": \"esti");
                            let _ = c.stream.shutdown(Shutdown::Both);
                        }
                        3 => {
                            // Half-close after a valid request.
                            let mut c = WireClient::connect(addr);
                            let _ = c.stream.write_all(b"{\"op\": \"ping\"}\n");
                            let _ = c.stream.shutdown(Shutdown::Write);
                            let mut reply = String::new();
                            let _ = c.reader.read_line(&mut reply);
                        }
                        _ => {
                            // Poison-tag query: the worker's panic path
                            // answers `degraded:panicked` on this
                            // connection only.
                            let mut c = WireClient::connect(addr);
                            let resp = c.estimate(&format!("//{POISON_TAG}"));
                            let status = resp.get("status").and_then(Json::as_str).unwrap_or("");
                            assert!(
                                status.starts_with("degraded"),
                                "poison query answered {status:?}"
                            );
                            poisoned.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    rounds.fetch_add(1, Ordering::Relaxed);
                    round += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }

        // Hot reload once half the healthy traffic has landed.
        while completed.load(Ordering::Relaxed) < reload_at {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut control = WireClient::connect(addr);
        let t = Instant::now();
        let resp = control.roundtrip("{\"op\": \"reload\"}");
        let reload_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(2.0));

        let mut latencies: Vec<u64> = Vec::with_capacity(CLIENTS * ROUNDS);
        for handle in healthy {
            latencies.extend(handle.join().expect("healthy client"));
        }
        stop_hostiles.store(true, Ordering::Relaxed);
        (latencies, reload_ms)
    });
    let wall_secs = wall.elapsed().as_secs_f64();

    let resp = WireClient::connect(addr).roundtrip("{\"op\": \"shutdown\"}");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let tally = server.join().expect("server thread");
    let _ = std::fs::remove_file(&xps);

    let mut sorted = latencies_ns.clone();
    sorted.sort_unstable();
    let total = sorted.len() as f64;
    let qps = total / wall_secs;
    let (p50, p95, p99, p999) = (
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 0.99),
        percentile(&sorted, 0.999),
    );

    print_table(
        "xpe serve under a hostile mix",
        &[
            "Requests",
            "q/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "p99.9 ms",
            "Shed",
            "Hostile rounds",
            "Reload ms",
        ],
        &[vec![
            format!("{}", sorted.len()),
            format!("{qps:.0}"),
            format!("{p50:.3}"),
            format!("{p95:.3}"),
            format!("{p99:.3}"),
            format!("{p999:.3}"),
            format!("{}", tally.overloaded),
            format!("{}", hostile_rounds.load(Ordering::Relaxed)),
            format!("{reload_ms:.2}"),
        ]],
    );
    println!(
        "  lifetime tally: {tally}; poison-degraded answers: {}",
        poison_degraded.load(Ordering::Relaxed)
    );

    // -- traffic replay: production-shaped mixes ------------------------
    //
    // Precompute the uncached ground truth once: every template of every
    // mix must come back bit-identical from the daemon, cached or not.
    let mix_traces: Vec<(usize, TrafficTrace)> = TRAFFIC_MIXES
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let trace = generate_traffic(
                &bundle.workload,
                &TrafficConfig {
                    seed: ctx.seed,
                    zipf_s: spec.zipf,
                    requests: TRAFFIC_REQUESTS,
                    ..TrafficConfig::default()
                },
            );
            (i, trace)
        })
        .collect();
    let mut expected_bits: HashMap<&str, u64> = HashMap::new();
    for (_, trace) in &mix_traces {
        for template in &trace.templates {
            let text = template.case.text.as_str();
            assert!(
                !text.contains('"') && !text.contains('\\') && !text.contains(POISON_TAG),
                "template text is not wire-safe: {text}"
            );
            expected_bits
                .entry(text)
                .or_insert_with(|| direct.estimate(&template.case.query).to_bits());
        }
    }

    // Reps are interleaved round-robin across the mixes so shared-runner
    // noise spreads evenly instead of always taxing the last mix.
    let mut aggs: Vec<MixAgg> = TRAFFIC_MIXES.iter().map(|s| MixAgg::new(s.name)).collect();
    for _rep in 0..TRAFFIC_REPS {
        for (i, trace) in &mix_traces {
            let spec = &TRAFFIC_MIXES[*i];
            let pass = traffic_pass(&summary, trace, &expected_bits, spec);
            aggs[*i].fold(pass);
        }
    }
    let mix_qps = |name: &str| {
        aggs.iter()
            .find(|a| a.name == name)
            .map_or(f64::NAN, MixAgg::qps)
    };
    let warm_skew_speedup = mix_qps("zipf_warm") / mix_qps("uniform_cold");
    let warm_cache_speedup = mix_qps("zipf_warm") / mix_qps("zipf_warm_nocache");

    print_table(
        "Traffic replay (per mix)",
        &[
            "Mix",
            "Requests",
            "q/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "p99.9 ms",
            "Shed",
            "Est-cache %",
            "Join %",
        ],
        &aggs
            .iter()
            .map(|a| {
                let s = a.sorted();
                vec![
                    a.name.to_owned(),
                    format!("{}", s.len()),
                    format!("{:.0}", a.qps()),
                    format!("{:.3}", percentile(&s, 0.50)),
                    format!("{:.3}", percentile(&s, 0.95)),
                    format!("{:.3}", percentile(&s, 0.99)),
                    format!("{:.3}", percentile(&s, 0.999)),
                    format!("{}", a.shed),
                    format!("{:.1}", a.est_rate() * 100.0),
                    format!("{:.1}", a.join_rate() * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "  warm zipf vs uniform cold: {warm_skew_speedup:.2}x; \
         warm zipf vs estimate cache off: {warm_cache_speedup:.2}x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"seed\": {}, \"cores\": {cores},",
        ctx.scale, ctx.seed
    );
    let _ = writeln!(
        json,
        "  \"clients\": {CLIENTS}, \"rounds_per_client\": {ROUNDS}, \"hostiles\": {HOSTILES}, \
         \"distinct_queries\": {},",
        queries.len()
    );
    let _ = writeln!(
        json,
        "  \"requests\": {}, \"wall_secs\": {wall_secs:.4}, \"qps\": {qps:.1},",
        sorted.len()
    );
    let _ = writeln!(
        json,
        "  \"p50_ms\": {p50:.4}, \"p95_ms\": {p95:.4}, \"p99_ms\": {p99:.4}, \
         \"p999_ms\": {p999:.4},"
    );
    let _ = writeln!(
        json,
        "  \"reload_ms\": {reload_ms:.3}, \"reload_epoch\": 2, \"bit_identical\": true,"
    );
    let _ = writeln!(
        json,
        "  \"hostile_rounds\": {}, \"poison_degraded\": {},",
        hostile_rounds.load(Ordering::Relaxed),
        poison_degraded.load(Ordering::Relaxed)
    );
    json.push_str("  \"traffic\": [\n");
    for (i, a) in aggs.iter().enumerate() {
        let s = a.sorted();
        let _ = write!(
            json,
            "    {{\"mix\": \"{}\", \"requests\": {}, \"reps\": {TRAFFIC_REPS}, \
             \"qps\": {:.1}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"p999_ms\": {:.4}, \"shed\": {}, \"estimate_cache_hit_rate\": {:.4}, \
             \"join_cache_hit_rate\": {:.4}}}",
            a.name,
            s.len(),
            a.qps(),
            percentile(&s, 0.50),
            percentile(&s, 0.95),
            percentile(&s, 0.99),
            percentile(&s, 0.999),
            a.shed,
            a.est_rate(),
            a.join_rate(),
        );
        json.push_str(if i + 1 < aggs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"warm_skew_speedup\": {warm_skew_speedup:.3}, \
         \"warm_cache_speedup\": {warm_cache_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"lifetime\": {{\"ok\": {}, \"degraded\": {}, \"rejected\": {}, \
         \"protocol_errors\": {}, \"timeouts\": {}, \"overloaded\": {}, \"panics\": {}}}",
        tally.ok,
        tally.degraded,
        tally.rejected,
        tally.protocol_errors,
        tally.timeouts,
        tally.overloaded,
        tally.panics
    );
    json.push_str("}\n");

    let out = "results/BENCH_serve.json";
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\ncould not write {out}: {e}"),
    }
}
