//! Machine-readable performance snapshot for the `xpe serve` daemon.
//!
//! Boots a real server on an ephemeral loopback port (XMark summary,
//! persisted to a temp `.xps` so hot reload has a file to re-validate),
//! then drives it with a mixed fleet:
//!
//! * **healthy closed-loop clients** — each sends `ROUNDS` estimate
//!   requests over one connection, records per-request latency, and
//!   asserts every answer is `ok` and **bit-identical** to a direct
//!   [`Estimator`] call on the same query text;
//! * **hostile clients** — cycling malformed frames, oversized lines,
//!   mid-frame disconnects, half-closes, and poison-tag queries (the
//!   worker's panic-isolation path), all while the healthy fleet runs;
//! * **one hot reload** issued mid-run, after half the healthy traffic
//!   has completed — answers must stay bit-identical across the epoch
//!   bump because the reloaded file is the same summary.
//!
//! Reports queries/sec of the healthy fleet plus p50/p95/p99 latency,
//! and writes `results/BENCH_serve.json` (hand-rolled JSON; the
//! workspace carries no serde). Scale/seed come from the usual `XPE_*`
//! variables; CI's perf floor reads `qps` via
//! `scripts/check_perf_floor.sh` (`XPE_PERF_FLOOR_SERVE_QPS`).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use xpe_bench::{load, print_table, ExpContext};
use xpe_core::server::{Json, Server, ServerConfig};
use xpe_core::Estimator;
use xpe_datagen::Dataset;
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xpath::parse_query;

/// Healthy closed-loop connections.
const CLIENTS: usize = 4;
/// Requests per healthy client.
const ROUNDS: usize = 100;
/// Hostile connections cycling the abuse mix.
const HOSTILES: usize = 2;
/// Cap on distinct workload queries the fleet cycles through.
const MAX_QUERIES: usize = 48;
/// A tag no XMark query targets; the server's chaos hook degrades any
/// estimate whose target tag equals it, exercising panic isolation.
const POISON_TAG: &str = "zzzpoison";

struct WireClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl WireClient {
    fn connect(addr: SocketAddr) -> WireClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        WireClient { stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        Json::parse(reply.trim_end()).expect("response is JSON")
    }

    fn estimate(&mut self, query: &str) -> Json {
        self.roundtrip(&format!("{{\"op\": \"estimate\", \"query\": \"{query}\"}}"))
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1e6
}

fn main() {
    let ctx = ExpContext::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Serve snapshot: scale = {}, seed = {}, cores = {cores}, clients = {CLIENTS}, \
         hostiles = {HOSTILES}, rounds = {ROUNDS}",
        ctx.scale, ctx.seed
    );

    // Workload: distinct XMark queries whose text roundtrips through the
    // wire (parseable back, JSON-safe, and not targeting the poison tag).
    let bundle = load(&ctx, Dataset::XMark);
    let summary = Summary::build(&bundle.doc, SummaryConfig::default());
    let direct = Estimator::new(&summary);
    let mut queries: Vec<(String, u64)> = Vec::new();
    for case in bundle
        .workload
        .simple
        .iter()
        .chain(&bundle.workload.branch)
        .chain(&bundle.workload.order_branch)
        .chain(&bundle.workload.order_trunk)
    {
        if queries.len() >= MAX_QUERIES {
            break;
        }
        let text = case.query.to_string();
        if text.contains('"') || text.contains('\\') || text.contains(POISON_TAG) {
            continue;
        }
        if queries.iter().any(|(t, _)| *t == text) {
            continue;
        }
        match parse_query(&text) {
            Ok(q) => queries.push((text, direct.estimate(&q).to_bits())),
            Err(_) => continue,
        }
    }
    assert!(
        queries.len() >= 8,
        "workload yielded only {} wire-safe queries",
        queries.len()
    );
    println!("  {} distinct queries on the wire", queries.len());

    // Persist the summary so `reload` has a file to re-validate.
    let xps = std::env::temp_dir().join(format!("xpe-bench-serve-{}.xps", std::process::id()));
    std::fs::write(&xps, summary.to_bytes()).expect("persist summary");

    let server = Server::bind(
        "127.0.0.1:0",
        std::sync::Arc::new(summary),
        Some(xps.clone()),
        ServerConfig {
            workers: 0, // one per core
            max_line_bytes: 4096,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            poison_tag: Some(POISON_TAG.to_owned()),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let server = std::thread::spawn(move || server.run());

    let completed = AtomicU64::new(0);
    let stop_hostiles = AtomicBool::new(false);
    let hostile_rounds = AtomicU64::new(0);
    let poison_degraded = AtomicU64::new(0);
    let reload_at = (CLIENTS * ROUNDS / 2) as u64;

    let wall = Instant::now();
    let (latencies_ns, reload_ms) = std::thread::scope(|scope| {
        let mut healthy = Vec::new();
        for c in 0..CLIENTS {
            let (queries, completed) = (&queries, &completed);
            healthy.push(scope.spawn(move || {
                let mut client = WireClient::connect(addr);
                let mut lat = Vec::with_capacity(ROUNDS);
                for round in 0..ROUNDS {
                    let (text, expected_bits) = &queries[(c + round * 7) % queries.len()];
                    let t = Instant::now();
                    let resp = client.estimate(text);
                    lat.push(t.elapsed().as_nanos() as u64);
                    assert_eq!(
                        resp.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "client {c} round {round}: {text}"
                    );
                    let served = resp.get("estimate").and_then(Json::as_f64).unwrap();
                    assert_eq!(
                        served.to_bits(),
                        *expected_bits,
                        "client {c} round {round}: {text} served {served}"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                lat
            }));
        }
        for h in 0..HOSTILES {
            let (stop, rounds, poisoned) = (&stop_hostiles, &hostile_rounds, &poison_degraded);
            scope.spawn(move || {
                let mut round = h; // stagger the mix across hostiles
                while !stop.load(Ordering::Relaxed) {
                    match round % 5 {
                        0 => {
                            // Malformed frame: typed error, connection lives.
                            let mut c = WireClient::connect(addr);
                            let resp = c.roundtrip("!!not json");
                            assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
                        }
                        1 => {
                            // Oversized line: typed error, then close.
                            let mut c = WireClient::connect(addr);
                            let long = "x".repeat(8192);
                            let _ = c.stream.write_all(long.as_bytes());
                            let _ = c.stream.write_all(b"\n");
                            let mut reply = String::new();
                            let _ = c.reader.read_line(&mut reply);
                        }
                        2 => {
                            // Mid-frame disconnect: bytes, no newline, gone.
                            let c = WireClient::connect(addr);
                            let _ = (&c.stream).write_all(b"{\"op\": \"esti");
                            let _ = c.stream.shutdown(Shutdown::Both);
                        }
                        3 => {
                            // Half-close after a valid request.
                            let mut c = WireClient::connect(addr);
                            let _ = c.stream.write_all(b"{\"op\": \"ping\"}\n");
                            let _ = c.stream.shutdown(Shutdown::Write);
                            let mut reply = String::new();
                            let _ = c.reader.read_line(&mut reply);
                        }
                        _ => {
                            // Poison-tag query: the worker's panic path
                            // answers `degraded:panicked` on this
                            // connection only.
                            let mut c = WireClient::connect(addr);
                            let resp = c.estimate(&format!("//{POISON_TAG}"));
                            let status = resp.get("status").and_then(Json::as_str).unwrap_or("");
                            assert!(
                                status.starts_with("degraded"),
                                "poison query answered {status:?}"
                            );
                            poisoned.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    rounds.fetch_add(1, Ordering::Relaxed);
                    round += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }

        // Hot reload once half the healthy traffic has landed.
        while completed.load(Ordering::Relaxed) < reload_at {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut control = WireClient::connect(addr);
        let t = Instant::now();
        let resp = control.roundtrip("{\"op\": \"reload\"}");
        let reload_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(2.0));

        let mut latencies: Vec<u64> = Vec::with_capacity(CLIENTS * ROUNDS);
        for handle in healthy {
            latencies.extend(handle.join().expect("healthy client"));
        }
        stop_hostiles.store(true, Ordering::Relaxed);
        (latencies, reload_ms)
    });
    let wall_secs = wall.elapsed().as_secs_f64();

    let resp = WireClient::connect(addr).roundtrip("{\"op\": \"shutdown\"}");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let tally = server.join().expect("server thread");
    let _ = std::fs::remove_file(&xps);

    let mut sorted = latencies_ns.clone();
    sorted.sort_unstable();
    let total = sorted.len() as f64;
    let qps = total / wall_secs;
    let (p50, p95, p99) = (
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 0.99),
    );

    print_table(
        "xpe serve under a hostile mix",
        &[
            "Requests",
            "q/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "Hostile rounds",
            "Reload ms",
        ],
        &[vec![
            format!("{}", sorted.len()),
            format!("{qps:.0}"),
            format!("{p50:.3}"),
            format!("{p95:.3}"),
            format!("{p99:.3}"),
            format!("{}", hostile_rounds.load(Ordering::Relaxed)),
            format!("{reload_ms:.2}"),
        ]],
    );
    println!(
        "  lifetime tally: {tally}; poison-degraded answers: {}",
        poison_degraded.load(Ordering::Relaxed)
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"seed\": {}, \"cores\": {cores},",
        ctx.scale, ctx.seed
    );
    let _ = writeln!(
        json,
        "  \"clients\": {CLIENTS}, \"rounds_per_client\": {ROUNDS}, \"hostiles\": {HOSTILES}, \
         \"distinct_queries\": {},",
        queries.len()
    );
    let _ = writeln!(
        json,
        "  \"requests\": {}, \"wall_secs\": {wall_secs:.4}, \"qps\": {qps:.1},",
        sorted.len()
    );
    let _ = writeln!(
        json,
        "  \"p50_ms\": {p50:.4}, \"p95_ms\": {p95:.4}, \"p99_ms\": {p99:.4},"
    );
    let _ = writeln!(
        json,
        "  \"reload_ms\": {reload_ms:.3}, \"reload_epoch\": 2, \"bit_identical\": true,"
    );
    let _ = writeln!(
        json,
        "  \"hostile_rounds\": {}, \"poison_degraded\": {},",
        hostile_rounds.load(Ordering::Relaxed),
        poison_degraded.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        json,
        "  \"lifetime\": {{\"ok\": {}, \"degraded\": {}, \"rejected\": {}, \
         \"protocol_errors\": {}, \"timeouts\": {}, \"overloaded\": {}, \"panics\": {}}}",
        tally.ok,
        tally.degraded,
        tally.rejected,
        tally.protocol_errors,
        tally.timeouts,
        tally.overloaded,
        tally.panics
    );
    json.push_str("}\n");

    let out = "results/BENCH_serve.json";
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\ncould not write {out}: {e}"),
    }
}
