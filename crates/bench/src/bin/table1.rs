//! Table 1: characteristics of datasets (size, #distinct tags, #elements),
//! ours vs the paper's real corpora.

use xpe_bench::{kb, load, print_table, ExpContext};
use xpe_datagen::Dataset;
use xpe_xml::stats::DocumentStats;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "Table 1 reproduction (scale = {}, paper scale = 1.0)",
        ctx.scale
    );
    let paper: [(&str, &str, &str, &str); 3] = [
        ("SSPlays", "7.5 MB", "21", "179,690"),
        ("DBLP", "65.2 MB", "31", "1,711,542"),
        ("XMark", "20.4 MB", "74", "319,815"),
    ];
    let mut rows = Vec::new();
    for (i, ds) in Dataset::ALL.into_iter().enumerate() {
        let bundle = load(&ctx, ds);
        let s = DocumentStats::compute(&bundle.doc);
        rows.push(vec![
            ds.name().to_owned(),
            format!("{} KB", kb(s.serialized_bytes)),
            s.distinct_tags.to_string(),
            s.elements.to_string(),
            s.distinct_paths.to_string(),
            format!("{} / {} / {}", paper[i].1, paper[i].2, paper[i].3),
        ]);
    }
    print_table(
        "Table 1: dataset characteristics",
        &[
            "Dataset",
            "Size",
            "#DistTags",
            "#Eles",
            "#DistPaths",
            "paper (size/#tags/#eles)",
        ],
        &rows,
    );
}
