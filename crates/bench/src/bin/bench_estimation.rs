//! Machine-readable performance snapshot for the batched estimation
//! engine and the parallel summary build.
//!
//! Measures, per dataset:
//!
//! * queries/sec of the serial per-query `Estimator` loop versus
//!   `EstimationEngine::estimate_batch` (one worker and one per core)
//!   over the full ≥500-query workload;
//! * `Summary::build` wall time at one worker versus one per core;
//! * kernel counters from one cold workload pass: join-cache hit rate,
//!   containment adjacencies built and the milliseconds spent building
//!   them.
//!
//! Writes `results/BENCH_estimation.json` (hand-rolled JSON — the
//! workspace carries no serde) and prints the same numbers as a table.
//! Scale/seed/attempts come from the usual `XPE_*` variables.

use std::fmt::Write as _;
use std::time::Instant;

use xpe_bench::{load, print_table, ExpContext};
use xpe_core::{EstimationEngine, Estimator};
use xpe_datagen::Dataset;
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xpath::Query;

/// Repetitions per measurement; the best run is reported to damp noise.
const REPS: usize = 3;

fn best_secs<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    dataset: &'static str,
    queries: usize,
    serial_qps: f64,
    batch1_qps: f64,
    batch_auto_qps: f64,
    build_serial_ms: f64,
    build_parallel_ms: f64,
    join_cache_hit_rate: f64,
    adjacency_build_ms: f64,
    adjacency_builds: u64,
    adjacency_pairs: u64,
}

fn json_escape_free(s: &str) -> &str {
    // Every string we emit is a bare ASCII identifier; assert rather
    // than carry an escaper.
    assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    s
}

fn main() {
    let ctx = ExpContext::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Batch-estimation snapshot: scale = {}, attempts = {}, seed = {}, cores = {cores}",
        ctx.scale, ctx.attempts, ctx.seed
    );

    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let queries: Vec<Query> = b
            .workload
            .simple
            .iter()
            .chain(&b.workload.branch)
            .chain(&b.workload.order_branch)
            .chain(&b.workload.order_trunk)
            .map(|c| c.query.clone())
            .collect();
        if queries.is_empty() {
            continue;
        }
        let summary = Summary::build(&b.doc, SummaryConfig::default());
        let n = queries.len() as f64;

        let serial = best_secs(|| {
            let est = Estimator::new(&summary);
            queries.iter().map(|q| est.estimate(q)).sum::<f64>()
        });
        let batch1 = best_secs(|| {
            let engine = EstimationEngine::new(&summary).with_threads(1);
            engine.estimate_batch(&queries).iter().sum::<f64>()
        });
        let batch_auto = best_secs(|| {
            let engine = EstimationEngine::new(&summary).with_threads(0);
            engine.estimate_batch(&queries).iter().sum::<f64>()
        });
        let build_serial =
            best_secs(|| Summary::build(&b.doc, SummaryConfig::default().with_threads(1)));
        // Threshold 0 forces the parallel path so the measurement stays a
        // parallel-vs-serial comparison even below the size fallback; the
        // default-config demotion is recorded separately in the JSON.
        let build_parallel = best_secs(|| {
            Summary::build(
                &b.doc,
                SummaryConfig::default()
                    .with_threads(0)
                    .with_parallel_threshold(0),
            )
        });

        // Kernel counters from one untimed batch on a fresh engine: the
        // join-cache hit rate and the cost of cold adjacency construction
        // a single workload pass pays.
        let stats_engine = EstimationEngine::new(&summary).with_threads(0);
        stats_engine.estimate_batch(&queries);
        let kernel = stats_engine.kernel_stats();
        println!(
            "  {}: join cache {}/{} hits ({:.1}%), {} adjacencies \
             ({} pairs) built in {:.2} ms",
            ds.name(),
            kernel.join_cache_hits,
            kernel.join_cache_hits + kernel.join_cache_misses,
            kernel.join_cache_hit_rate * 100.0,
            kernel.adjacency_builds,
            kernel.adjacency_pairs,
            kernel.adjacency_build_ms,
        );

        rows.push(Row {
            dataset: ds.name(),
            queries: queries.len(),
            serial_qps: n / serial,
            batch1_qps: n / batch1,
            batch_auto_qps: n / batch_auto,
            build_serial_ms: build_serial * 1e3,
            build_parallel_ms: build_parallel * 1e3,
            join_cache_hit_rate: kernel.join_cache_hit_rate,
            adjacency_build_ms: kernel.adjacency_build_ms,
            adjacency_builds: kernel.adjacency_builds,
            adjacency_pairs: kernel.adjacency_pairs,
        });
    }

    print_table(
        "Batched estimation + parallel construction",
        &[
            "Dataset",
            "Queries",
            "Serial q/s",
            "Batch(1) q/s",
            "Batch(auto) q/s",
            "Build(1) ms",
            "Build(auto) ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_owned(),
                    r.queries.to_string(),
                    format!("{:.0}", r.serial_qps),
                    format!("{:.0}", r.batch1_qps),
                    format!("{:.0}", r.batch_auto_qps),
                    format!("{:.2}", r.build_serial_ms),
                    format!("{:.2}", r.build_parallel_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"attempts\": {}, \"seed\": {}, \"reps\": {REPS}, \"cores\": {cores}, \
         \"parallel_threshold\": {},",
        ctx.scale,
        ctx.attempts,
        ctx.seed,
        SummaryConfig::default().parallel_threshold
    );
    json.push_str("  \"datasets\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"queries\": {}, \
             \"serial_qps\": {:.1}, \"batch_jobs1_qps\": {:.1}, \
             \"batch_auto_qps\": {:.1}, \"speedup_auto_vs_serial\": {:.2}, \
             \"build_serial_ms\": {:.3}, \"build_parallel_ms\": {:.3}, \
             \"join_cache_hit_rate\": {:.4}, \"adjacency_build_ms\": {:.3}, \
             \"adjacency_builds\": {}, \"adjacency_pairs\": {}}}",
            json_escape_free(r.dataset),
            r.queries,
            r.serial_qps,
            r.batch1_qps,
            r.batch_auto_qps,
            r.batch_auto_qps / r.serial_qps,
            r.build_serial_ms,
            r.build_parallel_ms,
            r.join_cache_hit_rate,
            r.adjacency_build_ms,
            r.adjacency_builds,
            r.adjacency_pairs,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out = "results/BENCH_estimation.json";
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\ncould not write {out}: {e}"),
    }
}
