//! Machine-readable performance snapshot for the batched estimation
//! engine and the parallel summary build.
//!
//! Measures, per dataset and per join kernel (`indexed` and `bitmap`):
//!
//! * queries/sec of the serial per-query `Estimator` loop versus
//!   `EstimationEngine::estimate_batch` (one worker and one per core)
//!   over the full ≥500-query workload;
//! * a thread-scaling sweep: steady-state batch throughput of a
//!   persistent (warmed-up) engine at 1, 2 and 4 workers and at `auto`
//!   (one per core), each row recording the *effective* worker count so
//!   a 2-core runner's `4`-row is legible as oversubscription
//!   (`--threads-sweep=1,2,4,0` overrides the list; `0` means auto);
//! * `Summary::build` wall time at one worker versus one per core
//!   (kernel-independent, measured once per dataset);
//! * kernel counters from one cold workload pass: join-cache hit rate,
//!   containment adjacencies built and the milliseconds spent building
//!   them;
//! * a per-phase join breakdown from one instrumented serial pass —
//!   plan (tag/edge resolution for the prepared query plan), screen
//!   (worklist seeding + candidate setup), fixpoint (the edge sweep),
//!   and finalize (rebuilding the surviving lists);
//! * a production-traffic replay per dataset: Zipf-skewed traces from
//!   [`xpe_datagen::generate_traffic`] driven through a persistent
//!   engine — a uniform cold mix, a warm Zipf(s=1.1) mix with the
//!   estimate cache on, and the same warm mix with it off — reporting
//!   q/s, p50/p95/p99 per-request latency and both cache hit rates.
//!   The warm-vs-nocache ratio is the headline the estimate cache pays
//!   its rent with.
//!
//! Writes `results/BENCH_estimation.json` (hand-rolled JSON — the
//! workspace carries no serde) and prints the same numbers as a table.
//! Scale/seed/attempts come from the usual `XPE_*` variables.

use std::fmt::Write as _;
use std::time::Instant;

use xpe_bench::{load, print_table, ExpContext};
use xpe_core::{EstimationEngine, Estimator, JoinKernel, DEFAULT_ESTIMATE_CACHE_CAPACITY};
use xpe_datagen::{generate_traffic, Dataset, TrafficConfig};
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xpath::Query;

/// Repetitions per measurement; the best run is reported to damp noise.
const REPS: usize = 3;

/// Kernels the snapshot covers. The naive reference kernel is excluded:
/// it exists for differential testing, not serving, and its quadratic
/// sweeps would dominate the run time of every other measurement.
const KERNELS: [JoinKernel; 2] = [JoinKernel::Indexed, JoinKernel::Bitmap];

/// Worker counts the scaling sweep measures by default; `0` is the
/// auto setting (one worker per available core).
const SWEEP_DEFAULT: [usize; 4] = [1, 2, 4, 0];

fn best_secs<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    dataset: &'static str,
    kernel: &'static str,
    queries: usize,
    serial_qps: f64,
    batch1_qps: f64,
    batch_auto_qps: f64,
    /// Worker count `batch_auto_qps` actually ran with — `auto` resolves
    /// per machine, so a sub-1.0 auto-vs-serial speedup is attributable
    /// (a 1-core runner legitimately shows none).
    effective_threads: usize,
    build_serial_ms: f64,
    build_parallel_ms: f64,
    join_cache_hit_rate: f64,
    adjacency_build_ms: f64,
    adjacency_builds: u64,
    adjacency_pairs: u64,
    plan_ms: f64,
    screen_ms: f64,
    fixpoint_ms: f64,
    finalize_ms: f64,
}

struct ScalingRow {
    dataset: &'static str,
    kernel: &'static str,
    threads: usize,
    effective_threads: usize,
    qps: f64,
    speedup_vs_1: f64,
}

/// One production-traffic replay configuration (engine level).
struct MixSpec {
    name: &'static str,
    /// Zipf skew over template popularity ranks (0 = uniform).
    zipf: f64,
    /// Estimate-cache capacity for the replaying engine (0 disables).
    estimate_cache: usize,
    /// Pre-touch every template once before the timed reps and keep the
    /// engine alive across them (steady-state); cold mixes get a fresh
    /// engine every rep.
    warmup: bool,
}

/// Skew and estimate-cache state are the axes the skew-aware fast path
/// trades on; `zipf_warm` vs `zipf_warm_nocache` isolates the cache on
/// identical traffic.
const TRAFFIC_MIXES: [MixSpec; 3] = [
    MixSpec {
        name: "uniform_cold",
        zipf: 0.0,
        estimate_cache: DEFAULT_ESTIMATE_CACHE_CAPACITY,
        warmup: false,
    },
    MixSpec {
        name: "zipf_warm",
        zipf: 1.1,
        estimate_cache: DEFAULT_ESTIMATE_CACHE_CAPACITY,
        warmup: true,
    },
    MixSpec {
        name: "zipf_warm_nocache",
        zipf: 1.1,
        estimate_cache: 0,
        warmup: true,
    },
];

struct TrafficRow {
    dataset: &'static str,
    mix: &'static str,
    requests: usize,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    estimate_cache_hit_rate: f64,
    join_cache_hit_rate: f64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1e3
}

/// Parses `--threads-sweep[=LIST]` from the command line. The bare flag
/// (or no flag) selects [`SWEEP_DEFAULT`]; `LIST` is comma-separated
/// worker counts where `0` means one worker per core.
fn sweep_from_args() -> Vec<usize> {
    for arg in std::env::args().skip(1) {
        if let Some(list) = arg.strip_prefix("--threads-sweep=") {
            return list
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad --threads-sweep entry {t:?}"))
                })
                .collect();
        }
    }
    SWEEP_DEFAULT.to_vec()
}

fn json_escape_free(s: &str) -> &str {
    // Every string we emit is a bare ASCII identifier; assert rather
    // than carry an escaper.
    assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    s
}

fn main() {
    let ctx = ExpContext::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep = sweep_from_args();
    println!(
        "Batch-estimation snapshot: scale = {}, attempts = {}, seed = {}, cores = {cores}, \
         sweep = {sweep:?}",
        ctx.scale, ctx.attempts, ctx.seed
    );

    let mut rows = Vec::new();
    let mut scaling: Vec<ScalingRow> = Vec::new();
    let mut traffic: Vec<TrafficRow> = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let queries: Vec<Query> = b
            .workload
            .simple
            .iter()
            .chain(&b.workload.branch)
            .chain(&b.workload.order_branch)
            .chain(&b.workload.order_trunk)
            .map(|c| c.query.clone())
            .collect();
        if queries.is_empty() {
            continue;
        }
        let summary = Summary::build(&b.doc, SummaryConfig::default());
        let n = queries.len() as f64;

        // Summary construction is kernel-independent; measure once.
        let build_serial =
            best_secs(|| Summary::build(&b.doc, SummaryConfig::default().with_threads(1)));
        // Threshold 0 forces the parallel path so the measurement stays a
        // parallel-vs-serial comparison even below the size fallback; the
        // default-config demotion is recorded separately in the JSON.
        let build_parallel = best_secs(|| {
            Summary::build(
                &b.doc,
                SummaryConfig::default()
                    .with_threads(0)
                    .with_parallel_threshold(0),
            )
        });

        for kernel in KERNELS {
            let serial = best_secs(|| {
                let est = Estimator::new(&summary).with_kernel(kernel);
                queries.iter().map(|q| est.estimate(q)).sum::<f64>()
            });
            let batch1 = best_secs(|| {
                let engine = EstimationEngine::new(&summary)
                    .with_threads(1)
                    .with_kernel(kernel);
                engine.estimate_batch(&queries).iter().sum::<f64>()
            });
            let batch_auto = best_secs(|| {
                let engine = EstimationEngine::new(&summary)
                    .with_threads(0)
                    .with_kernel(kernel);
                engine.estimate_batch(&queries).iter().sum::<f64>()
            });

            // Thread-scaling sweep: steady-state throughput of one
            // persistent engine per worker count — a warm-up pass
            // populates the epoch-published indices and the join cache,
            // then the timed passes measure what a long-lived engine
            // (the optimizer-resident case the batch path exists for)
            // sustains. This intentionally differs from the cold
            // fresh-engine headline rows: cold-start cost is one-time
            // and reported there; the sweep isolates how the warm path
            // scales with workers. Speedups are quoted against the
            // sweep's own one-worker row so the curve is internally
            // consistent. Reps are interleaved round-robin across the
            // worker counts (rather than finishing one row before the
            // next starts) so slow phases of a shared runner spread
            // evenly over the curve instead of always taxing the last
            // row.
            let sweep_base = scaling.len();
            // Estimate cache off: a persistent engine's repeat passes
            // would otherwise be answered from the full-query cache and
            // the sweep would measure cache lookups, not how the warm
            // join path scales with workers. The traffic replay below
            // prices the cache; this sweep prices the kernel.
            let engines: Vec<_> = sweep
                .iter()
                .map(|&t| {
                    let engine = EstimationEngine::new(&summary)
                        .with_threads(t)
                        .with_kernel(kernel)
                        .with_estimate_cache_capacity(0);
                    std::hint::black_box(engine.estimate_batch(&queries));
                    engine
                })
                .collect();
            let mut secs = vec![f64::INFINITY; sweep.len()];
            for _ in 0..REPS {
                for (slot, engine) in secs.iter_mut().zip(&engines) {
                    let t = Instant::now();
                    std::hint::black_box(engine.estimate_batch(&queries));
                    *slot = slot.min(t.elapsed().as_secs_f64());
                }
            }
            for (&t, &s) in sweep.iter().zip(&secs) {
                scaling.push(ScalingRow {
                    dataset: ds.name(),
                    kernel: kernel.name(),
                    threads: t,
                    effective_threads: xpe_par::resolve_threads(t),
                    qps: n / s,
                    speedup_vs_1: 1.0,
                });
            }
            let one_worker_qps = scaling[sweep_base..]
                .iter()
                .find(|r| r.effective_threads == 1)
                .map_or(scaling[sweep_base].qps, |r| r.qps);
            for r in &mut scaling[sweep_base..] {
                r.speedup_vs_1 = r.qps / one_worker_qps;
            }

            // Kernel counters from an untimed cold batch on a fresh
            // engine: the join-cache hit rate and the cost of cold
            // adjacency construction a single workload pass pays. One
            // worker — with more, threads racing on cold keys build
            // duplicates and the cumulative build time double-counts the
            // contended wall clock. Best of `REPS` fresh engines, like
            // every timed loop.
            let mut stats: Option<xpe_core::KernelStats> = None;
            for _ in 0..REPS {
                let e = EstimationEngine::new(&summary)
                    .with_threads(1)
                    .with_kernel(kernel);
                e.estimate_batch(&queries);
                let k = e.kernel_stats();
                stats = match stats {
                    Some(prev) if prev.adjacency_build_ms <= k.adjacency_build_ms => Some(prev),
                    _ => Some(k),
                };
            }
            let stats = stats.expect("REPS >= 1");

            // Per-phase breakdown from an instrumented serial pass over
            // the workload (warm caches — the phases, not the adjacency
            // builds, are what this prices). Best total of `REPS` passes.
            let mut phases = None;
            for _ in 0..REPS {
                let est = Estimator::new(&summary).with_kernel(kernel);
                est.set_join_timing(true);
                for q in &queries {
                    std::hint::black_box(est.estimate(q));
                }
                let p = est.join_phase_stats();
                let total = |s: &xpe_core::JoinPhaseStats| {
                    s.plan_ns + s.screen_ns + s.fixpoint_ns + s.finalize_ns
                };
                phases = match phases {
                    Some(prev) if total(&prev) <= total(&p) => Some(prev),
                    _ => Some(p),
                };
            }
            let phases = phases.expect("REPS >= 1");

            println!(
                "  {} [{}]: join cache {}/{} hits ({:.1}%), {} adjacencies \
                 ({} pairs) built in {:.2} ms; phases plan {:.2} ms, \
                 screen {:.2} ms, fixpoint {:.2} ms, finalize {:.2} ms",
                ds.name(),
                kernel.name(),
                stats.join_cache_hits,
                stats.join_cache_hits + stats.join_cache_misses,
                stats.join_cache_hit_rate * 100.0,
                stats.adjacency_builds,
                stats.adjacency_pairs,
                stats.adjacency_build_ms,
                phases.plan_ns as f64 / 1e6,
                phases.screen_ns as f64 / 1e6,
                phases.fixpoint_ns as f64 / 1e6,
                phases.finalize_ns as f64 / 1e6,
            );

            rows.push(Row {
                dataset: ds.name(),
                kernel: kernel.name(),
                queries: queries.len(),
                serial_qps: n / serial,
                batch1_qps: n / batch1,
                batch_auto_qps: n / batch_auto,
                effective_threads: xpe_par::resolve_threads(0),
                build_serial_ms: build_serial * 1e3,
                build_parallel_ms: build_parallel * 1e3,
                join_cache_hit_rate: stats.join_cache_hit_rate,
                adjacency_build_ms: stats.adjacency_build_ms,
                adjacency_builds: stats.adjacency_builds,
                adjacency_pairs: stats.adjacency_pairs,
                plan_ms: phases.plan_ns as f64 / 1e6,
                screen_ms: phases.screen_ns as f64 / 1e6,
                fixpoint_ms: phases.fixpoint_ns as f64 / 1e6,
                finalize_ms: phases.finalize_ns as f64 / 1e6,
            });
        }

        // Production-traffic replay (default kernel, one driving
        // thread): the trace is the §7 workload under Zipf-skewed
        // template popularity. Reps are interleaved round-robin across
        // the mixes; warm mixes keep one engine alive across reps while
        // cold mixes restart it every rep.
        let traces: Vec<_> = TRAFFIC_MIXES
            .iter()
            .map(|spec| {
                generate_traffic(
                    &b.workload,
                    &TrafficConfig {
                        seed: ctx.seed,
                        zipf_s: spec.zipf,
                        ..TrafficConfig::default()
                    },
                )
            })
            .collect();
        let fresh_engine = |spec: &MixSpec| {
            EstimationEngine::new(&summary)
                .with_threads(1)
                .with_estimate_cache_capacity(spec.estimate_cache)
        };
        let mut engines: Vec<EstimationEngine> = TRAFFIC_MIXES.iter().map(fresh_engine).collect();
        for (spec, engine) in TRAFFIC_MIXES.iter().zip(&engines) {
            if spec.warmup {
                // All traces share one template table (skew only changes
                // the request sampling), so touching traces[0]'s
                // templates warms every mix's key set.
                let est = engine.estimator();
                for template in &traces[0].templates {
                    std::hint::black_box(est.estimate(&template.case.query));
                }
            }
        }
        let mut lat: Vec<Vec<u64>> = vec![Vec::new(); TRAFFIC_MIXES.len()];
        let mut secs = vec![0.0f64; TRAFFIC_MIXES.len()];
        for _rep in 0..REPS {
            for (i, spec) in TRAFFIC_MIXES.iter().enumerate() {
                if !spec.warmup {
                    engines[i] = fresh_engine(spec);
                }
                let est = engines[i].estimator();
                let trace = &traces[i];
                let t0 = Instant::now();
                for request in &trace.requests {
                    let q = &trace.templates[request.template].case.query;
                    let t = Instant::now();
                    std::hint::black_box(est.estimate(q));
                    lat[i].push(t.elapsed().as_nanos() as u64);
                }
                secs[i] += t0.elapsed().as_secs_f64();
            }
        }
        for (i, spec) in TRAFFIC_MIXES.iter().enumerate() {
            let stats = engines[i].kernel_stats();
            let mut sorted = std::mem::take(&mut lat[i]);
            sorted.sort_unstable();
            traffic.push(TrafficRow {
                dataset: ds.name(),
                mix: spec.name,
                requests: sorted.len(),
                qps: sorted.len() as f64 / secs[i],
                p50_us: percentile_us(&sorted, 0.50),
                p95_us: percentile_us(&sorted, 0.95),
                p99_us: percentile_us(&sorted, 0.99),
                estimate_cache_hit_rate: stats.estimate_cache_hit_rate,
                join_cache_hit_rate: stats.join_cache_hit_rate,
            });
        }
        let mix_qps = |mix: &str| {
            traffic
                .iter()
                .find(|r| r.dataset == ds.name() && r.mix == mix)
                .map_or(f64::NAN, |r| r.qps)
        };
        println!(
            "  {} traffic: warm zipf vs estimate cache off {:.1}x, \
             warm zipf vs uniform cold {:.1}x",
            ds.name(),
            mix_qps("zipf_warm") / mix_qps("zipf_warm_nocache"),
            mix_qps("zipf_warm") / mix_qps("uniform_cold"),
        );
    }

    print_table(
        "Batched estimation + parallel construction",
        &[
            "Dataset",
            "Kernel",
            "Queries",
            "Serial q/s",
            "Batch(1) q/s",
            "Batch(auto) q/s",
            "Build(1) ms",
            "Build(auto) ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_owned(),
                    r.kernel.to_owned(),
                    r.queries.to_string(),
                    format!("{:.0}", r.serial_qps),
                    format!("{:.0}", r.batch1_qps),
                    format!("{:.0}", r.batch_auto_qps),
                    format!("{:.2}", r.build_serial_ms),
                    format!("{:.2}", r.build_parallel_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    print_table(
        "Production traffic replay (per mix)",
        &[
            "Dataset",
            "Mix",
            "Requests",
            "q/s",
            "p50 us",
            "p95 us",
            "p99 us",
            "Est-cache %",
            "Join %",
        ],
        &traffic
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_owned(),
                    r.mix.to_owned(),
                    r.requests.to_string(),
                    format!("{:.0}", r.qps),
                    format!("{:.2}", r.p50_us),
                    format!("{:.2}", r.p95_us),
                    format!("{:.2}", r.p99_us),
                    format!("{:.1}", r.estimate_cache_hit_rate * 100.0),
                    format!("{:.1}", r.join_cache_hit_rate * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    print_table(
        "Thread scaling (batch estimation)",
        &[
            "Dataset",
            "Kernel",
            "Threads",
            "Effective",
            "q/s",
            "Speedup vs 1",
        ],
        &scaling
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_owned(),
                    r.kernel.to_owned(),
                    if r.threads == 0 {
                        "auto".to_owned()
                    } else {
                        r.threads.to_string()
                    },
                    r.effective_threads.to_string(),
                    format!("{:.0}", r.qps),
                    format!("{:.2}", r.speedup_vs_1),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"attempts\": {}, \"seed\": {}, \"reps\": {REPS}, \"cores\": {cores}, \
         \"parallel_threshold\": {},",
        ctx.scale,
        ctx.attempts,
        ctx.seed,
        SummaryConfig::default().parallel_threshold
    );
    json.push_str("  \"datasets\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"kernel\": \"{}\", \"queries\": {}, \
             \"serial_qps\": {:.1}, \"batch_jobs1_qps\": {:.1}, \
             \"batch_auto_qps\": {:.1}, \"speedup_auto_vs_serial\": {:.2}, \
             \"effective_threads\": {}, \
             \"build_serial_ms\": {:.3}, \"build_parallel_ms\": {:.3}, \
             \"join_cache_hit_rate\": {:.4}, \"adjacency_build_ms\": {:.3}, \
             \"adjacency_builds\": {}, \"adjacency_pairs\": {}, \
             \"plan_ms\": {:.3}, \"screen_ms\": {:.3}, \"fixpoint_ms\": {:.3}, \
             \"finalize_ms\": {:.3}}}",
            json_escape_free(r.dataset),
            json_escape_free(r.kernel),
            r.queries,
            r.serial_qps,
            r.batch1_qps,
            r.batch_auto_qps,
            r.batch_auto_qps / r.serial_qps,
            r.effective_threads,
            r.build_serial_ms,
            r.build_parallel_ms,
            r.join_cache_hit_rate,
            r.adjacency_build_ms,
            r.adjacency_builds,
            r.adjacency_pairs,
            r.plan_ms,
            r.screen_ms,
            r.fixpoint_ms,
            r.finalize_ms,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"traffic\": [\n");
    for (i, r) in traffic.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"mix\": \"{}\", \"requests\": {}, \
             \"qps\": {:.1}, \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
             \"estimate_cache_hit_rate\": {:.4}, \"join_cache_hit_rate\": {:.4}}}",
            json_escape_free(r.dataset),
            json_escape_free(r.mix),
            r.requests,
            r.qps,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.estimate_cache_hit_rate,
            r.join_cache_hit_rate,
        );
        json.push_str(if i + 1 < traffic.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"scaling\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"kernel\": \"{}\", \"threads\": {}, \
             \"effective_threads\": {}, \"qps\": {:.1}, \"speedup_vs_1\": {:.3}}}",
            json_escape_free(r.dataset),
            json_escape_free(r.kernel),
            r.threads,
            r.effective_threads,
            r.qps,
            r.speedup_vs_1,
        );
        json.push_str(if i + 1 < scaling.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out = "results/BENCH_estimation.json";
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\ncould not write {out}: {e}"),
    }
}
