//! Table 2: query workload — positive, deduplicated query counts per class
//! (simple / branch / with order axes), ours vs the paper's.

use xpe_bench::{load, print_table, ExpContext};
use xpe_datagen::Dataset;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "Table 2 reproduction (scale = {}, {} attempts per class; paper: 4000)",
        ctx.scale, ctx.attempts
    );
    let paper: [(&str, u32, u32, u32, u32); 3] = [
        ("SSPlays", 188, 2328, 2516, 1168),
        ("DBLP", 202, 1013, 1215, 646),
        ("XMark", 1358, 2686, 4044, 1654),
    ];
    let mut rows = Vec::new();
    for (i, ds) in Dataset::ALL.into_iter().enumerate() {
        let b = load(&ctx, ds);
        let w = &b.workload;
        let with_order = w.order_branch.len() + w.order_trunk.len();
        rows.push(vec![
            ds.name().to_owned(),
            w.simple.len().to_string(),
            w.branch.len().to_string(),
            (w.simple.len() + w.branch.len()).to_string(),
            with_order.to_string(),
            format!(
                "{} / {} / {} / {}",
                paper[i].1, paper[i].2, paper[i].3, paper[i].4
            ),
        ]);
    }
    print_table(
        "Table 2: query workload",
        &[
            "Dataset",
            "Simple",
            "Branch",
            "Total",
            "WithOrder",
            "paper (S/B/T/O)",
        ],
        &rows,
    );
}
