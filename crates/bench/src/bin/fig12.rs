//! Figure 12: estimation error of order-axis queries with the target in
//! the **branch** part, versus o-histogram memory, one curve per
//! p-histogram variance (0, 1, 5, 10). Expected shape: error falls with
//! o-histogram memory when the p-histogram is accurate; at high p-variance
//! the curves flatten (inaccurate path information caps what better order
//! information can buy — paper §7.3).

use xpe_bench::{order_figure, ExpContext};

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "Figure 12 reproduction (scale = {}; target in branch part)",
        ctx.scale
    );
    order_figure(&ctx, false);
}
