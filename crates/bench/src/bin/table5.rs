//! Table 5: construction cost for the order data — order-information
//! collection time and o-histogram size range / construction time over the
//! variance sweep.

use xpe_bench::{kb, load, print_table, secs, summary_at, ExpContext, O_VARIANCES};
use xpe_datagen::Dataset;

fn main() {
    let ctx = ExpContext::from_env();
    println!("Table 5 reproduction (scale = {})", ctx.scale);
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let mut min_o = usize::MAX;
        let mut max_o = 0usize;
        let mut min_t = f64::MAX;
        let mut max_t = 0.0f64;
        let collect = b.collect_order_secs;
        for v in O_VARIANCES {
            let s = summary_at(&b, 0.0, v);
            let sz = s.sizes();
            min_o = min_o.min(sz.o_histograms);
            max_o = max_o.max(sz.o_histograms);
            let t = s.timings.build_o.as_secs_f64();
            min_t = min_t.min(t);
            max_t = max_t.max(t);
        }
        rows.push(vec![
            ds.name().to_owned(),
            secs(collect),
            format!("{} ~ {} KB", kb(min_o), kb(max_o)),
            format!("{} ~ {}", secs(min_t), secs(max_t)),
        ]);
    }
    print_table(
        "Table 5: construction time for order data",
        &[
            "Dataset",
            "CollectOrderTime",
            "O-HistoSize",
            "O-HistoBuildTime",
        ],
        &rows,
    );
    println!(
        "  paper: SSPlays 2.2s / 1.2~1.8 KB / 2~3ms; DBLP 4574.8s / 7.4~12.7 KB / 20~30ms; \
         XMark 2347.2s / 11~21.3 KB / 1.2~2.1s"
    );
    println!(
        "\n  Shape check: collecting order data costs far more than collecting\n  \
         path data (compare Table 4a), especially for the wide DBLP."
    );
}
