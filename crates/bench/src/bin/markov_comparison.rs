//! Extension experiment (beyond the paper's figures): the proposed
//! path-id method versus the k-order Markov path table (§8's [10, 11]) on
//! simple queries, plus a coverage column showing how much of the full
//! workload each method can answer at all — the Markov model cannot
//! estimate branch or order queries, which is the gap the paper targets.

use xpe_bench::{err, kb, load, print_table, summary_at, workload_error, ExpContext};
use xpe_core::{mean_relative_error, Estimator};
use xpe_datagen::Dataset;
use xpe_markov::MarkovEstimator;

fn main() {
    let ctx = ExpContext::from_env();
    println!("Markov baseline comparison (scale = {})", ctx.scale);
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let s = summary_at(&b, 0.0, 0.0);
        let est = Estimator::new(&s);
        let ours_simple = workload_error(&est, &b.workload.simple);

        for k in [1usize, 2, 3] {
            let markov = MarkovEstimator::build(&b.doc, k);
            let err_simple = mean_relative_error(
                b.workload
                    .simple
                    .iter()
                    .filter_map(|c| markov.estimate(&c.query).map(|e| (e, c.actual))),
            )
            .unwrap_or(f64::NAN);
            let total = b.workload.simple.len()
                + b.workload.branch.len()
                + b.workload.order_branch.len()
                + b.workload.order_trunk.len();
            let covered = b
                .workload
                .simple
                .iter()
                .chain(&b.workload.branch)
                .chain(&b.workload.order_branch)
                .chain(&b.workload.order_trunk)
                .filter(|c| markov.estimate(&c.query).is_some())
                .count();
            rows.push(vec![
                ds.name().to_owned(),
                format!("k={k}"),
                kb(markov.table().size_bytes()),
                err(err_simple),
                err(ours_simple),
                format!("{}/{}", covered, total),
            ]);
        }
    }
    print_table(
        "Proposed (v=0) vs Markov path table, simple queries",
        &[
            "Dataset",
            "Order",
            "Markov(KB)",
            "Err(markov)",
            "Err(ours)",
            "MarkovCoverage",
        ],
        &rows,
    );
    println!(
        "\n  The Markov table only covers simple path queries (the coverage\n  \
         column); branch and order-axis queries need the paper's machinery."
    );
}
