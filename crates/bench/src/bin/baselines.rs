//! Extension experiment: all four estimators side by side on the simple
//! query workload — the proposed path-id method and the three comparator
//! families of the paper's §8 (XSketch, Markov path tables, position
//! histograms) — plus what fraction of the *full* workload each model can
//! answer at all.

use xpe_bench::{err, kb, load, print_table, summary_at, workload_error_engine, ExpContext};
use xpe_core::{mean_relative_error, EstimationEngine};
use xpe_datagen::{Dataset, QueryCase};
use xpe_markov::MarkovEstimator;
use xpe_poshist::PositionEstimator;
use xpe_xsketch::XSketch;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "Baseline comparison on simple queries (scale = {})",
        ctx.scale
    );
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let simple = &b.workload.simple;
        let total_queries = simple.len()
            + b.workload.branch.len()
            + b.workload.order_branch.len()
            + b.workload.order_trunk.len();
        let all: Vec<&QueryCase> = b
            .workload
            .simple
            .iter()
            .chain(&b.workload.branch)
            .chain(&b.workload.order_branch)
            .chain(&b.workload.order_trunk)
            .collect();

        // Proposed method at variance 0, scored through the batch engine.
        let s = summary_at(&b, 0.0, 0.0);
        let engine = EstimationEngine::new(&s).with_threads(ctx.jobs);
        rows.push(vec![
            ds.name().to_owned(),
            "proposed (v=0)".to_owned(),
            kb(s.sizes().path_total() + s.sizes().o_histograms),
            err(workload_error_engine(&engine, simple)),
            format!("{total_queries}/{total_queries}"),
        ]);

        // XSketch at the matched budget.
        let sketch = XSketch::build(&b.doc, s.sizes().path_total());
        let e = mean_relative_error(simple.iter().map(|c| (sketch.estimate(&c.query), c.actual)))
            .unwrap_or(f64::NAN);
        let covered = all
            .iter()
            .filter(|c| !c.query.has_order_constraints())
            .count();
        rows.push(vec![
            ds.name().to_owned(),
            "xsketch".to_owned(),
            kb(sketch.size_bytes()),
            err(e),
            format!("{covered}/{total_queries}"),
        ]);

        // Markov path table, k = 2.
        let markov = MarkovEstimator::build(&b.doc, 2);
        let e = mean_relative_error(
            simple
                .iter()
                .filter_map(|c| markov.estimate(&c.query).map(|v| (v, c.actual))),
        )
        .unwrap_or(f64::NAN);
        let covered = all
            .iter()
            .filter(|c| markov.estimate(&c.query).is_some())
            .count();
        rows.push(vec![
            ds.name().to_owned(),
            "markov (k=2)".to_owned(),
            kb(markov.table().size_bytes()),
            err(e),
            format!("{covered}/{total_queries}"),
        ]);

        // Position histograms, 32×32 grid.
        let pos = PositionEstimator::build(&b.doc, 32);
        let e = mean_relative_error(
            simple
                .iter()
                .filter_map(|c| pos.estimate(&c.query).map(|v| (v, c.actual))),
        )
        .unwrap_or(f64::NAN);
        let covered = all
            .iter()
            .filter(|c| pos.estimate(&c.query).is_some())
            .count();
        rows.push(vec![
            ds.name().to_owned(),
            "poshist (32²)".to_owned(),
            kb(pos.size_bytes()),
            err(e),
            format!("{covered}/{total_queries}"),
        ]);
    }
    print_table(
        "Simple-query error and full-workload coverage per estimator",
        &[
            "Dataset",
            "Estimator",
            "Size(KB)",
            "Err(simple)",
            "Coverage",
        ],
        &rows,
    );
    println!(
        "\n  Position histograms conflate / with // (the paper's §8 critique)\n  \
         and Markov tables cover only simple paths; neither answers order\n  \
         queries. The proposed method covers everything."
    );
}
