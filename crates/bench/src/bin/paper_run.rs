//! One-shot reproduction driver: regenerates every table and figure of the
//! paper in sequence, printing to stdout. Equivalent to running each
//! `tableN`/`figN` binary in turn but sharing dataset bundles, so a full
//! sweep is much faster.
//!
//! ```sh
//! XPE_SCALE=0.1 XPE_ATTEMPTS=4000 cargo run --release -p xpe-bench --bin paper_run
//! ```

use std::time::Instant;

use xpe_bench::{
    err, kb, load, print_table, secs, summary_at, workload_error_engine, workload_error_with,
    DatasetBundle, ExpContext, O_VARIANCES, P_VARIANCES,
};
use xpe_core::EstimationEngine;
use xpe_datagen::Dataset;
use xpe_pathid::PathIdTree;
use xpe_xml::stats::DocumentStats;
use xpe_xsketch::XSketch;

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "Full reproduction run: scale = {}, attempts = {}, seed = {}, jobs = {}",
        ctx.scale, ctx.attempts, ctx.seed, ctx.jobs
    );
    let t0 = Instant::now();
    let bundles: Vec<DatasetBundle> = Dataset::ALL.iter().map(|&d| load(&ctx, d)).collect();
    println!(
        "datasets + workloads ready in {} (workload eval: {})",
        secs(t0.elapsed().as_secs_f64()),
        secs(bundles.iter().map(|b| b.workload_secs).sum())
    );

    table1(&bundles);
    table2(&bundles);
    table3(&bundles);
    tables4_5(&bundles);
    fig9(&bundles);
    fig10(&bundles, ctx.jobs);
    fig11(&bundles, ctx.jobs);
    fig12_13(&bundles, false, ctx.jobs);
    fig12_13(&bundles, true, ctx.jobs);
    println!("\ntotal wall time: {}", secs(t0.elapsed().as_secs_f64()));
}

fn table1(bundles: &[DatasetBundle]) {
    let rows = bundles
        .iter()
        .map(|b| {
            let s = DocumentStats::compute(&b.doc);
            vec![
                b.dataset.name().to_owned(),
                format!("{} KB", kb(s.serialized_bytes)),
                s.distinct_tags.to_string(),
                s.elements.to_string(),
                s.distinct_paths.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Table 1: dataset characteristics",
        &["Dataset", "Size", "#DistTags", "#Eles", "#DistPaths"],
        &rows,
    );
}

fn table2(bundles: &[DatasetBundle]) {
    let rows = bundles
        .iter()
        .map(|b| {
            let w = &b.workload;
            vec![
                b.dataset.name().to_owned(),
                w.simple.len().to_string(),
                w.branch.len().to_string(),
                (w.simple.len() + w.branch.len()).to_string(),
                (w.order_branch.len() + w.order_trunk.len()).to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Table 2: query workload",
        &["Dataset", "Simple", "Branch", "Total", "WithOrder"],
        &rows,
    );
}

fn table3(bundles: &[DatasetBundle]) {
    let rows = bundles
        .iter()
        .map(|b| {
            let lab = &b.labeling;
            let tree = PathIdTree::new(&lab.interner);
            vec![
                b.dataset.name().to_owned(),
                lab.encoding.len().to_string(),
                (lab.interner.width() as usize).div_ceil(8).to_string(),
                lab.interner.len().to_string(),
                kb(lab.encoding.size_bytes()),
                kb(lab.interner.table_size_bytes()),
                kb(tree.size_bytes()),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Table 3: encoding table / pid table / pid binary tree",
        &[
            "Dataset",
            "#DistPaths",
            "PidSize(B)",
            "#DistPid",
            "EncTab(KB)",
            "PidTab(KB)",
            "BinTree(KB)",
        ],
        &rows,
    );
}

fn tables4_5(bundles: &[DatasetBundle]) {
    let mut rows4 = Vec::new();
    let mut rows5 = Vec::new();
    for b in bundles {
        let mut p_range = (usize::MAX, 0usize);
        let mut o_range = (usize::MAX, 0usize);
        let mut times = (b.collect_path_secs, 0.0f64, b.collect_order_secs, 0.0f64);
        let mut budget = 0usize;
        for (&pv, &ov) in P_VARIANCES.iter().zip(O_VARIANCES.iter()) {
            let s = summary_at(b, pv, ov);
            let sz = s.sizes();
            p_range = (
                p_range.0.min(sz.p_histograms),
                p_range.1.max(sz.p_histograms),
            );
            o_range = (
                o_range.0.min(sz.o_histograms),
                o_range.1.max(sz.o_histograms),
            );
            times = (
                times.0,
                times.1.max(s.timings.build_p.as_secs_f64()),
                times.2,
                times.3.max(s.timings.build_o.as_secs_f64()),
            );
            budget = budget.max(sz.path_total());
        }
        let t = Instant::now();
        let sketch = XSketch::build(&b.doc, budget);
        let sketch_time = t.elapsed().as_secs_f64();
        rows4.push(vec![
            b.dataset.name().to_owned(),
            secs(times.0),
            format!("{} ~ {} KB", kb(p_range.0), kb(p_range.1)),
            secs(times.1),
            format!("{} KB", kb(sketch.size_bytes())),
            secs(sketch_time),
        ]);
        rows5.push(vec![
            b.dataset.name().to_owned(),
            secs(times.2),
            format!("{} ~ {} KB", kb(o_range.0), kb(o_range.1)),
            secs(times.3),
        ]);
    }
    print_table(
        "Table 4: path construction (ours vs XSketch at matched budget)",
        &[
            "Dataset",
            "CollectPath",
            "P-HistoSize",
            "P-HistoBuild",
            "XSketchSize",
            "XSketchBuild",
        ],
        &rows4,
    );
    print_table(
        "Table 5: order construction",
        &["Dataset", "CollectOrder", "O-HistoSize", "O-HistoBuild"],
        &rows5,
    );
}

fn fig9(bundles: &[DatasetBundle]) {
    for b in bundles {
        let rows: Vec<Vec<String>> = P_VARIANCES
            .iter()
            .zip(O_VARIANCES.iter())
            .map(|(&pv, &ov)| {
                let s = summary_at(b, pv, ov);
                vec![
                    format!("{pv}"),
                    kb(s.sizes().p_histograms),
                    kb(s.sizes().o_histograms),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 9 ({})", b.dataset.name()),
            &["Variance", "P-Histo (KB)", "O-Histo (KB)"],
            &rows,
        );
    }
}

fn fig10(bundles: &[DatasetBundle], jobs: usize) {
    for b in bundles {
        let all: Vec<_> = b
            .workload
            .simple
            .iter()
            .chain(&b.workload.branch)
            .cloned()
            .collect();
        let rows: Vec<Vec<String>> = P_VARIANCES
            .iter()
            .rev()
            .map(|&pv| {
                let s = summary_at(b, pv, 0.0);
                let engine = EstimationEngine::new(&s).with_threads(jobs);
                vec![
                    format!("{pv}"),
                    kb(s.sizes().p_histograms),
                    err(workload_error_engine(&engine, &b.workload.simple)),
                    err(workload_error_engine(&engine, &b.workload.branch)),
                    err(workload_error_engine(&engine, &all)),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 10 ({})", b.dataset.name()),
            &[
                "P-Var",
                "P-Histo(KB)",
                "Err(simple)",
                "Err(branch)",
                "Err(all)",
            ],
            &rows,
        );
    }
}

fn fig11(bundles: &[DatasetBundle], jobs: usize) {
    for b in bundles {
        let all: Vec<_> = b
            .workload
            .simple
            .iter()
            .chain(&b.workload.branch)
            .cloned()
            .collect();
        let rows: Vec<Vec<String>> = P_VARIANCES
            .iter()
            .rev()
            .map(|&pv| {
                let s = summary_at(b, pv, 0.0);
                let total = s.sizes().path_total();
                let engine = EstimationEngine::new(&s).with_threads(jobs);
                let sketch = XSketch::build(&b.doc, total);
                vec![
                    format!("{pv}"),
                    kb(total),
                    err(workload_error_engine(&engine, &all)),
                    kb(sketch.size_bytes()),
                    err(workload_error_with(&all, |c| sketch.estimate(&c.query))),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 11 ({})", b.dataset.name()),
            &[
                "P-Var",
                "Ours(KB)",
                "Err(ours)",
                "XSketch(KB)",
                "Err(xsketch)",
            ],
            &rows,
        );
    }
}

fn fig12_13(bundles: &[DatasetBundle], trunk: bool, jobs: usize) {
    for b in bundles {
        let cases = if trunk {
            &b.workload.order_trunk
        } else {
            &b.workload.order_branch
        };
        let rows: Vec<Vec<String>> = O_VARIANCES
            .iter()
            .rev()
            .map(|&ov| {
                let mut row = vec![format!("{ov}")];
                let mut mem = String::new();
                for pv in [0.0, 1.0, 5.0, 10.0] {
                    let s = summary_at(b, pv, ov);
                    if pv == 0.0 {
                        mem = kb(s.sizes().o_histograms);
                    }
                    let engine = EstimationEngine::new(&s).with_threads(jobs);
                    row.push(err(workload_error_engine(&engine, cases)));
                }
                row.insert(1, mem);
                row
            })
            .collect();
        print_table(
            &format!(
                "Figure {} ({}): {} queries",
                if trunk { 13 } else { 12 },
                b.dataset.name(),
                cases.len()
            ),
            &["O-Var", "O-Histo(KB)", "p.v=0", "p.v=1", "p.v=5", "p.v=10"],
            &rows,
        );
    }
}
