//! Figure 13: like Figure 12 but with the target in the **trunk** part.
//! Expected shape: lower error than Figure 12 at low p-variance even with
//! coarse o-histograms — Eq. 5 takes the minimum of one order-free and two
//! order-based estimates, so accurate path information compensates for
//! lost order detail (paper §7.3).

use xpe_bench::{order_figure, ExpContext};

fn main() {
    let ctx = ExpContext::from_env();
    println!(
        "Figure 13 reproduction (scale = {}; target in trunk part)",
        ctx.scale
    );
    order_figure(&ctx, true);
}
