//! Extension experiment: error *distributions* (median / p90 / max) per
//! dataset and query class at variance 0. The paper reports averages;
//! optimizers care about tails, and this profile shows where the
//! assumptions (Node Independence, Order Uniformity, recursion-blind pid
//! joins) concentrate their damage.

use xpe_bench::{load, print_table, ExpContext};
use xpe_core::{ErrorStats, Estimator};
use xpe_datagen::{Dataset, QueryCase};

fn main() {
    let ctx = ExpContext::from_env();
    println!("Error profiles at variance 0 (scale = {})", ctx.scale);
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let s = xpe_bench::summary_at(&b, 0.0, 0.0);
        let est = Estimator::new(&s);
        let classes: [(&str, &[QueryCase]); 4] = [
            ("simple", &b.workload.simple),
            ("branch", &b.workload.branch),
            ("order/branch", &b.workload.order_branch),
            ("order/trunk", &b.workload.order_trunk),
        ];
        for (class, cases) in classes {
            let Some(stats) =
                ErrorStats::compute(cases.iter().map(|c| (est.estimate(&c.query), c.actual)))
            else {
                continue;
            };
            rows.push(vec![
                ds.name().to_owned(),
                class.to_owned(),
                stats.count.to_string(),
                format!("{:.3}", stats.mean),
                format!("{:.3}", stats.median),
                format!("{:.3}", stats.p90),
                format!("{:.2}", stats.max),
            ]);
        }
    }
    print_table(
        "Relative-error distribution per class (v = 0)",
        &["Dataset", "Class", "N", "Mean", "Median", "P90", "Max"],
        &rows,
    );
    println!(
        "\n  Reading: a near-zero median with a large max means the residual\n  \
         is concentrated in a few pathological queries (recursive paths on\n  \
         XMark), not spread across the workload."
    );
}
