//! Figure 11: the proposed p-histogram method versus XSketch, error as a
//! function of total memory on queries without order axes. Expected shape:
//! XSketch is competitive at very small budgets; with enough memory the
//! p-histogram (whose floor is the encoding table + pid tree) wins and
//! converges to near-zero error.

use xpe_bench::{
    err, kb, load, print_table, summary_at, workload_error, workload_error_with, ExpContext,
    P_VARIANCES,
};
use xpe_core::Estimator;
use xpe_datagen::Dataset;
use xpe_xsketch::XSketch;

fn main() {
    let ctx = ExpContext::from_env();
    println!("Figure 11 reproduction (scale = {})", ctx.scale);
    for ds in Dataset::ALL {
        let b = load(&ctx, ds);
        let all: Vec<_> = b
            .workload
            .simple
            .iter()
            .chain(&b.workload.branch)
            .cloned()
            .collect();
        let mut rows = Vec::new();
        for &pv in P_VARIANCES.iter().rev() {
            let s = summary_at(&b, pv, 0.0);
            let total = s.sizes().path_total();
            let est = Estimator::new(&s);
            let e_ours = workload_error(&est, &all);

            let sketch = XSketch::build(&b.doc, total);
            let e_sketch = workload_error_with(&all, |c| sketch.estimate(&c.query));
            rows.push(vec![
                format!("{pv}"),
                kb(total),
                err(e_ours),
                kb(sketch.size_bytes()),
                err(e_sketch),
            ]);
        }
        print_table(
            &format!("Figure 11 ({}): p-histogram vs XSketch", ds.name()),
            &[
                "P-Var",
                "OursTotal(KB)",
                "Err(ours)",
                "XSketch(KB)",
                "Err(xsketch)",
            ],
            &rows,
        );
    }
    println!(
        "\n  Shape check: with sufficient memory the proposed method's error\n  \
         drops below XSketch's; XSketch holds up at the smallest budgets."
    );
}
