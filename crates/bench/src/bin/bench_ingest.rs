//! Machine-readable ingest snapshot: DOM build versus the streaming
//! bounded-memory pipeline.
//!
//! Measures, per dataset:
//!
//! * raw tokenizer throughput of [`StreamParser`] (MB/s and events/s);
//! * wall time of the DOM path (`parse_document` + `Summary::build`)
//!   versus `Summary::build_streaming`, best of [`REPS`];
//! * peak-heap proxy of each path via a counting global allocator
//!   (peak live bytes above the phase's starting point) — the number
//!   the streaming pipeline exists to shrink;
//! * byte-identity of the two persisted summaries (asserted, and the
//!   streaming peak must stay below the DOM peak on the largest input).
//!
//! Writes `results/BENCH_ingest.json` (hand-rolled JSON — the workspace
//! carries no serde) and prints the same numbers as a table. Scale/seed
//! come from the usual `XPE_*` variables.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::Instant;

use xpe_bench::{print_table, ExpContext};
use xpe_datagen::{Dataset, DatasetSpec};
use xpe_synopsis::{Summary, SummaryConfig, DEFAULT_PARALLEL_THRESHOLD};
use xpe_xml::{parse_document, to_string, StreamEvent, StreamParser};

/// Repetitions per timing; the best run is reported to damp noise.
const REPS: usize = 3;

/// Live heap bytes right now, maintained by [`CountingAlloc`].
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CURRENT`] since the last reset.
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Wraps the system allocator with live-byte accounting. Layout sizes are
/// exact for alloc/dealloc pairs, so `CURRENT` tracks live bytes and
/// `PEAK` is a faithful peak-heap proxy (allocator slack excluded).
struct CountingAlloc;

fn on_alloc(size: usize) {
    let live = CURRENT.fetch_add(size, Relaxed) + size;
    PEAK.fetch_max(live, Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` once and reports the peak live bytes it added above the heap
/// level at entry, alongside its result.
fn peak_delta<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let base = CURRENT.load(Relaxed);
    PEAK.store(base, Relaxed);
    let r = f();
    (PEAK.load(Relaxed).saturating_sub(base), r)
}

fn best_secs<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    dataset: &'static str,
    xml_bytes: usize,
    elements: u64,
    events: u64,
    tokenize_mbps: f64,
    events_per_sec: f64,
    dom_build_ms: f64,
    stream_build_ms: f64,
    dom_peak_bytes: usize,
    stream_peak_bytes: usize,
}

fn main() {
    let ctx = ExpContext::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let config = SummaryConfig::default();
    println!(
        "Ingest snapshot: scale = {}, seed = {}, cores = {cores}, \
         parallel_threshold = {} elements",
        ctx.scale, ctx.seed, config.parallel_threshold
    );

    let mut rows: Vec<Row> = Vec::new();
    for ds in Dataset::ALL {
        // Serialize the generated tree, then drop it: both pipelines under
        // measurement start from the same raw text.
        let xml = {
            let doc = DatasetSpec {
                dataset: ds,
                scale: ctx.scale,
                seed: ctx.seed,
            }
            .generate();
            to_string(&doc)
        };

        // Raw tokenizer throughput, plus the event/element tallies.
        let (mut elements, mut events) = (0u64, 0u64);
        let tok_secs = best_secs(|| {
            let mut parser = StreamParser::new(xml.as_bytes());
            let mut opens = 0u64;
            while let Some(event) = parser.next_event().expect("dataset XML is well-formed") {
                if matches!(event, StreamEvent::Open { .. }) {
                    opens += 1;
                }
            }
            elements = opens;
            events = parser.events();
            opens
        });

        let dom_build_secs = best_secs(|| {
            let doc = parse_document(&xml).expect("dataset XML is well-formed");
            Summary::build(&doc, config)
        });
        let stream_build_secs =
            best_secs(|| Summary::build_streaming(&xml, config).expect("dataset XML parses"));

        // Peak-heap proxy: one untimed run of each phase. The persisted
        // bytes double as the identity check.
        let (dom_peak, dom_bytes) = peak_delta(|| {
            let doc = parse_document(&xml).expect("dataset XML is well-formed");
            Summary::build(&doc, config).to_bytes()
        });
        let (stream_peak, stream_bytes) = peak_delta(|| {
            Summary::build_streaming(&xml, config)
                .expect("dataset XML parses")
                .to_bytes()
        });
        assert_eq!(
            dom_bytes,
            stream_bytes,
            "streaming summary diverged from DOM summary on {}",
            ds.name()
        );

        println!(
            "  {}: {:.2} MB, {} elements, {} events; tokenizer {:.1} MB/s; \
             build {:.1} ms DOM / {:.1} ms streaming; peak {:.2} MB DOM / {:.2} MB streaming",
            ds.name(),
            xml.len() as f64 / 1e6,
            elements,
            events,
            xml.len() as f64 / 1e6 / tok_secs,
            dom_build_secs * 1e3,
            stream_build_secs * 1e3,
            dom_peak as f64 / 1e6,
            stream_peak as f64 / 1e6,
        );

        rows.push(Row {
            dataset: ds.name(),
            xml_bytes: xml.len(),
            elements,
            events,
            tokenize_mbps: xml.len() as f64 / 1e6 / tok_secs,
            events_per_sec: events as f64 / tok_secs,
            dom_build_ms: dom_build_secs * 1e3,
            stream_build_ms: stream_build_secs * 1e3,
            dom_peak_bytes: dom_peak,
            stream_peak_bytes: stream_peak,
        });
    }

    // The pipeline's reason to exist: on the largest input, streaming must
    // hold strictly less live heap than the DOM path.
    if let Some(largest) = rows.iter().max_by_key(|r| r.xml_bytes) {
        assert!(
            largest.stream_peak_bytes < largest.dom_peak_bytes,
            "streaming peak ({} B) not below DOM peak ({} B) on {}",
            largest.stream_peak_bytes,
            largest.dom_peak_bytes,
            largest.dataset
        );
    }

    print_table(
        "Streaming ingest vs DOM build",
        &[
            "Dataset",
            "XML MB",
            "Tok MB/s",
            "Events/s",
            "DOM ms",
            "Stream ms",
            "DOM peak MB",
            "Stream peak MB",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_owned(),
                    format!("{:.2}", r.xml_bytes as f64 / 1e6),
                    format!("{:.1}", r.tokenize_mbps),
                    format!("{:.0}", r.events_per_sec),
                    format!("{:.2}", r.dom_build_ms),
                    format!("{:.2}", r.stream_build_ms),
                    format!("{:.2}", r.dom_peak_bytes as f64 / 1e6),
                    format!("{:.2}", r.stream_peak_bytes as f64 / 1e6),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"seed\": {}, \"reps\": {REPS}, \"cores\": {cores}, \
         \"parallel_threshold\": {},",
        ctx.scale, ctx.seed, config.parallel_threshold
    );
    json.push_str("  \"datasets\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let threads_used = config.effective_threads(r.elements as usize);
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"xml_bytes\": {}, \"elements\": {}, \
             \"events\": {}, \"tokenize_mbps\": {:.1}, \"events_per_sec\": {:.0}, \
             \"dom_build_ms\": {:.3}, \"stream_build_ms\": {:.3}, \
             \"dom_peak_bytes\": {}, \"stream_peak_bytes\": {}, \
             \"peak_ratio\": {:.3}, \"histogram_threads\": {}, \
             \"identical\": true}}",
            r.dataset,
            r.xml_bytes,
            r.elements,
            r.events,
            r.tokenize_mbps,
            r.events_per_sec,
            r.dom_build_ms,
            r.stream_build_ms,
            r.dom_peak_bytes,
            r.stream_peak_bytes,
            r.stream_peak_bytes as f64 / r.dom_peak_bytes.max(1) as f64,
            threads_used,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out = "results/BENCH_ingest.json";
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\ncould not write {out}: {e}"),
    }
}

const _: () = {
    // The default threshold is part of the recorded experiment setup;
    // keep the JSON meaningful if it ever changes silently.
    assert!(DEFAULT_PARALLEL_THRESHOLD > 0);
};
