//! Shared infrastructure for the experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index); this library provides the
//! common pieces: dataset loading, variance sweeps, error measurement and
//! plain-text table rendering.
//!
//! Scale and workload size are configurable through environment variables
//! so the same binaries serve quick checks and full-scale runs:
//!
//! * `XPE_SCALE` — dataset scale, 1.0 ≈ the paper's corpus sizes
//!   (default 0.05);
//! * `XPE_ATTEMPTS` — query-generation attempts per class (default 1200;
//!   the paper used 4000);
//! * `XPE_SEED` — RNG seed (default 42);
//! * `XPE_JOBS` — worker threads for batched estimation (0 = one per
//!   core, the default).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use xpe_core::{mean_relative_error, EstimationEngine, Estimator};
use xpe_datagen::{generate_workload, Dataset, DatasetSpec, QueryCase, Workload, WorkloadConfig};
use xpe_pathid::Labeling;
use xpe_synopsis::{PathIdFrequencyTable, PathOrderTable, Summary, SummaryConfig};
use xpe_xml::Document;
use xpe_xpath::Query;

/// Experiment-wide knobs, read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct ExpContext {
    /// Dataset scale (1.0 = paper size).
    pub scale: f64,
    /// Query-generation attempts per class.
    pub attempts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for batched estimation (0 = one per core).
    pub jobs: usize,
}

impl ExpContext {
    /// Reads `XPE_SCALE`, `XPE_ATTEMPTS` and `XPE_SEED`.
    pub fn from_env() -> Self {
        fn var<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        ExpContext {
            scale: var("XPE_SCALE", 0.05),
            attempts: var("XPE_ATTEMPTS", 1200),
            seed: var("XPE_SEED", 42),
            jobs: var("XPE_JOBS", 0),
        }
    }
}

/// A dataset instantiated for experiments: document, labeling, workload.
pub struct DatasetBundle {
    /// Which corpus.
    pub dataset: Dataset,
    /// The synthesized document.
    pub doc: Document,
    /// Its path-id labeling.
    pub labeling: Labeling,
    /// The §7 query workload with exact ground truth.
    pub workload: Workload,
    /// Exact pathId-frequency table (cached for variance sweeps).
    pub freq: PathIdFrequencyTable,
    /// Exact path-order table (cached for variance sweeps).
    pub order: PathOrderTable,
    /// Wall-clock seconds spent generating + evaluating the workload.
    pub workload_secs: f64,
    /// Seconds spent collecting the exact pathId-frequency table.
    pub collect_path_secs: f64,
    /// Seconds spent collecting the exact path-order table.
    pub collect_order_secs: f64,
}

/// Generates the document and workload for one dataset.
pub fn load(ctx: &ExpContext, dataset: Dataset) -> DatasetBundle {
    let doc = DatasetSpec {
        dataset,
        scale: ctx.scale,
        seed: ctx.seed,
    }
    .generate();
    let labeling = Labeling::compute(&doc);
    let t0 = Instant::now();
    let workload = generate_workload(
        &doc,
        &labeling.encoding,
        &WorkloadConfig {
            seed: ctx.seed,
            simple_attempts: ctx.attempts,
            branch_attempts: ctx.attempts,
            ..WorkloadConfig::default()
        },
    );
    let workload_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let freq = PathIdFrequencyTable::build(&doc, &labeling);
    let collect_path_secs = t1.elapsed().as_secs_f64();
    let t2 = Instant::now();
    let order = PathOrderTable::build(&doc, &labeling);
    let collect_order_secs = t2.elapsed().as_secs_f64();
    DatasetBundle {
        dataset,
        doc,
        labeling,
        workload,
        freq,
        order,
        workload_secs,
        collect_path_secs,
        collect_order_secs,
    }
}

/// Builds a summary for a bundle at the given variances from the cached
/// exact statistics (only the histograms are rebuilt).
pub fn summary_at(bundle: &DatasetBundle, p_variance: f64, o_variance: f64) -> Summary {
    Summary::from_statistics(
        bundle.doc.tags(),
        &bundle.labeling,
        &bundle.freq,
        &bundle.order,
        SummaryConfig {
            p_variance,
            o_variance,
            ..SummaryConfig::default()
        },
    )
}

/// Mean relative error of the estimator over a set of cases.
pub fn workload_error(est: &Estimator<'_>, cases: &[QueryCase]) -> f64 {
    mean_relative_error(cases.iter().map(|c| (est.estimate(&c.query), c.actual)))
        .unwrap_or(f64::NAN)
}

/// Mean relative error via the batch engine: same result as
/// [`workload_error`] (batching is bit-identical), produced by fanning
/// the cases across the engine's workers.
pub fn workload_error_engine(engine: &EstimationEngine<'_>, cases: &[QueryCase]) -> f64 {
    let queries: Vec<Query> = cases.iter().map(|c| c.query.clone()).collect();
    let estimates = engine.estimate_batch(&queries);
    mean_relative_error(estimates.into_iter().zip(cases.iter().map(|c| c.actual)))
        .unwrap_or(f64::NAN)
}

/// Mean relative error of an arbitrary estimation function.
pub fn workload_error_with<F: FnMut(&QueryCase) -> f64>(cases: &[QueryCase], mut f: F) -> f64 {
    mean_relative_error(cases.iter().map(|c| (f(c), c.actual))).unwrap_or(f64::NAN)
}

/// The p-histogram variance sweep used across figures.
pub const P_VARIANCES: [f64; 8] = [0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0];

/// The o-histogram variance sweep used across figures.
pub const O_VARIANCES: [f64; 8] = [0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0];

/// Renders a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats bytes as KB with two decimals (the paper's unit).
pub fn kb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / 1024.0)
}

/// Formats a fraction as a percentage-style relative error.
pub fn err(e: f64) -> String {
    if e.is_nan() {
        "n/a".to_owned()
    } else {
        format!("{e:.3}")
    }
}

/// Driver shared by Figures 12 and 13: error of order-axis queries versus
/// o-histogram memory, one column per p-histogram variance.
pub fn order_figure(ctx: &ExpContext, trunk: bool) {
    for ds in Dataset::ALL {
        let b = load(ctx, ds);
        let cases = if trunk {
            &b.workload.order_trunk
        } else {
            &b.workload.order_branch
        };
        let mut rows = Vec::new();
        for &ov in O_VARIANCES.iter().rev() {
            let mut row = vec![format!("{ov}")];
            let mut mem = String::new();
            for pv in [0.0, 1.0, 5.0, 10.0] {
                let s = summary_at(&b, pv, ov);
                if pv == 0.0 {
                    mem = kb(s.sizes().o_histograms);
                }
                let engine = EstimationEngine::new(&s).with_threads(ctx.jobs);
                row.push(err(workload_error_engine(&engine, cases)));
            }
            row.insert(1, mem);
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure {} ({}): {} queries, error vs o-histogram memory",
                if trunk { 13 } else { 12 },
                ds.name(),
                cases.len()
            ),
            &["O-Var", "O-Histo(KB)", "p.v=0", "p.v=1", "p.v=5", "p.v=10"],
            &rows,
        );
    }
    println!(
        "\n  Shape check: at p.v=0 the error falls as the o-histogram grows\n  \
         (last row = o-variance 0); higher p-variance curves sit above and\n  \
         flatten out."
    );
}

/// Formats seconds adaptively.
pub fn secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(kb(1024), "1.00");
        assert_eq!(kb(1536), "1.50");
        assert_eq!(err(0.12345), "0.123");
        assert_eq!(err(f64::NAN), "n/a");
        assert_eq!(secs(0.0000005), "0.5 µs");
        assert_eq!(secs(0.005), "5.00 ms");
        assert_eq!(secs(2.5), "2.50 s");
    }

    #[test]
    fn context_defaults_without_env() {
        // Only assert the defaults used when the variables are absent in
        // this test process.
        if std::env::var("XPE_SCALE").is_err() {
            let ctx = ExpContext::from_env();
            assert_eq!(ctx.scale, 0.05);
            assert_eq!(ctx.attempts, 1200);
            assert_eq!(ctx.seed, 42);
        }
        if std::env::var("XPE_JOBS").is_err() {
            assert_eq!(ExpContext::from_env().jobs, 0);
        }
    }

    #[test]
    fn small_bundle_loads_and_scores() {
        let ctx = ExpContext {
            scale: 0.01,
            attempts: 60,
            seed: 7,
            jobs: 2,
        };
        let b = load(&ctx, Dataset::SSPlays);
        assert!(!b.workload.simple.is_empty());
        let s = summary_at(&b, 0.0, 0.0);
        let est = Estimator::new(&s);
        let e = workload_error(&est, &b.workload.simple);
        assert!(e.is_finite());
        assert!(e < 0.05, "simple error {e} at v=0");
        // Batch mode agrees with the serial scorer exactly.
        let engine = EstimationEngine::new(&s).with_threads(ctx.jobs);
        let e_batch = workload_error_engine(&engine, &b.workload.simple);
        assert_eq!(e_batch.to_bits(), e.to_bits());
        let e2 = workload_error_with(&b.workload.simple, |c| c.actual as f64);
        assert_eq!(e2, 0.0, "oracle function has zero error");
    }
}
