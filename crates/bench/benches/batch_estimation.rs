//! Batched-estimation benchmarks: the `EstimationEngine` against the
//! serial per-query loop it replaces.
//!
//! One iteration processes the *whole* workload (≥500 queries), so the
//! numbers compare throughput shapes directly:
//!
//! * `serial_loop` — a plain `Estimator`, one query at a time (each run
//!   still benefits from its own mask cache and scratch);
//! * `batch_jobs1` — the engine pinned to one worker: the batching
//!   machinery without parallelism;
//! * `batch_auto` — the engine with one worker per core;
//! * `cold_cache` / `warm_cache` — engine construction inside vs outside
//!   the timed region, isolating what mask memoization buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xpe_core::{EstimationEngine, Estimator};
use xpe_datagen::{generate_workload, Dataset, DatasetSpec, WorkloadConfig};
use xpe_pathid::Labeling;
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xpath::Query;

const SCALE: f64 = 0.02;

fn workload_queries(ds: Dataset) -> (Summary, Vec<Query>) {
    let doc = DatasetSpec {
        dataset: ds,
        scale: SCALE,
        seed: 7,
    }
    .generate();
    let labeling = Labeling::compute(&doc);
    let workload = generate_workload(
        &doc,
        &labeling.encoding,
        &WorkloadConfig {
            simple_attempts: 600,
            branch_attempts: 600,
            ..WorkloadConfig::default()
        },
    );
    let queries: Vec<Query> = workload
        .simple
        .iter()
        .chain(&workload.branch)
        .chain(&workload.order_branch)
        .chain(&workload.order_trunk)
        .map(|c| c.query.clone())
        .collect();
    (Summary::build(&doc, SummaryConfig::default()), queries)
}

fn bench_batch_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_estimation");
    group.sample_size(10);
    for ds in Dataset::ALL {
        let (summary, queries) = workload_queries(ds);
        if queries.is_empty() {
            continue;
        }
        let label = format!("{}x{}", ds.name(), queries.len());

        group.bench_function(BenchmarkId::new("serial_loop", &label), |b| {
            b.iter(|| {
                let est = Estimator::new(&summary);
                queries.iter().map(|q| est.estimate(q)).sum::<f64>()
            })
        });
        group.bench_function(BenchmarkId::new("batch_jobs1", &label), |b| {
            let engine = EstimationEngine::new(&summary).with_threads(1);
            b.iter(|| engine.estimate_batch(&queries).iter().sum::<f64>())
        });
        group.bench_function(BenchmarkId::new("batch_auto", &label), |b| {
            let engine = EstimationEngine::new(&summary).with_threads(0);
            b.iter(|| engine.estimate_batch(&queries).iter().sum::<f64>())
        });
        group.bench_function(BenchmarkId::new("cold_cache", &label), |b| {
            b.iter(|| {
                let engine = EstimationEngine::new(&summary).with_threads(1);
                engine.estimate_batch(&queries).iter().sum::<f64>()
            })
        });
        group.bench_function(BenchmarkId::new("warm_cache", &label), |b| {
            let engine = EstimationEngine::new(&summary).with_threads(1);
            engine.estimate_batch(&queries); // prime the mask cache
            b.iter(|| engine.estimate_batch(&queries).iter().sum::<f64>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_estimation);
criterion_main!(benches);
