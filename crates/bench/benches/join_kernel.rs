//! Join-kernel microbenchmarks: the naive reference join against the
//! indexed kernel, isolated from the estimation formulas.
//!
//! One iteration runs the raw path join over every workload query on an
//! XMark-scale summary (the recursive, large-vocabulary dataset where
//! candidate lists are longest), so the numbers expose exactly what each
//! kernel layer buys:
//!
//! * `naive` — [`path_join`]: fresh relation masks, nested-loop
//!   containment tests, all edges swept per fixpoint pass;
//! * `worklist` — [`path_join_cached`] with no caches: the worklist
//!   schedule alone;
//! * `masks` — plus the memoized relation masks;
//! * `indexed_cold` — plus containment adjacency, index built inside the
//!   timed region (what the first workload pass pays);
//! * `indexed_warm` — the steady state: warm masks, warm adjacency,
//!   pooled scratch;
//! * `bitmap_cold` / `bitmap_warm` — the bit-parallel kernel
//!   ([`path_join_bitmap`]): dense pid-index bitmaps for the surviving
//!   sets, adjacency-row semi-joins, per-(tag, axis) candidate screens —
//!   cold builds every bitmap structure inside the timed region, warm is
//!   the steady state;
//! * `bitmap_warm_unscreened` — the bitmap kernel with the candidate
//!   pre-screen ablated, isolating what the per-(tag, axis) bitmaps buy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xpe_core::{
    path_join, path_join_bitmap, path_join_bitmap_unscreened, path_join_cached, JoinScratch,
};
use xpe_datagen::{generate_workload, Dataset, DatasetSpec, WorkloadConfig};
use xpe_pathid::{JoinIndexCache, Labeling, RelationMaskCache};
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xpath::Query;

const SCALE: f64 = 0.02;

fn workload_queries(ds: Dataset) -> (Summary, Vec<Query>) {
    let doc = DatasetSpec {
        dataset: ds,
        scale: SCALE,
        seed: 7,
    }
    .generate();
    let labeling = Labeling::compute(&doc);
    let workload = generate_workload(
        &doc,
        &labeling.encoding,
        &WorkloadConfig {
            simple_attempts: 600,
            branch_attempts: 600,
            ..WorkloadConfig::default()
        },
    );
    let queries: Vec<Query> = workload
        .simple
        .iter()
        .chain(&workload.branch)
        .chain(&workload.order_branch)
        .chain(&workload.order_trunk)
        .map(|c| c.query.clone())
        .collect();
    (Summary::build(&doc, SummaryConfig::default()), queries)
}

fn join_all(
    summary: &Summary,
    queries: &[Query],
    masks: Option<&RelationMaskCache>,
    adjacency: Option<&JoinIndexCache>,
    scratch: &mut JoinScratch,
) -> f64 {
    let mut sum = 0.0;
    for q in queries {
        let j = path_join_cached(summary, q, masks, adjacency, Some(scratch));
        sum += j.frequency(q.target());
        scratch.recycle(j);
    }
    sum
}

fn join_all_bitmap(
    summary: &Summary,
    queries: &[Query],
    index: &JoinIndexCache,
    scratch: &mut JoinScratch,
    screened: bool,
) -> f64 {
    let mut sum = 0.0;
    for q in queries {
        let j = if screened {
            path_join_bitmap(summary, q, index, Some(scratch))
        } else {
            path_join_bitmap_unscreened(summary, q, index, Some(scratch))
        };
        sum += j.frequency(q.target());
        scratch.recycle(j);
    }
    sum
}

fn bench_join_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_kernel");
    group.sample_size(10);
    let (summary, queries) = workload_queries(Dataset::XMark);
    assert!(!queries.is_empty());
    let label = format!("xmark_x{}", queries.len());

    group.bench_function(BenchmarkId::new("naive", &label), |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| path_join(&summary, q).frequency(q.target()))
                .sum::<f64>()
        })
    });
    group.bench_function(BenchmarkId::new("worklist", &label), |b| {
        let mut scratch = JoinScratch::new();
        b.iter(|| join_all(&summary, &queries, None, None, &mut scratch))
    });
    group.bench_function(BenchmarkId::new("masks", &label), |b| {
        let masks = RelationMaskCache::new();
        let mut scratch = JoinScratch::new();
        b.iter(|| join_all(&summary, &queries, Some(&masks), None, &mut scratch))
    });
    group.bench_function(BenchmarkId::new("indexed_cold", &label), |b| {
        let masks = RelationMaskCache::new();
        let mut scratch = JoinScratch::new();
        b.iter(|| {
            let index = JoinIndexCache::new();
            join_all(&summary, &queries, Some(&masks), Some(&index), &mut scratch)
        })
    });
    group.bench_function(BenchmarkId::new("indexed_warm", &label), |b| {
        let masks = RelationMaskCache::new();
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        join_all(&summary, &queries, Some(&masks), Some(&index), &mut scratch);
        b.iter(|| join_all(&summary, &queries, Some(&masks), Some(&index), &mut scratch))
    });
    group.bench_function(BenchmarkId::new("bitmap_cold", &label), |b| {
        let mut scratch = JoinScratch::new();
        b.iter(|| {
            let index = JoinIndexCache::new();
            join_all_bitmap(&summary, &queries, &index, &mut scratch, true)
        })
    });
    group.bench_function(BenchmarkId::new("bitmap_warm", &label), |b| {
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        join_all_bitmap(&summary, &queries, &index, &mut scratch, true);
        b.iter(|| join_all_bitmap(&summary, &queries, &index, &mut scratch, true))
    });
    group.bench_function(BenchmarkId::new("bitmap_warm_unscreened", &label), |b| {
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        join_all_bitmap(&summary, &queries, &index, &mut scratch, false);
        b.iter(|| join_all_bitmap(&summary, &queries, &index, &mut scratch, false))
    });
    group.finish();
}

criterion_group!(benches, bench_join_kernel);
criterion_main!(benches);
