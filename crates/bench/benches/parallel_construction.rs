//! Parallel summary-construction benchmarks: serial versus fanned-out
//! per-tag histogram builds (`SummaryConfig::threads`).
//!
//! Covers each phase in isolation (p-histograms, o-histograms) and the
//! end-to-end `Summary::build`, at one worker versus one worker per core.
//! The parallel build is bit-identical to the serial one, so these
//! numbers are pure speedup, not a quality trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xpe_datagen::{Dataset, DatasetSpec};
use xpe_pathid::Labeling;
use xpe_synopsis::{
    OHistogramSet, PHistogramSet, PathIdFrequencyTable, PathOrderTable, Summary, SummaryConfig,
};

const SCALE: f64 = 0.02;

fn bench_parallel_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_construction");
    group.sample_size(10);
    for ds in Dataset::ALL {
        let doc = DatasetSpec {
            dataset: ds,
            scale: SCALE,
            seed: 7,
        }
        .generate();
        let labeling = Labeling::compute(&doc);
        let freq = PathIdFrequencyTable::build(&doc, &labeling);
        let order = PathOrderTable::build(&doc, &labeling);
        let phist = PHistogramSet::build(&freq, 1.0);

        for (mode, threads) in [("serial", 1usize), ("auto", 0usize)] {
            group.bench_function(
                BenchmarkId::new(format!("p_histograms_{mode}"), ds.name()),
                |b| b.iter(|| PHistogramSet::build_with_threads(&freq, 1.0, threads)),
            );
            group.bench_function(
                BenchmarkId::new(format!("o_histograms_{mode}"), ds.name()),
                |b| {
                    b.iter(|| {
                        OHistogramSet::build_with_threads(&order, &phist, doc.tags(), 1.0, threads)
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("summary_build_{mode}"), ds.name()),
                |b| b.iter(|| Summary::build(&doc, SummaryConfig::default().with_threads(threads))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_construction);
criterion_main!(benches);
