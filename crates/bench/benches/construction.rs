//! Construction-time benchmarks (Tables 4 and 5).
//!
//! Measures, per dataset at bench scale: labeling + path collection,
//! p-histogram construction, order collection, o-histogram construction,
//! and XSketch greedy refinement at a matched budget. The paper's claims
//! under test: p-/o-histogram construction is near-free next to statistics
//! collection, and XSketch refinement is orders of magnitude slower than
//! p-histogram construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xpe_datagen::{Dataset, DatasetSpec};
use xpe_pathid::Labeling;
use xpe_synopsis::{
    OHistogramSet, PHistogramSet, PathIdFrequencyTable, PathOrderTable, Summary, SummaryConfig,
};
use xpe_xsketch::XSketch;

const SCALE: f64 = 0.02;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for ds in Dataset::ALL {
        let doc = DatasetSpec {
            dataset: ds,
            scale: SCALE,
            seed: 7,
        }
        .generate();
        let labeling = Labeling::compute(&doc);
        let freq = PathIdFrequencyTable::build(&doc, &labeling);
        let order = PathOrderTable::build(&doc, &labeling);
        let phist = PHistogramSet::build(&freq, 1.0);

        group.bench_function(BenchmarkId::new("collect_path", ds.name()), |b| {
            b.iter(|| {
                let lab = Labeling::compute(&doc);
                PathIdFrequencyTable::build(&doc, &lab)
            })
        });
        group.bench_function(BenchmarkId::new("build_p_histogram", ds.name()), |b| {
            b.iter(|| PHistogramSet::build(&freq, 1.0))
        });
        group.bench_function(BenchmarkId::new("collect_order", ds.name()), |b| {
            b.iter(|| PathOrderTable::build(&doc, &labeling))
        });
        group.bench_function(BenchmarkId::new("build_o_histogram", ds.name()), |b| {
            b.iter(|| OHistogramSet::build(&order, &phist, doc.tags(), 1.0))
        });
        let budget = Summary::build(&doc, SummaryConfig::default())
            .sizes()
            .path_total();
        group.bench_function(BenchmarkId::new("xsketch_refinement", ds.name()), |b| {
            b.iter(|| XSketch::build(&doc, budget))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
