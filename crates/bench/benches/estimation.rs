//! Estimation-latency benchmarks (Figures 10–13 runtime side).
//!
//! Measures the estimator's per-query cost by class (simple / branch /
//! order), the raw path join, and — for contrast — the exact evaluator the
//! workloads are scored against. The point of a synopsis is that
//! estimation cost is independent of document size, so the estimator
//! should beat exact evaluation by a growing margin at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xpe_core::{path_join, Estimator};
use xpe_datagen::{generate_workload, Dataset, DatasetSpec, WorkloadConfig};
use xpe_pathid::Labeling;
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xml::nav::DocOrder;
use xpe_xpath::Evaluator;

const SCALE: f64 = 0.02;

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimation");
    for ds in Dataset::ALL {
        let doc = DatasetSpec {
            dataset: ds,
            scale: SCALE,
            seed: 7,
        }
        .generate();
        let labeling = Labeling::compute(&doc);
        let workload = generate_workload(
            &doc,
            &labeling.encoding,
            &WorkloadConfig {
                simple_attempts: 400,
                branch_attempts: 400,
                ..WorkloadConfig::default()
            },
        );
        let summary = Summary::build(&doc, SummaryConfig::default());
        let est = Estimator::new(&summary);
        let order = DocOrder::new(&doc);
        let eval = Evaluator::new(&doc, &order);

        let classes: [(&str, &[xpe_datagen::QueryCase]); 3] = [
            ("simple", &workload.simple),
            ("branch", &workload.branch),
            ("order", &workload.order_branch),
        ];
        for (class, cases) in classes {
            if cases.is_empty() {
                continue;
            }
            group.bench_function(
                BenchmarkId::new(format!("estimate_{class}"), ds.name()),
                |b| {
                    let mut i = 0;
                    b.iter(|| {
                        let case = &cases[i % cases.len()];
                        i += 1;
                        est.estimate(&case.query)
                    })
                },
            );
        }
        if !workload.branch.is_empty() {
            group.bench_function(BenchmarkId::new("path_join", ds.name()), |b| {
                let mut i = 0;
                b.iter(|| {
                    let case = &workload.branch[i % workload.branch.len()];
                    i += 1;
                    path_join(&summary, &case.query)
                })
            });
            group.bench_function(BenchmarkId::new("exact_eval", ds.name()), |b| {
                let mut i = 0;
                b.iter(|| {
                    let case = &workload.branch[i % workload.branch.len()];
                    i += 1;
                    eval.selectivity(&case.query)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
