//! The XSym'05 claim behind the whole path-encoding scheme: pre-filtering
//! structural-join inputs by surviving path ids speeds up selective
//! queries. Measures `count_path` with and without the pid filter per
//! dataset on a selective and an unselective path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xpe_datagen::{Dataset, DatasetSpec};
use xpe_join::JoinProcessor;
use xpe_pathid::Labeling;
use xpe_xpath::parse_query;

const SCALE: f64 = 0.02;

fn bench_join_filtering(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_filtering");
    let cases = [
        (Dataset::SSPlays, "//PLAY/PERSONAE/PGROUP/GRPDESCR"),
        (Dataset::SSPlays, "//SCENE/SPEECH/LINE"),
        (Dataset::Dblp, "//dblp/phdthesis/school"),
        (Dataset::Dblp, "//dblp/article/author"),
        (Dataset::XMark, "//site/categories/category/description"),
        (Dataset::XMark, "//item/description/parlist/listitem"),
    ];
    for (ds, q) in cases {
        let doc = DatasetSpec {
            dataset: ds,
            scale: SCALE,
            seed: 7,
        }
        .generate();
        let labeling = Labeling::compute(&doc);
        let proc = JoinProcessor::new(&doc, &labeling);
        let query = parse_query(q).unwrap();
        // Sanity: filter must not change the answer.
        assert_eq!(
            proc.count_path(&query, true).map(|s| s.matches),
            proc.count_path(&query, false).map(|s| s.matches),
        );
        for filter in [false, true] {
            let label = format!("{}{}", q, if filter { " +pidfilter" } else { "" });
            group.bench_function(BenchmarkId::new(ds.name(), label), |b| {
                b.iter(|| proc.count_path(&query, filter))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join_filtering);
criterion_main!(benches);
