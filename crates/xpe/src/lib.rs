//! **xpe** — an estimation system for XPath expressions.
//!
//! A complete, from-scratch Rust reproduction of Li, Lee, Hsu & Cong,
//! *An Estimation System for XPath Expressions* (ICDE 2006): selectivity
//! estimation for XPath twig queries **with and without order-based axes**
//! (`following-sibling`, `preceding-sibling`, `following`, `preceding`),
//! backed by a path-encoding labeling scheme, variance-bounded p- and
//! o-histograms, and a compressed path-id binary tree.
//!
//! This facade re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`xml`] | `xpe-xml` | ordered tree model, parser, serializer, stats |
//! | [`xpath`] | `xpe-xpath` | query AST/parser + exact evaluator (oracle) |
//! | [`pathid`] | `xpe-pathid` | encoding table, path ids, binary tree |
//! | [`synopsis`] | `xpe-synopsis` | frequency/order tables, p-/o-histograms |
//! | [`estimator`] | `xpe-core` | path join + estimation formulas (§4–§5) |
//! | [`xsketch`] | `xpe-xsketch` | XSketch comparator (SIGMOD'02) |
//! | [`markov`] | `xpe-markov` | k-order Markov path-table comparator |
//! | [`poshist`] | `xpe-poshist` | position-histogram comparator (EDBT'02) |
//! | [`join`] | `xpe-join` | pid-filtered structural joins (XSym'05 substrate) |
//! | [`datagen`] | `xpe-datagen` | SSPlays/DBLP/XMark generators, workloads |
//! | [`diff`] | `xpe-diff` | differential estimator-vs-exact harness |
//!
//! # Quickstart
//!
//! ```
//! use xpe::prelude::*;
//!
//! // 1. Parse (or generate) an XML document.
//! let doc = xpe::xml::parse_document(
//!     "<lib><book><chap/><chap/></book><book><chap/></book></lib>").unwrap();
//!
//! // 2. Build the summary — this is all the estimator ever sees.
//! let summary = Summary::build(&doc, SummaryConfig::default());
//!
//! // 3. Estimate.
//! let est = Estimator::new(&summary);
//! assert_eq!(est.estimate_str("//book/chap").unwrap(), 3.0);
//!
//! // 4. Compare against the exact answer.
//! let order = DocOrder::new(&doc);
//! let q = parse_query("//book/chap").unwrap();
//! assert_eq!(selectivity(&doc, &order, &q), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xpe_core as estimator;
pub use xpe_datagen as datagen;
pub use xpe_diff as diff;
pub use xpe_join as join;
pub use xpe_markov as markov;
pub use xpe_pathid as pathid;
pub use xpe_poshist as poshist;
pub use xpe_synopsis as synopsis;
pub use xpe_xml as xml;
pub use xpe_xpath as xpath;
pub use xpe_xsketch as xsketch;

/// The most common imports in one place.
pub mod prelude {
    pub use xpe_core::{mean_relative_error, relative_error, EstimationEngine, Estimator};
    pub use xpe_datagen::{Dataset, DatasetSpec, WorkloadConfig};
    pub use xpe_pathid::Labeling;
    pub use xpe_synopsis::{Summary, SummaryConfig};
    pub use xpe_xml::{nav::DocOrder, parse_document, Document, TreeBuilder};
    pub use xpe_xpath::{parse_query, selectivity, Evaluator, Query};
    pub use xpe_xsketch::XSketch;
}
