//! The paper's query-workload generator (§7).
//!
//! * **Simple queries**: random *contiguous* subsequences of root-to-leaf
//!   label paths from the encoding table — child-axis chains with a
//!   leading `//` unless the window starts at the root. (Contiguity is how
//!   the paper's Table 2 counts come out: SSPlays admits only 188 distinct
//!   simple queries from 4000 attempts, which gap subsequences would far
//!   exceed; it also matches every example query in the paper.)
//! * **Branch queries**: two subsequences merged at a common node — a
//!   shared contiguous prefix becomes the trunk, the divergent contiguous
//!   tails become the predicate branch and the continuation.
//! * **Order queries**: branch queries whose two branch heads are direct
//!   children of the branching node, augmented with a
//!   `folls`/`pres` constraint.
//!
//! Duplicates are removed by canonical query text; negative queries (zero
//! exact selectivity) are removed with the exact evaluator, as the paper
//! does "to obtain a reasonable average relative error".

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xpe_pathid::EncodingTable;
use xpe_xml::{nav::DocOrder, Document};
use xpe_xpath::{
    Axis, Evaluator, OrderConstraint, OrderKind, Query, QueryEdge, QueryNode, QueryNodeId,
};

/// Where the evaluation places the target node of an order query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetPlacement {
    /// On the branch part (the second sibling head) — Figure 12.
    Branch,
    /// On the trunk part (the branching node) — Figure 13.
    Trunk,
}

/// One workload entry: the query, its canonical text, and the exact
/// selectivity of its target (the experiments' ground truth).
#[derive(Clone, Debug)]
pub struct QueryCase {
    /// The parsed query.
    pub query: Query,
    /// Canonical text (used for deduplication).
    pub text: String,
    /// Exact selectivity of the target node.
    pub actual: u64,
}

/// The full §7 workload for one dataset.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Positive simple queries.
    pub simple: Vec<QueryCase>,
    /// Positive branch queries.
    pub branch: Vec<QueryCase>,
    /// Positive order queries with the target on the branch part.
    pub order_branch: Vec<QueryCase>,
    /// The same order queries with the target on the trunk part.
    pub order_trunk: Vec<QueryCase>,
}

/// Generation parameters (defaults follow the paper: 4000 attempts per
/// class, sizes 3–12).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of simple-query generation attempts.
    pub simple_attempts: usize,
    /// Number of branch-query generation attempts.
    pub branch_attempts: usize,
    /// Minimum query size in nodes.
    pub min_size: usize,
    /// Maximum query size in nodes.
    pub max_size: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 42,
            simple_attempts: 4000,
            branch_attempts: 4000,
            min_size: 3,
            max_size: 12,
        }
    }
}

/// Generates the workload for `doc` (whose labeling supplied `encoding`).
///
/// Query *generation* is sequential (deterministic RNG); the exact
/// ground-truth *evaluation* — by far the dominant cost on large documents
/// — fans out across available cores with scoped threads.
pub fn generate_workload(
    doc: &Document,
    encoding: &EncodingTable,
    config: &WorkloadConfig,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let order = DocOrder::new(doc);
    let eval = Evaluator::new(doc, &order);
    let paths: Vec<Vec<String>> = encoding
        .iter()
        .map(|(_, p)| p.iter().map(|&t| doc.tags().name(t).to_owned()).collect())
        .collect();

    // Phase 1: generate + dedup candidates per class, sequentially.
    let mut seen = HashSet::new();
    let mut candidates: Vec<(usize, Query, String)> = Vec::new();
    let mut push_candidate = |class: usize, q: Query, seen: &mut HashSet<String>| {
        let text = q.to_string();
        if seen.insert(text.clone()) {
            candidates.push((class, q, text));
        }
    };
    for _ in 0..config.simple_attempts {
        if let Some(q) = gen_simple(&paths, &mut rng, config) {
            push_candidate(0, q, &mut seen);
        }
    }
    for _ in 0..config.branch_attempts {
        let Some(plan) = gen_branch_plan(&paths, &mut rng, config) else {
            continue;
        };
        if let Some(q) = plan.build(None) {
            push_candidate(1, q, &mut seen);
        }
        if plan.direct_heads() {
            let folls = rng.gen_bool(0.5);
            if let Some(q) = plan.build(Some((folls, TargetPlacement::Branch))) {
                push_candidate(2, q, &mut seen);
            }
            if let Some(q) = plan.build(Some((folls, TargetPlacement::Trunk))) {
                push_candidate(3, q, &mut seen);
            }
        }
    }

    // Phase 2: evaluate in parallel chunks (order preserved by index).
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(candidates.len().max(1));
    let chunk = candidates.len().div_ceil(threads).max(1);
    let mut actuals = vec![0u64; candidates.len()];
    std::thread::scope(|scope| {
        for (slot, cand) in actuals.chunks_mut(chunk).zip(candidates.chunks(chunk)) {
            let eval = &eval;
            scope.spawn(move || {
                for (a, (_, q, _)) in slot.iter_mut().zip(cand) {
                    *a = eval.selectivity(q);
                }
            });
        }
    });

    // Phase 3: keep positives, in generation order.
    let mut classes: [Vec<QueryCase>; 4] = Default::default();
    for ((class, query, text), actual) in candidates.into_iter().zip(actuals) {
        if actual == 0 {
            continue;
        }
        classes[class].push(QueryCase {
            query,
            text,
            actual,
        });
    }
    let [simple, branch, order_branch, order_trunk] = classes;
    Workload {
        simple,
        branch,
        order_branch,
        order_trunk,
    }
}

/// A random contiguous window of `path` of length `len`, returned as
/// `(position, label)` pairs.
fn window<'p>(path: &'p [String], len: usize, rng: &mut StdRng) -> Vec<(usize, &'p String)> {
    let start = rng.gen_range(0..=path.len() - len);
    (start..start + len).map(|i| (i, &path[i])).collect()
}

fn gen_simple(paths: &[Vec<String>], rng: &mut StdRng, config: &WorkloadConfig) -> Option<Query> {
    let path = &paths[rng.gen_range(0..paths.len())];
    if path.len() < config.min_size {
        return None;
    }
    let len = rng.gen_range(config.min_size..=config.max_size.min(path.len()));
    let picked = window(path, len, rng);
    let mut nodes = Vec::with_capacity(picked.len());
    for (i, &(_, label)) in picked.iter().enumerate() {
        nodes.push(QueryNode {
            tag: label.clone(),
            edges: Vec::new(),
            constraints: Vec::new(),
        });
        if i > 0 {
            let to = QueryNodeId::from_index(i);
            nodes[i - 1].edges.push(QueryEdge {
                axis: Axis::Child,
                to,
            });
        }
    }
    let root_axis = if picked[0].0 == 0 {
        Axis::Child
    } else {
        Axis::Descendant
    };
    let target = QueryNodeId::from_index(nodes.len() - 1);
    Query::new(nodes, root_axis, target).ok()
}

/// A branch query plan: trunk labels, the branching point, and the two
/// divergent tails with their path positions.
struct BranchPlan {
    /// `(position, label)` of trunk steps, ending at the branching node.
    trunk: Vec<(usize, String)>,
    /// Tail of the first path (the predicate branch).
    branch1: Vec<(usize, String)>,
    /// Tail of the second path (the continuation).
    branch2: Vec<(usize, String)>,
    /// Position of the branching node on both paths.
    fork_pos: usize,
}

impl BranchPlan {
    /// Whether both branch heads sit directly below the branching node
    /// (required for a sibling-order constraint).
    fn direct_heads(&self) -> bool {
        self.branch1.first().map(|&(p, _)| p) == Some(self.fork_pos + 1)
            && self.branch2.first().map(|&(p, _)| p) == Some(self.fork_pos + 1)
    }

    /// Builds the query; `order` is `(folls, placement)` for the order
    /// variant (`folls` false means `pres`).
    fn build(&self, order: Option<(bool, TargetPlacement)>) -> Option<Query> {
        let mut nodes: Vec<QueryNode> = Vec::new();
        let add = |nodes: &mut Vec<QueryNode>, tag: &str| -> usize {
            nodes.push(QueryNode {
                tag: tag.to_owned(),
                edges: Vec::new(),
                constraints: Vec::new(),
            });
            nodes.len() - 1
        };
        let mut prev: Option<(usize, usize)> = None; // (node idx, path pos)
        for (pos, label) in &self.trunk {
            let id = add(&mut nodes, label);
            if let Some((pidx, ppos)) = prev {
                let axis = if *pos == ppos + 1 {
                    Axis::Child
                } else {
                    Axis::Descendant
                };
                nodes[pidx].edges.push(QueryEdge {
                    axis,
                    to: QueryNodeId::from_index(id),
                });
            }
            prev = Some((id, *pos));
        }
        let (fork_idx, fork_pos) = prev.expect("trunk nonempty");
        debug_assert_eq!(fork_pos, self.fork_pos);

        let attach_tail = |nodes: &mut Vec<QueryNode>, tail: &[(usize, String)]| -> usize {
            let mut prev: Option<(usize, usize)> = Some((fork_idx, fork_pos));
            let mut head_idx = 0;
            for (i, (pos, label)) in tail.iter().enumerate() {
                let id = add(nodes, label);
                if i == 0 {
                    head_idx = id;
                }
                let (pidx, ppos) = prev.expect("set");
                let axis = if *pos == ppos + 1 {
                    Axis::Child
                } else {
                    Axis::Descendant
                };
                nodes[pidx].edges.push(QueryEdge {
                    axis,
                    to: QueryNodeId::from_index(id),
                });
                prev = Some((id, *pos));
            }
            head_idx
        };
        let head1 = attach_tail(&mut nodes, &self.branch1);
        let _head2 = attach_tail(&mut nodes, &self.branch2);

        let target = match order {
            Some((_, TargetPlacement::Trunk)) => fork_idx,
            // Branch target: the deepest node of the second branch — the
            // head itself (Eq. 3) when the branch is one step, a node below
            // it (Eq. 4) otherwise. Plain branch queries default to the
            // same node so the order variant differs only by its
            // constraint.
            _ => nodes.len() - 1,
        };
        if let Some((folls, _)) = order {
            let e1 = nodes[fork_idx]
                .edges
                .iter()
                .position(|e| e.to.index() == head1)
                .expect("branch1 attached at fork");
            let e2 = nodes[fork_idx].edges.len() - 1;
            let (before, after) = if folls { (e1, e2) } else { (e2, e1) };
            nodes[fork_idx].constraints.push(OrderConstraint {
                before,
                after,
                kind: OrderKind::Sibling,
            });
        }
        Query::new(nodes, Axis::Descendant, QueryNodeId::from_index(target)).ok()
    }
}

fn gen_branch_plan(
    paths: &[Vec<String>],
    rng: &mut StdRng,
    config: &WorkloadConfig,
) -> Option<BranchPlan> {
    let p1 = &paths[rng.gen_range(0..paths.len())];
    let p2 = &paths[rng.gen_range(0..paths.len())];
    // Common prefix length.
    let common = p1.iter().zip(p2.iter()).take_while(|(a, b)| a == b).count();
    if common == 0 || p1.len() <= common || p2.len() <= common {
        return None;
    }
    // Branch at a node within the common prefix.
    let fork_pos = rng.gen_range(0..common);
    // Trunk: a contiguous run of p1 ending at the fork.
    let trunk_len = rng.gen_range(0..=fork_pos.min(3));
    let trunk: Vec<(usize, String)> = (fork_pos - trunk_len..=fork_pos)
        .map(|i| (i, p1[i].clone()))
        .collect();

    // Tails: contiguous runs of the divergent suffixes, starting at the
    // direct children of the fork (so order variants always exist).
    let tail = |path: &[String], start: usize, rng: &mut StdRng| -> Vec<(usize, String)> {
        let avail = path.len() - start;
        let want = rng.gen_range(1..=avail.min(4));
        (start..start + want)
            .map(|i| (i, path[i].clone()))
            .collect()
    };
    let branch1 = tail(p1, fork_pos + 1, rng);
    let branch2 = tail(p2, fork_pos + 1, rng);
    let total = trunk.len() + branch1.len() + branch2.len();
    if total < config.min_size || total > config.max_size {
        return None;
    }
    // A degenerate merge where both branches start identically collapses
    // into a simple query; skip it.
    if branch1.first().map(|(p, l)| (p, l.as_str()))
        == branch2.first().map(|(p, l)| (p, l.as_str()))
    {
        return None;
    }
    Some(BranchPlan {
        trunk,
        branch1,
        branch2,
        fork_pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_pathid::Labeling;

    fn setup() -> (Document, EncodingTable) {
        let doc = crate::ssplays::generate(0.02, 5);
        let lab = Labeling::compute(&doc);
        (doc, lab.encoding)
    }

    #[test]
    fn workload_is_positive_and_deduplicated() {
        let (doc, enc) = setup();
        let cfg = WorkloadConfig {
            simple_attempts: 300,
            branch_attempts: 300,
            ..WorkloadConfig::default()
        };
        let w = generate_workload(&doc, &enc, &cfg);
        assert!(!w.simple.is_empty(), "no simple queries generated");
        assert!(!w.branch.is_empty(), "no branch queries generated");
        let mut texts = HashSet::new();
        for case in w
            .simple
            .iter()
            .chain(&w.branch)
            .chain(&w.order_branch)
            .chain(&w.order_trunk)
        {
            assert!(case.actual > 0, "negative query kept: {}", case.text);
            assert!(texts.insert(&case.text), "duplicate: {}", case.text);
        }
    }

    #[test]
    fn simple_queries_are_paths_within_size_bounds() {
        let (doc, enc) = setup();
        let cfg = WorkloadConfig {
            simple_attempts: 200,
            branch_attempts: 0,
            ..WorkloadConfig::default()
        };
        let w = generate_workload(&doc, &enc, &cfg);
        for case in &w.simple {
            let q = &case.query;
            assert!(q.len() >= 3 && q.len() <= 12, "{}", case.text);
            for n in q.node_ids() {
                assert!(q.node(n).edges.len() <= 1, "not a path: {}", case.text);
            }
        }
    }

    #[test]
    fn branch_queries_have_a_fork() {
        let (doc, enc) = setup();
        let cfg = WorkloadConfig {
            simple_attempts: 0,
            branch_attempts: 400,
            ..WorkloadConfig::default()
        };
        let w = generate_workload(&doc, &enc, &cfg);
        for case in &w.branch {
            let q = &case.query;
            let has_fork = q.node_ids().any(|n| q.node(n).edges.len() >= 2);
            assert!(has_fork, "no fork: {}", case.text);
        }
    }

    #[test]
    fn order_queries_have_sibling_constraints_and_targets() {
        let (doc, enc) = setup();
        let cfg = WorkloadConfig {
            simple_attempts: 0,
            branch_attempts: 600,
            ..WorkloadConfig::default()
        };
        let w = generate_workload(&doc, &enc, &cfg);
        assert!(!w.order_branch.is_empty(), "no branch-target order queries");
        assert!(!w.order_trunk.is_empty(), "no trunk-target order queries");
        for case in w.order_branch.iter().chain(&w.order_trunk) {
            assert!(case.query.has_order_constraints(), "{}", case.text);
        }
        // Trunk-target cases point at the constrained owner.
        for case in &w.order_trunk {
            let q = &case.query;
            let t = q.target();
            assert!(!q.node(t).constraints.is_empty(), "{}", case.text);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (doc, enc) = setup();
        let cfg = WorkloadConfig {
            simple_attempts: 100,
            branch_attempts: 100,
            ..WorkloadConfig::default()
        };
        let a = generate_workload(&doc, &enc, &cfg);
        let b = generate_workload(&doc, &enc, &cfg);
        assert_eq!(a.simple.len(), b.simple.len());
        assert_eq!(
            a.simple.iter().map(|c| &c.text).collect::<Vec<_>>(),
            b.simple.iter().map(|c| &c.text).collect::<Vec<_>>()
        );
    }
}

#[cfg(test)]
mod cross_dataset_tests {
    use super::*;
    use xpe_pathid::Labeling;

    fn workload_for(dataset: crate::Dataset, scale: f64) -> Workload {
        let doc = crate::DatasetSpec {
            dataset,
            scale,
            seed: 21,
        }
        .generate();
        let lab = Labeling::compute(&doc);
        generate_workload(
            &doc,
            &lab.encoding,
            &WorkloadConfig {
                simple_attempts: 250,
                branch_attempts: 250,
                ..WorkloadConfig::default()
            },
        )
    }

    #[test]
    fn dblp_workload_has_all_classes() {
        let w = workload_for(crate::Dataset::Dblp, 0.003);
        assert!(!w.simple.is_empty());
        assert!(!w.branch.is_empty());
        assert!(!w.order_branch.is_empty());
        assert!(!w.order_trunk.is_empty());
    }

    #[test]
    fn xmark_workload_has_all_classes() {
        let w = workload_for(crate::Dataset::XMark, 0.01);
        assert!(!w.simple.is_empty());
        assert!(!w.branch.is_empty());
        assert!(!w.order_branch.is_empty());
        assert!(!w.order_trunk.is_empty());
    }

    #[test]
    fn simple_queries_are_contiguous_child_chains() {
        let w = workload_for(crate::Dataset::XMark, 0.01);
        for case in &w.simple {
            let q = &case.query;
            for n in q.node_ids() {
                for e in &q.node(n).edges {
                    assert_eq!(e.axis, Axis::Child, "{}", case.text);
                }
            }
        }
    }

    #[test]
    fn order_workload_counts_scale_with_attempts() {
        let doc = crate::DatasetSpec {
            dataset: crate::Dataset::SSPlays,
            scale: 0.02,
            seed: 3,
        }
        .generate();
        let lab = Labeling::compute(&doc);
        let small = generate_workload(
            &doc,
            &lab.encoding,
            &WorkloadConfig {
                simple_attempts: 50,
                branch_attempts: 50,
                ..WorkloadConfig::default()
            },
        );
        let large = generate_workload(
            &doc,
            &lab.encoding,
            &WorkloadConfig {
                simple_attempts: 500,
                branch_attempts: 500,
                ..WorkloadConfig::default()
            },
        );
        assert!(large.simple.len() >= small.simple.len());
        assert!(large.branch.len() >= small.branch.len());
    }
}
