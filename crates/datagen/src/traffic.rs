//! Production-shaped estimation traffic over a §7 workload.
//!
//! The [`workload`](crate::workload) module generates the paper's query
//! population: per-class lists of positive queries with exact
//! selectivities. Production traffic does not sample that population
//! uniformly — a handful of hot templates dominate arrivals, and
//! requests come in bursts, not a smooth stream. This module turns a
//! [`Workload`] into such a trace:
//!
//! * **Zipf-skewed template popularity** — template at popularity rank
//!   `r` (0-based) is drawn with weight `1 / (r + 1)^s`. The exponent
//!   `s ≈ 1.1` matches commonly reported production skew; `s = 0`
//!   degenerates to the uniform mix benchmarks use as the cold
//!   baseline.
//! * **Parameterized class mix** — relative arrival weights for the
//!   simple / branch / order query classes.
//! * **Burst arrival schedule** — geometric burst sizes separated by
//!   exponential gaps, yielding monotone `arrival_us` offsets an
//!   open-loop replayer can honor (closed-loop replayers just ignore
//!   them).
//!
//! Everything is drawn from one seeded [`StdRng`] in a single
//! sequential pass, so a `(workload, config)` pair maps to exactly one
//! trace — byte-identical across runs and machines regardless of how
//! many threads evaluated the workload (the generator never threads).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{QueryCase, Workload};

/// Which workload class a template (and every request drawn from it)
/// belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MixClass {
    /// Linear-path queries.
    Simple,
    /// Branching queries without order constraints.
    Branch,
    /// Order-constrained queries (both target placements).
    Order,
}

impl MixClass {
    /// All classes, in mix-weight order.
    pub const ALL: [MixClass; 3] = [MixClass::Simple, MixClass::Branch, MixClass::Order];

    /// Stable lowercase name for reports and JSON rows.
    pub fn name(&self) -> &'static str {
        match self {
            MixClass::Simple => "simple",
            MixClass::Branch => "branch",
            MixClass::Order => "order",
        }
    }
}

/// Burst arrival shape: geometric burst sizes, exponential inter-burst
/// gaps. `mean_burst = 1` with any gap degenerates to smooth Poisson-ish
/// arrivals.
#[derive(Clone, Debug)]
pub struct BurstConfig {
    /// Mean requests per burst (≥ 1; geometric sizes). Requests within a
    /// burst share one arrival instant.
    pub mean_burst: f64,
    /// Mean microseconds between bursts (exponential).
    pub mean_gap_us: f64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            mean_burst: 8.0,
            mean_gap_us: 500.0,
        }
    }
}

/// Tunables for [`generate_traffic`].
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// RNG seed; one seed maps to exactly one trace.
    pub seed: u64,
    /// Zipf skew exponent `s` over template popularity ranks (0 =
    /// uniform).
    pub zipf_s: f64,
    /// Popularity ranks drawn per class (clamped to what the workload
    /// holds).
    pub templates_per_class: usize,
    /// Trace length in requests.
    pub requests: usize,
    /// Relative arrival weights of (simple, branch, order). A zero
    /// weight — or an empty workload class — removes the class.
    pub mix: (f64, f64, f64),
    /// Arrival schedule shape.
    pub burst: BurstConfig,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 42,
            zipf_s: 1.1,
            templates_per_class: 64,
            requests: 4096,
            mix: (0.5, 0.3, 0.2),
            burst: BurstConfig::default(),
        }
    }
}

/// One popularity-ranked template of the trace.
#[derive(Clone, Debug)]
pub struct Template {
    /// The underlying workload case (query, canonical text, exact
    /// selectivity).
    pub case: QueryCase,
    /// Which class the template came from.
    pub class: MixClass,
    /// Popularity rank within its class (0 = hottest).
    pub rank: usize,
}

/// One arrival: an index into [`TrafficTrace::templates`] plus its
/// schedule offset.
#[derive(Clone, Copy, Debug)]
pub struct TrafficRequest {
    /// Index into the trace's template table.
    pub template: usize,
    /// Microseconds since the trace epoch (monotone non-decreasing).
    pub arrival_us: u64,
}

/// A generated trace: the template table plus the arrival-ordered
/// request sequence.
#[derive(Clone, Debug, Default)]
pub struct TrafficTrace {
    /// Every template the trace draws from.
    pub templates: Vec<Template>,
    /// The arrivals, in schedule order.
    pub requests: Vec<TrafficRequest>,
}

impl TrafficTrace {
    /// The template behind a request.
    pub fn template(&self, request: &TrafficRequest) -> &Template {
        &self.templates[request.template]
    }

    /// Canonical query texts in arrival order — the byte sequence the
    /// determinism contract pins, and what `xpe workload` prints.
    pub fn texts(&self) -> impl Iterator<Item = &str> {
        self.requests
            .iter()
            .map(|r| self.templates[r.template].case.text.as_str())
    }

    /// Requests per class, in [`MixClass::ALL`] order.
    pub fn class_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for r in &self.requests {
            let class = self.templates[r.template].class;
            let slot = MixClass::ALL.iter().position(|c| *c == class).unwrap();
            counts[slot] += 1;
        }
        counts
    }
}

/// Per-class Zipf sampler: cumulative weights over popularity ranks,
/// probed by binary search.
struct ZipfTable {
    /// Template-table indices, hottest first.
    templates: Vec<usize>,
    /// Cumulative weights, parallel to `templates`.
    cdf: Vec<f64>,
}

impl ZipfTable {
    fn new(templates: Vec<usize>, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(templates.len());
        let mut total = 0.0;
        for rank in 0..templates.len() {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        ZipfTable { templates, cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cdf.last().expect("non-empty class");
        let u = rng.gen::<f64>() * total;
        let at = self.cdf.partition_point(|&c| c < u);
        self.templates[at.min(self.templates.len() - 1)]
    }
}

/// Generates a production-shaped trace over `workload` (see the module
/// docs). Deterministic: one `(workload, config)` pair maps to exactly
/// one trace.
pub fn generate_traffic(workload: &Workload, config: &TrafficConfig) -> TrafficTrace {
    let mut trace = TrafficTrace::default();

    // Template table: up to `templates_per_class` per class, popularity
    // rank = position in the workload's (seed-deterministic) order. The
    // order class interleaves both target placements so hot order
    // traffic exercises Eqs. 3–5 alike.
    let mut class_tables: Vec<(f64, ZipfTable)> = Vec::new();
    let order_cases: Vec<&QueryCase> = interleave(&workload.order_branch, &workload.order_trunk);
    let classes: [(MixClass, Vec<&QueryCase>, f64); 3] = [
        (
            MixClass::Simple,
            workload.simple.iter().collect(),
            config.mix.0,
        ),
        (
            MixClass::Branch,
            workload.branch.iter().collect(),
            config.mix.1,
        ),
        (MixClass::Order, order_cases, config.mix.2),
    ];
    for (class, cases, weight) in classes {
        if weight <= 0.0 || cases.is_empty() {
            continue;
        }
        let mut ids = Vec::new();
        for (rank, case) in cases.iter().take(config.templates_per_class).enumerate() {
            ids.push(trace.templates.len());
            trace.templates.push(Template {
                case: (*case).clone(),
                class,
                rank,
            });
        }
        class_tables.push((weight, ZipfTable::new(ids, config.zipf_s)));
    }
    if class_tables.is_empty() || config.requests == 0 {
        return trace;
    }
    let weight_total: f64 = class_tables.iter().map(|(w, _)| *w).sum();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrival_us = 0u64;
    let mut burst_left = 0usize;
    for _ in 0..config.requests {
        if burst_left == 0 {
            // Next burst: exponential gap, geometric size.
            let gap = -config.burst.mean_gap_us.max(0.0) * (1.0 - rng.gen::<f64>()).ln();
            arrival_us = arrival_us.saturating_add(gap as u64);
            burst_left = geometric(&mut rng, config.burst.mean_burst);
        }
        burst_left -= 1;

        let mut pick = rng.gen::<f64>() * weight_total;
        let mut chosen = &class_tables[class_tables.len() - 1].1;
        for (weight, table) in &class_tables {
            if pick < *weight {
                chosen = table;
                break;
            }
            pick -= weight;
        }
        trace.requests.push(TrafficRequest {
            template: chosen.sample(&mut rng),
            arrival_us,
        });
    }
    trace
}

/// Geometric burst size with mean `m` (clamped to ≥ 1).
fn geometric(rng: &mut StdRng, m: f64) -> usize {
    if m <= 1.0 {
        return 1;
    }
    let p = 1.0 / m;
    let u = 1.0 - rng.gen::<f64>();
    1 + (u.ln() / (1.0 - p).ln()) as usize
}

fn interleave<'a>(a: &'a [QueryCase], b: &'a [QueryCase]) -> Vec<&'a QueryCase> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.iter();
    let mut bi = b.iter();
    loop {
        match (ai.next(), bi.next()) {
            (None, None) => return out,
            (x, y) => {
                out.extend(x);
                out.extend(y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use xpe_pathid::Labeling;

    fn workload() -> Workload {
        let doc = crate::ssplays::generate(0.05, 7);
        let lab = Labeling::compute(&doc);
        generate_workload(
            &doc,
            &lab.encoding,
            &WorkloadConfig {
                seed: 11,
                simple_attempts: 400,
                branch_attempts: 400,
                ..WorkloadConfig::default()
            },
        )
    }

    #[test]
    fn same_seed_yields_a_byte_identical_trace() {
        // The workload is generated twice — including its internally
        // parallel exact-evaluation pass — and the traffic generator runs
        // on each copy: the query text sequence and every arrival offset
        // must match byte for byte, whatever thread count evaluated the
        // workload.
        let config = TrafficConfig {
            requests: 512,
            ..TrafficConfig::default()
        };
        let (w1, w2) = (workload(), workload());
        let (t1, t2) = (
            generate_traffic(&w1, &config),
            generate_traffic(&w2, &config),
        );
        assert_eq!(
            t1.texts().collect::<Vec<_>>(),
            t2.texts().collect::<Vec<_>>()
        );
        assert_eq!(
            t1.requests.iter().map(|r| r.arrival_us).collect::<Vec<_>>(),
            t2.requests.iter().map(|r| r.arrival_us).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let w = workload();
        let base = TrafficConfig {
            requests: 512,
            ..TrafficConfig::default()
        };
        let other = TrafficConfig {
            seed: 43,
            ..base.clone()
        };
        let (t1, t2) = (generate_traffic(&w, &base), generate_traffic(&w, &other));
        assert_ne!(
            t1.texts().collect::<Vec<_>>(),
            t2.texts().collect::<Vec<_>>()
        );
    }

    #[test]
    fn zipf_skews_template_popularity() {
        let w = workload();
        let config = TrafficConfig {
            requests: 4096,
            zipf_s: 1.1,
            ..TrafficConfig::default()
        };
        let trace = generate_traffic(&w, &config);
        let mut counts = vec![0usize; trace.templates.len()];
        for r in &trace.requests {
            counts[r.template] += 1;
        }
        // The hottest rank of some class must far exceed the uniform
        // share of its class population.
        let hottest = *counts.iter().max().unwrap();
        let uniform_share = trace.requests.len() / trace.templates.len();
        assert!(
            hottest > 3 * uniform_share,
            "hottest template got {hottest} of {} requests across {} templates",
            trace.requests.len(),
            trace.templates.len()
        );
        // And a uniform trace (s = 0) is measurably flatter.
        let flat = generate_traffic(
            &w,
            &TrafficConfig {
                zipf_s: 0.0,
                ..config
            },
        );
        let mut flat_counts = vec![0usize; flat.templates.len()];
        for r in &flat.requests {
            flat_counts[r.template] += 1;
        }
        assert!(*flat_counts.iter().max().unwrap() < hottest);
    }

    #[test]
    fn mix_weights_control_class_shares() {
        let w = workload();
        let trace = generate_traffic(
            &w,
            &TrafficConfig {
                requests: 2048,
                mix: (1.0, 0.0, 1.0),
                ..TrafficConfig::default()
            },
        );
        let [simple, branch, order] = trace.class_counts();
        assert_eq!(branch, 0, "zero-weight class must not appear");
        assert!(simple > 0);
        assert!(order > 0);
        // Equal weights land within a loose tolerance of each other.
        let ratio = simple as f64 / order as f64;
        assert!((0.6..1.7).contains(&ratio), "simple:order = {ratio}");
    }

    #[test]
    fn arrivals_are_monotone_and_bursty() {
        let w = workload();
        let trace = generate_traffic(
            &w,
            &TrafficConfig {
                requests: 1024,
                ..TrafficConfig::default()
            },
        );
        let mut shared_instant = 0usize;
        for pair in trace.requests.windows(2) {
            assert!(
                pair[0].arrival_us <= pair[1].arrival_us,
                "monotone schedule"
            );
            if pair[0].arrival_us == pair[1].arrival_us {
                shared_instant += 1;
            }
        }
        assert!(shared_instant > 0, "bursts share arrival instants");
    }

    #[test]
    fn canonical_text_matches_the_query_rendering() {
        // The trace's `text` is the cache-key normalizer downstream: it
        // must be exactly the canonical Display rendering of the query.
        let w = workload();
        let trace = generate_traffic(&w, &TrafficConfig::default());
        for t in &trace.templates {
            assert_eq!(t.case.text, t.case.query.to_string());
        }
    }
}
