//! Synthetic DBLP bibliography.
//!
//! Mirrors the DBLP XML: a *shallow and wide* tree — one `dblp` root with
//! hundreds of thousands of publication children, each a flat record of
//! field elements. 31 distinct tags, ~87 distinct root-to-leaf paths
//! (paper Tables 1 and 3). The enormous sibling fan-out under the root is
//! what makes DBLP's order information dominate its path information
//! (paper §7.1). Scale 1.0 ≈ 1.7M elements.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpe_xml::{Document, TreeBuilder};

/// One field of a publication kind: name, inclusion probability, maximum
/// repetitions.
type FieldSpec = (&'static str, f64, usize);

/// Publication kinds with their plausible field sets.
const KINDS: &[(&str, &[FieldSpec])] = &[
    (
        "article",
        &[
            ("author", 0.98, 4),
            ("title", 1.0, 1),
            ("pages", 0.9, 1),
            ("year", 1.0, 1),
            ("volume", 0.9, 1),
            ("journal", 1.0, 1),
            ("number", 0.7, 1),
            ("url", 0.6, 1),
            ("ee", 0.5, 1),
        ],
    ),
    (
        "inproceedings",
        &[
            ("author", 0.98, 5),
            ("title", 1.0, 1),
            ("pages", 0.85, 1),
            ("year", 1.0, 1),
            ("booktitle", 1.0, 1),
            ("url", 0.6, 1),
            ("ee", 0.5, 1),
            ("crossref", 0.7, 1),
        ],
    ),
    (
        "proceedings",
        &[
            ("editor", 0.9, 3),
            ("title", 1.0, 1),
            ("year", 1.0, 1),
            ("booktitle", 0.9, 1),
            ("publisher", 0.9, 1),
            ("isbn", 0.7, 1),
            ("series", 0.5, 1),
            ("volume", 0.5, 1),
            ("url", 0.6, 1),
        ],
    ),
    (
        "book",
        &[
            ("author", 0.8, 3),
            ("editor", 0.3, 2),
            ("title", 1.0, 1),
            ("year", 1.0, 1),
            ("publisher", 1.0, 1),
            ("isbn", 0.8, 1),
            ("pages", 0.3, 1),
            ("school", 0.05, 1),
        ],
    ),
    (
        "incollection",
        &[
            ("author", 0.95, 3),
            ("title", 1.0, 1),
            ("pages", 0.8, 1),
            ("year", 1.0, 1),
            ("booktitle", 1.0, 1),
            ("publisher", 0.6, 1),
            ("crossref", 0.6, 1),
            ("chapter", 0.2, 1),
        ],
    ),
    (
        "phdthesis",
        &[
            ("author", 1.0, 1),
            ("title", 1.0, 1),
            ("year", 1.0, 1),
            ("school", 1.0, 1),
            ("publisher", 0.2, 1),
            ("isbn", 0.2, 1),
            ("month", 0.3, 1),
        ],
    ),
    (
        "mastersthesis",
        &[
            ("author", 1.0, 1),
            ("title", 1.0, 1),
            ("year", 1.0, 1),
            ("school", 1.0, 1),
        ],
    ),
    (
        "www",
        &[
            ("author", 0.7, 3),
            ("title", 1.0, 1),
            ("url", 1.0, 1),
            ("note", 0.4, 1),
            ("cite", 0.2, 5),
        ],
    ),
];

/// Relative frequency of each kind (articles and inproceedings dominate).
const KIND_WEIGHTS: &[f64] = &[0.38, 0.42, 0.03, 0.02, 0.05, 0.02, 0.01, 0.07];

/// Generates a DBLP-like document. `scale` 1.0 ≈ 1.7M elements.
pub fn generate(scale: f64, seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x64_62_6c_70);
    // ~240k records at scale 1 → ~1.7M elements at ~6 fields/record.
    let records = ((240_000.0 * scale).round() as usize).max(1);
    let mut b = TreeBuilder::new();
    b.begin_element("dblp");
    for _ in 0..records {
        let k = pick_kind(&mut rng);
        let (kind, fields) = KINDS[k];
        b.begin_element(kind);
        for &(field, p, max_rep) in fields {
            if rng.gen_bool(p) {
                let reps = if max_rep > 1 {
                    1 + sample_extra(&mut rng, max_rep - 1)
                } else {
                    1
                };
                for _ in 0..reps {
                    b.begin_element(field);
                    b.text("value");
                    b.end_element().expect("balanced");
                }
            }
        }
        b.end_element().expect("balanced");
    }
    b.end_element().expect("balanced");
    b.finish().expect("single root")
}

fn pick_kind(rng: &mut StdRng) -> usize {
    let r: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &w) in KIND_WEIGHTS.iter().enumerate() {
        acc += w;
        if r < acc {
            return i;
        }
    }
    KIND_WEIGHTS.len() - 1
}

/// Geometric-ish extra repetitions (most records have few authors).
fn sample_extra(rng: &mut StdRng, max: usize) -> usize {
    let mut n = 0;
    while n < max && rng.gen_bool(0.45) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xml::stats::DocumentStats;

    #[test]
    fn shape_tracks_dblp() {
        let doc = generate(0.005, 11);
        let s = DocumentStats::compute(&doc);
        // 31 distinct tags in the real snapshot; we model most of them.
        assert!(
            (20..=32).contains(&s.distinct_tags),
            "tags {}",
            s.distinct_tags
        );
        // Shallow: depth 2 (dblp/record/field).
        assert_eq!(s.max_depth, 2);
        // Wide: the root has over a thousand children at this scale.
        assert!(doc.children(doc.root()).len() >= 1_000);
        // Distinct paths in the dozens (paper: 87).
        assert!(
            (30..=95).contains(&s.distinct_paths),
            "paths {}",
            s.distinct_paths
        );
    }

    #[test]
    fn kinds_cover_the_vocabulary() {
        let doc = generate(0.01, 5);
        let names: Vec<&str> = doc.tags().iter().map(|(_, n)| n).collect();
        for kind in ["article", "inproceedings", "phdthesis", "www"] {
            assert!(names.contains(&kind), "missing {kind}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(0.002, 9).len(), generate(0.002, 9).len());
    }
}
