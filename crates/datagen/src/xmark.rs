//! Synthetic XMark auction-site benchmark data.
//!
//! Mirrors the XMark schema (Schmidt et al., VLDB'02): the auction site
//! with regions/items, people, open and closed auctions, categories — and
//! crucially the *recursive* rich-text structure (`description` →
//! `parlist` → `listitem` → `parlist` …, plus nested `bold`/`keyword`/
//! `emph` markup) that gives the real dataset its 74 tags and 344 distinct
//! root-to-leaf paths (paper Tables 1 and 3). Scale 1.0 ≈ 320k elements.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpe_xml::{Document, TreeBuilder};

/// Generates an XMark-like document. `scale` 1.0 ≈ 320k elements.
pub fn generate(scale: f64, seed: u64) -> Document {
    let rng = StdRng::seed_from_u64(seed ^ 0x78_6d_61_72_6b);
    let mut g = Gen {
        b: TreeBuilder::new(),
        rng,
    };
    let g = &mut g;
    // Unit counts calibrated so scale 1.0 lands near 320k elements.
    let items = ((4_350.0 * scale).round() as usize).max(1);
    let people = ((5_100.0 * scale).round() as usize).max(1);
    let open = ((2_400.0 * scale).round() as usize).max(1);
    let closed = ((1_950.0 * scale).round() as usize).max(1);
    let categories = ((200.0 * scale).round() as usize).max(1);

    g.b.begin_element("site");

    g.b.begin_element("regions");
    let regions = [
        "africa",
        "asia",
        "australia",
        "europe",
        "namerica",
        "samerica",
    ];
    for (i, region) in regions.iter().enumerate() {
        g.b.begin_element(region);
        let share = items / regions.len() + usize::from(i < items % regions.len());
        for _ in 0..share {
            g.item();
        }
        g.b.end_element().expect("balanced");
    }
    g.b.end_element().expect("balanced");

    g.b.begin_element("categories");
    for _ in 0..categories {
        g.b.begin_element("category");
        g.leaf("name", "all sorts");
        g.description();
        g.b.end_element().expect("balanced");
    }
    g.b.end_element().expect("balanced");

    g.b.begin_element("catgraph");
    for _ in 0..categories {
        g.b.begin_element("edge");
        g.b.end_element().expect("balanced");
    }
    g.b.end_element().expect("balanced");

    g.b.begin_element("people");
    for _ in 0..people {
        g.person();
    }
    g.b.end_element().expect("balanced");

    g.b.begin_element("open_auctions");
    for _ in 0..open {
        g.open_auction();
    }
    g.b.end_element().expect("balanced");

    g.b.begin_element("closed_auctions");
    for _ in 0..closed {
        g.closed_auction();
    }
    g.b.end_element().expect("balanced");

    g.b.end_element().expect("balanced");
    std::mem::take(&mut g.b).finish().expect("single root")
}

struct Gen {
    b: TreeBuilder,
    rng: StdRng,
}

impl Gen {
    fn leaf(&mut self, tag: &str, text: &str) {
        self.b.begin_element(tag);
        self.b.text(text);
        self.b.end_element().expect("balanced");
    }

    fn item(&mut self) {
        self.b.begin_element("item");
        self.leaf("location", "United States");
        self.leaf("quantity", "1");
        self.leaf("name", "gadget");
        self.b.begin_element("payment");
        self.b.end_element().expect("balanced");
        self.description();
        self.b.begin_element("shipping");
        self.b.end_element().expect("balanced");
        for _ in 0..self.rng.gen_range(1..=3) {
            self.b.begin_element("incategory");
            self.b.end_element().expect("balanced");
        }
        if self.rng.gen_bool(0.6) {
            self.b.begin_element("mailbox");
            for _ in 0..self.rng.gen_range(0..=2) {
                self.b.begin_element("mail");
                self.leaf("from", "a@x");
                self.leaf("to", "b@y");
                self.leaf("date", "01/01/2000");
                self.text_block(0);
                self.b.end_element().expect("balanced");
            }
            self.b.end_element().expect("balanced");
        }
        self.b.end_element().expect("balanced");
    }

    fn person(&mut self) {
        self.b.begin_element("person");
        self.leaf("name", "Alice Bidder");
        self.leaf("emailaddress", "mailto:alice@example");
        if self.rng.gen_bool(0.4) {
            self.leaf("phone", "+1 555 0100");
        }
        if self.rng.gen_bool(0.5) {
            self.b.begin_element("address");
            self.leaf("street", "42 Example St");
            self.leaf("city", "Springfield");
            self.leaf("country", "United States");
            if self.rng.gen_bool(0.3) {
                self.leaf("province", "IL");
            }
            self.leaf("zipcode", "62704");
            self.b.end_element().expect("balanced");
        }
        if self.rng.gen_bool(0.3) {
            self.leaf("homepage", "http://example.org");
        }
        if self.rng.gen_bool(0.3) {
            self.leaf("creditcard", "0000 0000 0000 0000");
        }
        if self.rng.gen_bool(0.6) {
            self.b.begin_element("profile");
            for _ in 0..self.rng.gen_range(0..=3) {
                self.b.begin_element("interest");
                self.b.end_element().expect("balanced");
            }
            if self.rng.gen_bool(0.5) {
                self.leaf("education", "Graduate School");
            }
            if self.rng.gen_bool(0.7) {
                self.leaf("gender", "female");
            }
            self.leaf("business", "Yes");
            if self.rng.gen_bool(0.6) {
                self.leaf("age", "32");
            }
            self.b.end_element().expect("balanced");
        }
        if self.rng.gen_bool(0.4) {
            self.b.begin_element("watches");
            for _ in 0..self.rng.gen_range(1..=3) {
                self.b.begin_element("watch");
                self.b.end_element().expect("balanced");
            }
            self.b.end_element().expect("balanced");
        }
        self.b.end_element().expect("balanced");
    }

    fn open_auction(&mut self) {
        self.b.begin_element("open_auction");
        self.leaf("initial", "17.50");
        if self.rng.gen_bool(0.5) {
            self.leaf("reserve", "35.00");
        }
        for _ in 0..self.rng.gen_range(0..=4) {
            self.b.begin_element("bidder");
            self.leaf("date", "02/02/2000");
            self.leaf("time", "12:00:00");
            self.b.begin_element("personref");
            self.b.end_element().expect("balanced");
            self.leaf("increase", "1.50");
            self.b.end_element().expect("balanced");
        }
        self.leaf("current", "21.50");
        if self.rng.gen_bool(0.3) {
            self.leaf("privacy", "Yes");
        }
        self.b.begin_element("itemref");
        self.b.end_element().expect("balanced");
        self.b.begin_element("seller");
        self.b.end_element().expect("balanced");
        self.annotation();
        self.leaf("quantity", "1");
        self.leaf("type", "Regular");
        self.b.begin_element("interval");
        self.leaf("start", "03/03/2000");
        self.leaf("end", "04/04/2000");
        self.b.end_element().expect("balanced");
        self.b.end_element().expect("balanced");
    }

    fn closed_auction(&mut self) {
        self.b.begin_element("closed_auction");
        self.b.begin_element("seller");
        self.b.end_element().expect("balanced");
        self.b.begin_element("buyer");
        self.b.end_element().expect("balanced");
        self.b.begin_element("itemref");
        self.b.end_element().expect("balanced");
        self.leaf("price", "40.00");
        self.leaf("date", "05/05/2000");
        self.leaf("quantity", "1");
        self.leaf("type", "Regular");
        self.annotation();
        self.b.end_element().expect("balanced");
    }

    fn annotation(&mut self) {
        self.b.begin_element("annotation");
        self.b.begin_element("author");
        self.b.end_element().expect("balanced");
        self.description();
        self.leaf("happiness", "7");
        self.b.end_element().expect("balanced");
    }

    /// `description` is either a flat text block or the recursive parlist.
    fn description(&mut self) {
        self.b.begin_element("description");
        if self.rng.gen_bool(0.35) {
            self.parlist(0);
        } else {
            self.text_block(0);
        }
        self.b.end_element().expect("balanced");
    }

    /// The recursion that gives XMark its long tail of distinct paths.
    ///
    /// As in the real corpus, a `listitem` always carries a `text` block
    /// and only *additionally* nests a `parlist` — so an outer parlist's
    /// path id strictly contains an inner one's, keeping the labeling
    /// informative (single-child chains would alias their ids).
    fn parlist(&mut self, depth: usize) {
        self.b.begin_element("parlist");
        for _ in 0..self.rng.gen_range(1..=3) {
            self.b.begin_element("listitem");
            self.text_block(depth);
            // One level of nesting, rare as in real xmlgen output.
            if depth < 1 && self.rng.gen_bool(0.08) {
                self.parlist(depth + 1);
            }
            self.b.end_element().expect("balanced");
        }
        self.b.end_element().expect("balanced");
    }

    /// `text` with optional nested inline markup.
    fn text_block(&mut self, depth: usize) {
        self.b.begin_element("text");
        self.b.text("an exquisitely crafted item ");
        if depth < 3 {
            for markup in ["bold", "keyword", "emph"] {
                if self.rng.gen_bool(0.25) {
                    self.b.begin_element(markup);
                    self.b.text("rare ");
                    // Nested markup only under a *different* label, so the
                    // inner element's path id never aliases its parent's.
                    if markup != "emph" && self.rng.gen_bool(0.12) {
                        self.b.begin_element("emph");
                        self.b.text("very rare ");
                        self.b.end_element().expect("balanced");
                    }
                    self.b.end_element().expect("balanced");
                }
            }
        }
        self.b.end_element().expect("balanced");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xml::stats::DocumentStats;

    #[test]
    fn shape_tracks_xmark() {
        let doc = generate(0.05, 13);
        let s = DocumentStats::compute(&doc);
        // Paper Table 1: 74 tags. We model the bulk of the schema.
        assert!(
            (55..=76).contains(&s.distinct_tags),
            "tags {}",
            s.distinct_tags
        );
        // Many distinct paths from the recursion (paper Table 3: 344).
        assert!(s.distinct_paths >= 120, "paths {}", s.distinct_paths);
        assert!(s.max_depth >= 7, "depth {}", s.max_depth);
    }

    #[test]
    fn recursion_produces_nested_parlists() {
        let doc = generate(0.05, 17);
        let parlist = doc.tags().get("parlist").expect("parlist exists");
        let nested = doc.node_ids().any(|n| {
            doc.tag(n) == parlist && doc.root_path(n).iter().filter(|&&t| t == parlist).count() > 1
        });
        assert!(nested, "expected at least one nested parlist");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(0.01, 3).len(), generate(0.01, 3).len());
    }
}
