//! Synthetic Shakespeare's Plays corpus (SSPlays).
//!
//! Mirrors the ibiblio Shakespeare XML schema: a very *regular* structure
//! (the paper: "real-world datasets require very limited space due to
//! their regular structures") — 21-ish distinct tags, ~40 distinct
//! root-to-leaf paths, moderate depth. Scale 1.0 targets the corpus' ~180k
//! elements (37 plays).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpe_xml::{Document, TreeBuilder};

/// Generates an SSPlays-like corpus. `scale` 1.0 ≈ 180k elements.
pub fn generate(scale: f64, seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x55_50_4c_41_59);
    let plays = ((37.0 * scale).round() as usize).max(1);
    let mut b = TreeBuilder::new();
    b.begin_element("PLAYS");
    for _ in 0..plays {
        play(&mut b, &mut rng);
    }
    b.end_element().expect("balanced");
    b.finish().expect("single root")
}

fn leaf(b: &mut TreeBuilder, tag: &str, text: &str) {
    b.begin_element(tag);
    b.text(text);
    b.end_element().expect("balanced");
}

fn play(b: &mut TreeBuilder, rng: &mut StdRng) {
    b.begin_element("PLAY");
    leaf(b, "TITLE", "The Tragedy of Example");

    // Front matter.
    b.begin_element("FM");
    for _ in 0..3 {
        leaf(b, "P", "Text placed in the public domain.");
    }
    b.end_element().expect("balanced");

    // Personae.
    b.begin_element("PERSONAE");
    leaf(b, "TITLE", "Dramatis Personae");
    let personas = rng.gen_range(10..=25);
    for _ in 0..personas {
        leaf(b, "PERSONA", "A LORD");
    }
    let groups = rng.gen_range(1..=3);
    for _ in 0..groups {
        b.begin_element("PGROUP");
        for _ in 0..rng.gen_range(2..=4) {
            leaf(b, "PERSONA", "Attendant");
        }
        leaf(b, "GRPDESCR", "attendants on the court.");
        b.end_element().expect("balanced");
    }
    b.end_element().expect("balanced");

    leaf(b, "SCNDESCR", "SCENE: Various parts of the realm.");
    leaf(b, "PLAYSUBT", "EXAMPLE");

    // Occasional induction/prologue, as in the corpus.
    if rng.gen_bool(0.15) {
        b.begin_element("INDUCT");
        scene_body(b, rng, 2);
        b.end_element().expect("balanced");
    }
    if rng.gen_bool(0.2) {
        b.begin_element("PROLOGUE");
        leaf(b, "TITLE", "PROLOGUE");
        for _ in 0..rng.gen_range(4..=10) {
            leaf(b, "LINE", "Two households, both alike in dignity,");
        }
        b.end_element().expect("balanced");
    }

    let acts = rng.gen_range(3..=5);
    for a in 0..acts {
        b.begin_element("ACT");
        leaf(b, "TITLE", &format!("ACT {}", a + 1));
        let scenes = rng.gen_range(2..=7);
        for s in 0..scenes {
            b.begin_element("SCENE");
            leaf(b, "TITLE", &format!("SCENE {}.", s + 1));
            let speeches = rng.gen_range(8..=30);
            scene_body(b, rng, speeches);
            b.end_element().expect("balanced");
        }
        b.end_element().expect("balanced");
    }

    if rng.gen_bool(0.1) {
        b.begin_element("EPILOGUE");
        leaf(b, "TITLE", "EPILOGUE");
        for _ in 0..rng.gen_range(3..=8) {
            leaf(b, "LINE", "If we shadows have offended,");
        }
        b.end_element().expect("balanced");
    }
    b.end_element().expect("balanced");
}

fn scene_body(b: &mut TreeBuilder, rng: &mut StdRng, speeches: usize) {
    leaf(b, "STAGEDIR", "Enter several persons");
    for _ in 0..speeches {
        b.begin_element("SPEECH");
        leaf(b, "SPEAKER", "First Lord");
        if rng.gen_bool(0.05) {
            leaf(b, "SPEAKER", "Second Lord");
        }
        let lines = rng.gen_range(1..=8);
        for _ in 0..lines {
            leaf(b, "LINE", "What country, friends, is this?");
        }
        if rng.gen_bool(0.1) {
            leaf(b, "STAGEDIR", "Aside");
        }
        b.end_element().expect("balanced");
    }
    if rng.gen_bool(0.5) {
        leaf(b, "STAGEDIR", "Exeunt");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xml::stats::DocumentStats;

    #[test]
    fn shape_tracks_the_corpus() {
        let doc = generate(0.05, 7);
        let s = DocumentStats::compute(&doc);
        // ~21 distinct tags (paper Table 1), regular structure.
        assert!(
            (15..=22).contains(&s.distinct_tags),
            "tags {}",
            s.distinct_tags
        );
        // Few distinct paths (paper Table 3: 40).
        assert!(s.distinct_paths <= 60, "paths {}", s.distinct_paths);
        assert!(s.max_depth >= 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.02, 1);
        let b = generate(0.02, 1);
        let c = generate(0.02, 2);
        assert_eq!(a.len(), b.len());
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn scale_controls_size() {
        let small = generate(0.02, 3);
        let large = generate(0.1, 3);
        assert!(large.len() > small.len());
        // Scale 0.02 ≈ 3600 elements; allow wide tolerance.
        assert!(small.len() > 1_000);
    }
}
