//! Synthetic datasets and query workloads for the ICDE'06 experiments.
//!
//! The paper evaluates on Shakespeare's Plays, a DBLP snapshot and XMark
//! (Table 1). Those exact corpora are not redistributable here, so this
//! crate synthesizes documents from their published schemas with matching
//! structural statistics — tag vocabulary, distinct-path counts, depth and
//! fan-out character (see DESIGN.md "Substitutions"):
//!
//! * [`ssplays::generate`] — regular, moderately deep (21 tags, ~40 paths);
//! * [`dblp::generate`] — shallow and extremely wide (31 tags, ~87 paths);
//! * [`xmark::generate`] — large vocabulary with recursion (74 tags,
//!   hundreds of paths).
//!
//! [`generate_workload`] reproduces §7's query generator: random
//! subsequences of encoding-table paths (simple), merged pairs (branch),
//! and sibling-order variants, deduplicated and with negative queries
//! removed using the exact evaluator.
//!
//! # Example
//!
//! ```
//! use xpe_datagen::{Dataset, DatasetSpec};
//!
//! let doc = DatasetSpec { dataset: Dataset::SSPlays, scale: 0.01, seed: 1 }
//!     .generate();
//! assert!(doc.len() > 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dblp;
mod random;
pub mod ssplays;
mod traffic;
mod workload;
pub mod xmark;

pub use random::{random_document, RandomDocConfig};
pub use traffic::{
    generate_traffic, BurstConfig, MixClass, Template, TrafficConfig, TrafficRequest, TrafficTrace,
};
pub use workload::{generate_workload, QueryCase, TargetPlacement, Workload, WorkloadConfig};

use xpe_xml::Document;

/// The three corpora of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Shakespeare's Plays (7.5 MB, 21 tags, 179,690 elements).
    SSPlays,
    /// DBLP (65.2 MB, 31 tags, 1,711,542 elements).
    Dblp,
    /// XMark (20.4 MB, 74 tags, 319,815 elements).
    XMark,
}

impl Dataset {
    /// All three datasets, in the paper's table order.
    pub const ALL: [Dataset; 3] = [Dataset::SSPlays, Dataset::Dblp, Dataset::XMark];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::SSPlays => "SSPlays",
            Dataset::Dblp => "DBLP",
            Dataset::XMark => "XMark",
        }
    }

    /// The element count the paper reports for the real corpus.
    pub fn paper_elements(self) -> u64 {
        match self {
            Dataset::SSPlays => 179_690,
            Dataset::Dblp => 1_711_542,
            Dataset::XMark => 319_815,
        }
    }
}

/// A reproducible dataset instantiation.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Which corpus to synthesize.
    pub dataset: Dataset,
    /// 1.0 targets the paper's element count.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the document.
    pub fn generate(&self) -> Document {
        match self.dataset {
            Dataset::SSPlays => ssplays::generate(self.scale, self.seed),
            Dataset::Dblp => dblp::generate(self.scale, self.seed),
            Dataset::XMark => xmark::generate(self.scale, self.seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_one_percent_tracks_paper_counts() {
        for ds in Dataset::ALL {
            let doc = DatasetSpec {
                dataset: ds,
                scale: 0.01,
                seed: 9,
            }
            .generate();
            let expected = ds.paper_elements() as f64 * 0.01;
            let ratio = doc.len() as f64 / expected;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: {} elements vs expected ~{}",
                ds.name(),
                doc.len(),
                expected
            );
        }
    }
}
