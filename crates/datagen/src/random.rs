//! Unstructured random documents for differential testing.
//!
//! The schema-shaped corpora ([`crate::ssplays`], [`crate::dblp`],
//! [`crate::xmark`]) exercise the estimator on realistic shapes; the
//! differential harness (`xpe-diff`) additionally needs *adversarial*
//! shapes — arbitrary nesting, skewed fan-out, tag reuse across depths —
//! plus a **layered** mode whose documents are non-recursive by
//! construction, so Theorem 4.1's exactness premise holds and the exact
//! evaluator becomes a hard oracle for simple queries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpe_xml::{Document, TreeBuilder};

/// Shape parameters for [`random_document`].
#[derive(Clone, Copy, Debug)]
pub struct RandomDocConfig {
    /// RNG seed; equal configs generate identical documents.
    pub seed: u64,
    /// Maximum element depth below the root (≥ 1).
    pub max_depth: usize,
    /// Maximum children drawn per element (≥ 1).
    pub max_children: usize,
    /// Distinct tag names per depth level (layered) or overall (general).
    pub tag_count: usize,
    /// When `true`, tags are qualified by depth (`d{depth}t{k}`), so no
    /// tag is its own ancestor and the document is provably non-recursive
    /// — the premise of Theorem 4.1 (simple-query estimates are exact at
    /// p-variance 0). When `false`, tags (`t{k}`) repeat across depths
    /// and recursion is likely.
    pub layered: bool,
}

impl Default for RandomDocConfig {
    fn default() -> Self {
        RandomDocConfig {
            seed: 0,
            max_depth: 5,
            max_children: 4,
            tag_count: 3,
            layered: false,
        }
    }
}

/// Generates a random document under `cfg`. Deterministic in `cfg`.
pub fn random_document(cfg: &RandomDocConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5249_4646_444f_4321);
    let max_depth = cfg.max_depth.max(1);
    let max_children = cfg.max_children.max(1);
    let tag_count = cfg.tag_count.max(1);

    let mut b = TreeBuilder::new();
    b.begin_element("root");
    // The root always has at least one child so every document exercises
    // at least one non-trivial path.
    let top = rng.gen_range(1..=max_children);
    for _ in 0..top {
        grow(&mut b, &mut rng, cfg, 1, max_depth, max_children, tag_count);
    }
    b.end_element().expect("balanced");
    b.finish().expect("single root")
}

fn grow(
    b: &mut TreeBuilder,
    rng: &mut StdRng,
    cfg: &RandomDocConfig,
    depth: usize,
    max_depth: usize,
    max_children: usize,
    tag_count: usize,
) {
    let t = rng.gen_range(0..tag_count);
    let tag = if cfg.layered {
        format!("d{depth}t{t}")
    } else {
        format!("t{t}")
    };
    b.begin_element(&tag);
    if depth < max_depth {
        // Bias toward small fan-outs (including none) so documents stay
        // bounded while deep chains remain reachable.
        let children = rng.gen_range(0..=max_children);
        let children = if rng.gen_bool(0.35) { 0 } else { children };
        for _ in 0..children {
            grow(b, rng, cfg, depth + 1, max_depth, max_children, tag_count);
        }
    }
    b.end_element().expect("balanced");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomDocConfig {
            seed: 42,
            ..RandomDocConfig::default()
        };
        let a = random_document(&cfg);
        let b = random_document(&cfg);
        assert_eq!(a.len(), b.len());
        let other = random_document(&RandomDocConfig {
            seed: 43,
            ..RandomDocConfig::default()
        });
        // Different seeds nearly always differ in size; accept equality
        // only if structure also matches trivially (don't flake).
        let _ = other;
    }

    #[test]
    fn layered_documents_are_non_recursive() {
        for seed in 0..20 {
            let cfg = RandomDocConfig {
                seed,
                max_depth: 6,
                max_children: 4,
                tag_count: 3,
                layered: true,
            };
            let doc = random_document(&cfg);
            // No tag may appear on a root-to-node path twice: layered tags
            // embed their depth, so equal tags imply equal depth, and a
            // path visits each depth once.
            let labeling = xpe_pathid::Labeling::compute(&doc);
            for (_, path) in labeling.encoding.iter() {
                let mut seen = std::collections::HashSet::new();
                for tag in path {
                    assert!(seen.insert(tag), "recursive tag in layered doc");
                }
            }
        }
    }

    #[test]
    fn respects_depth_bound() {
        let cfg = RandomDocConfig {
            seed: 7,
            max_depth: 3,
            max_children: 5,
            tag_count: 4,
            layered: false,
        };
        let doc = random_document(&cfg);
        let labeling = xpe_pathid::Labeling::compute(&doc);
        for (_, path) in labeling.encoding.iter() {
            // Root + at most max_depth levels below it.
            assert!(path.len() <= 1 + 3);
        }
    }
}
