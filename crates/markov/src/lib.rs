//! k-order Markov path-frequency baseline.
//!
//! The second family of comparators the paper discusses (§8): "\[11\] stores
//! the frequencies of all paths with length up to k, which are aggregated
//! to estimate the node frequency of longer paths" (McHugh & Widom,
//! VLDB'99; refined by XPathLearner, VLDB'02). The defining limitation the
//! paper leans on: *"These Markov-based solutions are limited to simple
//! path queries."* This crate reproduces that baseline so the harness can
//! show where the path-id method's extra structure pays off.
//!
//! # Model
//!
//! [`MarkovTable::build`] counts every downward label sequence of length
//! ≤ k in the document. A longer child-axis path `t1/…/tn` is estimated by
//! the Markov chain rule:
//!
//! ```text
//! f(t1…tn) ≈ f(t1…tk) · ∏_{i=k+1..n} f(t_{i-k+1}…t_i) / f(t_{i-k+1}…t_{i-1})
//! ```
//!
//! Descendant (`//`) steps have no transition statistic in the model; they
//! are bridged by the unconditional frequency of the next tag, clamped by
//! the flow so far — a documented approximation that keeps the baseline
//! usable on the paper's workloads (which mix `/` and `//`). Branch and
//! order queries are out of model: [`MarkovEstimator::estimate`] returns
//! `None` so harnesses can report coverage honestly.
//!
//! # Example
//!
//! ```
//! use xpe_markov::MarkovEstimator;
//! use xpe_xpath::parse_query;
//!
//! let doc = xpe_xml::fixtures::paper_figure1();
//! let markov = MarkovEstimator::build(&doc, 2);
//! let est = markov.estimate(&parse_query("//A/B/D").unwrap()).unwrap();
//! assert!((est - 4.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use xpe_xml::{Document, TagId};
use xpe_xpath::{Axis, Query};

/// Frequencies of all downward label sequences of length ≤ k.
#[derive(Clone, Debug)]
pub struct MarkovTable {
    k: usize,
    /// Sequence → number of occurrences (node sequences along child edges).
    counts: HashMap<Vec<TagId>, u64>,
    /// Total elements (frequency of the empty context).
    total: u64,
}

impl MarkovTable {
    /// Counts every downward label sequence of length 1..=k.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn build(doc: &Document, k: usize) -> Self {
        assert!(k >= 1, "Markov order must be at least 1");
        let mut counts: HashMap<Vec<TagId>, u64> = HashMap::new();
        // For each node, record the upward windows ending at it.
        let mut paths: Vec<Vec<TagId>> = Vec::with_capacity(doc.len());
        for id in doc.node_ids() {
            let mut path = match doc.parent(id) {
                Some(p) => paths[p.index()].clone(),
                None => Vec::new(),
            };
            path.push(doc.tag(id));
            if path.len() > k {
                path.remove(0);
            }
            for start in 0..path.len() {
                *counts.entry(path[start..].to_vec()).or_insert(0) += 1;
            }
            paths.push(path);
        }
        MarkovTable {
            k,
            counts,
            total: doc.len() as u64,
        }
    }

    /// The Markov order.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Number of stored sequences.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty (never for a built table).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Byte size under the harness accounting: each entry stores one tag id
    /// per position plus a 4-byte count.
    pub fn size_bytes(&self) -> usize {
        self.counts.keys().map(|s| s.len() + 4).sum()
    }

    /// Exact stored frequency of a sequence of length ≤ k, zero if absent.
    pub fn frequency(&self, seq: &[TagId]) -> u64 {
        self.counts.get(seq).copied().unwrap_or(0)
    }

    /// Total number of elements in the summarized document.
    pub fn total_elements(&self) -> u64 {
        self.total
    }
}

/// A Markov table bundled with the tag dictionary needed to resolve query
/// tag names. This is the type harnesses should use.
#[derive(Clone, Debug)]
pub struct MarkovEstimator {
    table: MarkovTable,
    tags: HashMap<String, TagId>,
}

impl MarkovEstimator {
    /// Builds the table and snapshots the tag dictionary.
    pub fn build(doc: &Document, k: usize) -> Self {
        let table = MarkovTable::build(doc, k);
        let tags = doc
            .tags()
            .iter()
            .map(|(id, name)| (name.to_owned(), id))
            .collect();
        MarkovEstimator { table, tags }
    }

    /// Estimates a *simple path* query; `None` when the query is out of
    /// model (branches, order constraints, or tags absent from the
    /// dictionary).
    pub fn estimate(&self, query: &Query) -> Option<f64> {
        if query.has_order_constraints() {
            return None;
        }
        let mut steps: Vec<(Axis, TagId)> = Vec::new();
        let mut axis = query.root_axis();
        let mut cur = query.root();
        loop {
            let node = query.node(cur);
            let tag = *self.tags.get(&node.tag)?;
            steps.push((axis, tag));
            match node.edges.len() {
                0 => break,
                1 => {
                    axis = node.edges[0].axis;
                    cur = node.edges[0].to;
                }
                _ => return None,
            }
        }
        Some(self.estimate_steps(&steps))
    }

    /// Chain-rule estimate over tag-resolved steps.
    fn estimate_steps(&self, steps: &[(Axis, TagId)]) -> f64 {
        let t = &self.table;
        let mut flow;
        let mut window: Vec<TagId>;
        // First step.
        let (first_axis, first_tag) = steps[0];
        let f_first = t.frequency(&[first_tag]) as f64;
        if f_first == 0.0 {
            return 0.0;
        }
        match first_axis {
            Axis::Child => {
                // Anchored at the document root: at most one match, and the
                // root path sequence has length 1.
                flow = 1.0f64.min(f_first);
            }
            _ => flow = f_first,
        }
        window = vec![first_tag];

        for &(axis, tag) in &steps[1..] {
            match axis {
                Axis::Child => {
                    let mut ctx = window.clone();
                    ctx.push(tag);
                    if ctx.len() > t.k {
                        ctx.remove(0);
                    }
                    let den_seq = &ctx[..ctx.len() - 1];
                    let num = t.frequency(&ctx) as f64;
                    let den = t.frequency(den_seq) as f64;
                    if num == 0.0 || den == 0.0 {
                        return 0.0;
                    }
                    flow *= num / den;
                    window = ctx;
                }
                Axis::Descendant => {
                    let f_tag = t.frequency(&[tag]) as f64;
                    if f_tag == 0.0 {
                        return 0.0;
                    }
                    // Bridge the unbounded gap with the unconditional
                    // frequency, clamped by the incoming flow.
                    flow = f_tag.min(flow * f_tag);
                    window = vec![tag];
                }
                _ => unreachable!("order axes rejected earlier"),
            }
        }
        flow
    }

    /// Underlying table (size accounting, diagnostics).
    pub fn table(&self) -> &MarkovTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xpath::parse_query;

    fn fig1() -> Document {
        xpe_xml::fixtures::paper_figure1()
    }

    #[test]
    fn counts_short_sequences_exactly() {
        let doc = fig1();
        let m = MarkovEstimator::build(&doc, 2);
        let t = doc.tags();
        let (a, b, d) = (
            t.get("A").unwrap(),
            t.get("B").unwrap(),
            t.get("D").unwrap(),
        );
        assert_eq!(m.table().frequency(&[a]), 3);
        assert_eq!(m.table().frequency(&[b]), 4);
        assert_eq!(m.table().frequency(&[a, b]), 4);
        assert_eq!(m.table().frequency(&[b, d]), 4);
        assert_eq!(m.table().frequency(&[d]), 4);
    }

    #[test]
    fn chain_rule_estimates_long_child_paths() {
        let doc = fig1();
        let m = MarkovEstimator::build(&doc, 2);
        // f(A/B/D) = f(AB)·f(BD)/f(B) = 4·4/4 = 4 (exact here).
        let q = parse_query("//A/B/D").unwrap();
        assert!((m.estimate(&q).unwrap() - 4.0).abs() < 1e-9);
        // Root-anchored: /Root/A/B = 1·(f(RA)/f(R))·(f(AB)/f(A)) = 3·4/3 = 4.
        let q = parse_query("/Root/A/B").unwrap();
        assert!((m.estimate(&q).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn descendant_steps_bridge_with_unconditional_frequency() {
        let doc = fig1();
        let m = MarkovEstimator::build(&doc, 2);
        let q = parse_query("//Root//E").unwrap();
        let est = m.estimate(&q).unwrap();
        assert!(est > 0.0 && est <= 3.0, "est {est}");
    }

    #[test]
    fn out_of_model_queries_return_none() {
        let doc = fig1();
        let m = MarkovEstimator::build(&doc, 2);
        assert!(m.estimate(&parse_query("//A[/C]/B").unwrap()).is_none());
        assert!(m
            .estimate(&parse_query("//A[/C/folls::B]").unwrap())
            .is_none());
    }

    #[test]
    fn unknown_tags_estimate_zero() {
        let doc = fig1();
        let m = MarkovEstimator::build(&doc, 2);
        assert_eq!(m.estimate(&parse_query("//Zebra").unwrap()), None);
        // Known tags with impossible transition → 0.
        assert_eq!(m.estimate(&parse_query("//D/A").unwrap()), Some(0.0));
    }

    #[test]
    fn higher_order_is_at_least_as_accurate_on_training_paths() {
        let doc = fig1();
        let m1 = MarkovEstimator::build(&doc, 1);
        let m3 = MarkovEstimator::build(&doc, 3);
        let q = parse_query("/Root/A/C/F").unwrap();
        let e3 = m3.estimate(&q).unwrap();
        // k=3 stores Root/A/C and A/C/F windows: exact (=1).
        assert!((e3 - 1.0).abs() < 1e-9, "e3 {e3}");
        // k=1 uses only tag frequencies: much cruder, but defined.
        assert!(m1.estimate(&q).unwrap() >= 0.0);
    }

    #[test]
    fn size_grows_with_order() {
        let doc = fig1();
        let m1 = MarkovEstimator::build(&doc, 1);
        let m3 = MarkovEstimator::build(&doc, 3);
        assert!(m3.table().size_bytes() > m1.table().size_bytes());
        assert!(m1.table().len() >= doc.tags().len());
    }
}
