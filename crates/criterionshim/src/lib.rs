//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal wall-clock benchmark harness exposing the subset of criterion
//! 0.5's API its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] with [`BenchmarkId`], `sample_size`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Differences from upstream, by design: no statistical analysis, no
//! HTML reports, no saved baselines — each benchmark is warmed up, timed
//! over a bounded batch, and reported as mean ns/iteration on stdout.
//! `--test` (as passed by `cargo bench -- --test` and used by CI smoke
//! jobs) runs every benchmark body exactly once without timing; a
//! positional argument filters benchmarks by substring, like upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "-t" => test_mode = true,
                // Flags cargo/criterion pass that this harness ignores.
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_owned()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 100,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed iterations (upstream: number of samples).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark of this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = match self.name.as_str() {
            "" => id.into_benchmark_id().id,
            prefix => format!("{prefix}/{}", id.into_benchmark_id().id),
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut b);
        match b.report {
            _ if self.criterion.test_mode => println!("test {full} ... ok"),
            Some((mean_ns, iters)) => {
                println!("bench: {full:<56} {mean_ns:>12.1} ns/iter ({iters} iters)");
            }
            None => println!("bench: {full} ... no measurement (b.iter never called)"),
        }
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    report: Option<(f64, u64)>,
}

impl Bencher {
    /// Calls `body` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            return;
        }
        // Warm-up: at least 3 calls or 20 ms, whichever is later; the
        // timings also size the measured batch.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(20) {
            black_box(body());
            warmup_iters += 1;
            if warmup_iters >= 10_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Measure: bounded by the sample size and a ~300 ms budget.
        let budget_iters = (0.3 / per_iter.max(1e-9)) as u64;
        let iters = (self.sample_size as u64).min(budget_iters.max(1)).max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        let mean_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
        self.report = Some((mean_ns, iters));
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`] (`&str`, `String`, or the id itself).
pub trait IntoBenchmarkId {
    /// Converts into the id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("join", "dblp").id, "join/dblp");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn bencher_records_in_bench_mode() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 5,
            report: None,
        };
        b.iter(|| black_box(1 + 1));
        let (mean_ns, iters) = b.report.expect("measured");
        assert!(mean_ns >= 0.0);
        assert!((1..=5).contains(&iters));
    }

    #[test]
    fn bencher_test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            sample_size: 100,
            report: None,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.report.is_none());
    }
}
