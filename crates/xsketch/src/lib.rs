//! XSketch baseline — the comparator of the ICDE'06 evaluation.
//!
//! A reimplementation (from the published description) of the
//! graph-structured XML synopsis of Polyzotis & Garofalakis (SIGMOD'02):
//! a label-split graph refined greedily — always splitting the least
//! stable partition by parent — until a byte budget is reached, with
//! estimation by per-edge average child counts and branch independence
//! factors. See DESIGN.md for the substitution notes.
//!
//! XSketch supports simple and branch queries only; order-based axes are
//! outside its model, which is the gap the paper's system fills.
//!
//! # Example
//!
//! ```
//! use xpe_xsketch::XSketch;
//! use xpe_xpath::parse_query;
//!
//! let doc = xpe_xml::fixtures::paper_figure1();
//! let sketch = XSketch::build(&doc, 4096);
//! let est = sketch.estimate(&parse_query("//A/B").unwrap());
//! assert!(est > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimate;
mod graph;

use std::time::{Duration, Instant};

use xpe_xml::{Document, TagInterner};
use xpe_xpath::Query;

pub use graph::{SNode, XSketchGraph};

use estimate::SketchEstimator;
use graph::BuilderState;

/// A built XSketch synopsis ready for estimation.
#[derive(Clone, Debug)]
pub struct XSketch {
    graph: XSketchGraph,
    tags: TagInterner,
    /// Wall-clock cost of the greedy refinement (Table 4's comparison
    /// column).
    pub build_time: Duration,
    /// Number of refinement splits applied.
    pub refinement_steps: usize,
}

impl XSketch {
    /// Builds a synopsis for `doc` within `budget_bytes`.
    ///
    /// Starts from the label-split graph; while the budget allows, splits
    /// the partition with the highest instability score. Each step rescores
    /// every partition, which is what makes XSketch construction expensive —
    /// the behaviour Table 4 of the paper documents.
    pub fn build(doc: &Document, budget_bytes: usize) -> Self {
        let t0 = Instant::now();
        let mut state = BuilderState::label_split(doc);
        let mut steps = 0usize;
        loop {
            if state.graph.size_bytes() >= budget_bytes {
                break;
            }
            // Greedy: score every partition, split the worst.
            let mut best: Option<(u32, f64)> = None;
            for v in 0..state.graph.node_count() as u32 {
                let score = state.instability(v);
                if score > 1e-9 && best.map_or(true, |(_, s)| score > s) {
                    best = Some((v, score));
                }
            }
            let Some((v, _)) = best else { break };
            if !state.split_by_parent(v) {
                // The most unstable partition cannot be split further; try
                // the rest once, then stop.
                let mut any = false;
                for v in 0..state.graph.node_count() as u32 {
                    if state.instability(v) > 1e-9 && state.split_by_parent(v) {
                        any = true;
                        break;
                    }
                }
                if !any {
                    break;
                }
            }
            steps += 1;
            // Defensive bound: refinement cannot exceed the element count.
            if steps > doc.len() {
                break;
            }
        }
        XSketch {
            graph: state.graph,
            tags: doc.tags().clone(),
            build_time: t0.elapsed(),
            refinement_steps: steps,
        }
    }

    /// Estimated selectivity of the target node of `query`.
    ///
    /// Queries with order constraints are outside XSketch's model and
    /// estimate as their order-free counterpart (an upper bound).
    pub fn estimate(&self, query: &Query) -> f64 {
        SketchEstimator::new(&self.graph, &self.tags).estimate(query)
    }

    /// Synopsis byte size.
    pub fn size_bytes(&self) -> usize {
        self.graph.size_bytes()
    }

    /// Number of partitions in the synopsis.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xpath::parse_query;

    #[test]
    fn budget_bounds_size() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let small = XSketch::build(&doc, 1);
        let big = XSketch::build(&doc, usize::MAX);
        assert!(small.node_count() <= big.node_count());
        // The minimal synopsis is the label-split graph.
        assert_eq!(small.node_count(), 7);
    }

    #[test]
    fn refinement_improves_or_preserves_simple_estimates() {
        // Skewed data: refinement separates the two kinds of A.
        let doc = xpe_xml::parse_document(
            "<r><A><B/><B/><B/><B/></A><X><A/></X><X><A/></X><X><A/></X></r>",
        )
        .unwrap();
        let coarse = XSketch::build(&doc, 1);
        let fine = XSketch::build(&doc, usize::MAX);
        assert!(fine.refinement_steps > 0);
        let q = parse_query("//X/A").unwrap();
        let exact = 3.0;
        let err_c = (coarse.estimate(&q) - exact).abs();
        let err_f = (fine.estimate(&q) - exact).abs();
        assert!(err_f <= err_c + 1e-9, "fine {err_f} vs coarse {err_c}");
    }

    #[test]
    fn build_time_is_recorded() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let sketch = XSketch::build(&doc, usize::MAX);
        assert!(sketch.build_time.as_nanos() > 0);
    }
}
