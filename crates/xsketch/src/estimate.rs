//! Selectivity estimation over an XSketch synopsis.
//!
//! Simple and branch twig queries only (no order axes — XSketch predates
//! them, which is exactly the gap the ICDE'06 paper fills). The estimate
//! walks the synopsis graph along the query's root→target path,
//! multiplying per-edge average child counts, and discounts branching
//! predicates with independence factors, as in the original XSketch
//! estimation framework.

use std::collections::HashMap;

use xpe_xml::TagInterner;
use xpe_xpath::{Axis, Query, QueryNodeId};

use crate::graph::{SNodeId, XSketchGraph};

/// Maximum synopsis-path length explored when expanding a `//` step.
const DESCENDANT_DEPTH: usize = 12;

pub(crate) struct SketchEstimator<'g> {
    graph: &'g XSketchGraph,
    tags: &'g TagInterner,
}

impl<'g> SketchEstimator<'g> {
    pub fn new(graph: &'g XSketchGraph, tags: &'g TagInterner) -> Self {
        SketchEstimator { graph, tags }
    }

    /// Estimated selectivity of the query's target node.
    pub fn estimate(&self, query: &Query) -> f64 {
        // Seed: candidate partitions for the query root.
        let Some(root_tag) = self.tags.get(&query.node(query.root()).tag) else {
            return 0.0;
        };
        let mut reach: HashMap<SNodeId, f64> = HashMap::new();
        match query.root_axis() {
            Axis::Child => {
                for &r in &self.graph.roots {
                    if self.graph.nodes[r as usize].label == root_tag {
                        reach.insert(r, self.graph.nodes[r as usize].count as f64);
                    }
                }
            }
            _ => {
                for &v in &self.graph.by_label[root_tag.index()] {
                    reach.insert(v, self.graph.nodes[v as usize].count as f64);
                }
            }
        }
        self.node_estimate(query, query.root(), &reach)
    }

    /// Given `reach` — expected matches of `q` per partition — returns the
    /// estimate of the target inside `q`'s subtree, or of `q` itself.
    fn node_estimate(&self, query: &Query, q: QueryNodeId, reach: &HashMap<SNodeId, f64>) -> f64 {
        // Discount by every branch predicate's satisfaction probability.
        let mut reach = reach.clone();
        let path_edge = self.edge_towards_target(query, q);
        for (i, edge) in query.node(q).edges.iter().enumerate() {
            if Some(i) == path_edge {
                continue;
            }
            for (&v, m) in reach.iter_mut() {
                let frac = self.satisfaction_fraction(query, edge.to, edge.axis, v);
                *m *= frac;
            }
        }
        let Some(pe) = path_edge else {
            // `q` is the target.
            let total: f64 = reach.values().sum();
            let cap: u64 = reach
                .keys()
                .map(|&v| self.graph.nodes[v as usize].count)
                .sum();
            return total.min(cap as f64);
        };
        let edge = query.node(q).edges[pe];
        let next = self.advance(&reach, edge.axis, &query.node(edge.to).tag);
        self.node_estimate(query, edge.to, &next)
    }

    /// The edge of `q` leading toward the target, if the target is below `q`.
    fn edge_towards_target(&self, query: &Query, q: QueryNodeId) -> Option<usize> {
        if q == query.target() {
            return None;
        }
        let path = query.path_to(query.target());
        let pos = path.iter().position(|&n| n == q)?;
        let next = path[pos + 1];
        query.node(q).edges.iter().position(|e| e.to == next)
    }

    /// Pushes per-partition match counts across one query edge.
    fn advance(
        &self,
        reach: &HashMap<SNodeId, f64>,
        axis: Axis,
        tag: &str,
    ) -> HashMap<SNodeId, f64> {
        let Some(tag) = self.tags.get(tag) else {
            return HashMap::new();
        };
        let mut out: HashMap<SNodeId, f64> = HashMap::new();
        match axis {
            Axis::Child => {
                for (&v, &m) in reach {
                    let n_v = self.graph.nodes[v as usize].count as f64;
                    for &(c, pairs) in &self.graph.out[v as usize] {
                        if self.graph.nodes[c as usize].label == tag {
                            *out.entry(c).or_insert(0.0) += m * pairs as f64 / n_v;
                        }
                    }
                }
            }
            Axis::Descendant => {
                // Expand along synopsis paths up to a depth bound,
                // accumulating expected counts at matching partitions.
                let mut frontier: HashMap<SNodeId, f64> = reach.clone();
                for _ in 0..DESCENDANT_DEPTH {
                    let mut next: HashMap<SNodeId, f64> = HashMap::new();
                    for (&v, &m) in &frontier {
                        if m < 1e-12 {
                            continue;
                        }
                        let n_v = self.graph.nodes[v as usize].count as f64;
                        for &(c, pairs) in &self.graph.out[v as usize] {
                            let flow = m * pairs as f64 / n_v;
                            *next.entry(c).or_insert(0.0) += flow;
                            if self.graph.nodes[c as usize].label == tag {
                                *out.entry(c).or_insert(0.0) += flow;
                            }
                        }
                    }
                    if next.is_empty() {
                        break;
                    }
                    frontier = next;
                }
            }
            _ => unreachable!("XSketch handles structural axes only"),
        }
        // Cap per partition: cannot exceed the partition population.
        for (&v, m) in out.iter_mut() {
            let cap = self.graph.nodes[v as usize].count as f64;
            if *m > cap {
                *m = cap;
            }
        }
        out
    }

    /// Probability that an element of partition `v` satisfies the branch
    /// rooted at query node `b` via `axis` (independence assumption).
    fn satisfaction_fraction(&self, query: &Query, b: QueryNodeId, axis: Axis, v: SNodeId) -> f64 {
        let mut seed = HashMap::new();
        seed.insert(v, self.graph.nodes[v as usize].count as f64);
        let reached = self.advance(&seed, axis, &query.node(b).tag);
        // Recursively discount the branch's own predicates.
        let mut total = 0.0;
        for (&c, &m) in &reached {
            let mut m = m;
            for e in &query.node(b).edges {
                let frac = self.satisfaction_fraction(query, e.to, e.axis, c);
                m *= frac;
            }
            total += m;
        }
        let n_v = self.graph.nodes[v as usize].count as f64;
        (total / n_v).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::XSketch;
    use xpe_xpath::parse_query;

    #[test]
    fn label_split_estimates_simple_paths() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let sketch = XSketch::build(&doc, usize::MAX);
        // Exact tag counts.
        assert_eq!(sketch.estimate(&parse_query("//A").unwrap()), 3.0);
        assert_eq!(sketch.estimate(&parse_query("//D").unwrap()), 4.0);
        // Path //B/D: every D is under a B — estimate near 4.
        let est = sketch.estimate(&parse_query("//B/D").unwrap());
        assert!((est - 4.0).abs() < 0.5, "est {est}");
    }

    #[test]
    fn unknown_tag_estimates_zero() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let sketch = XSketch::build(&doc, usize::MAX);
        assert_eq!(sketch.estimate(&parse_query("//Zebra").unwrap()), 0.0);
        assert_eq!(sketch.estimate(&parse_query("//A/Zebra").unwrap()), 0.0);
    }

    #[test]
    fn branch_predicates_discount() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let sketch = XSketch::build(&doc, usize::MAX);
        let plain = sketch.estimate(&parse_query("//$A/B").unwrap());
        let branched = sketch.estimate(&parse_query("//$A[/C/F]/B").unwrap());
        assert!(branched <= plain + 1e-9);
        assert!(branched > 0.0);
    }

    #[test]
    fn root_axis_restricts_to_root_partition() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let sketch = XSketch::build(&doc, usize::MAX);
        assert_eq!(sketch.estimate(&parse_query("/Root").unwrap()), 1.0);
        assert_eq!(sketch.estimate(&parse_query("/A").unwrap()), 0.0);
    }

    #[test]
    fn descendant_axis_expands() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let sketch = XSketch::build(&doc, usize::MAX);
        let est = sketch.estimate(&parse_query("//Root//E").unwrap());
        assert!((est - 3.0).abs() < 0.5, "est {est}");
    }
}
