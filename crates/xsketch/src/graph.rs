//! The XSketch synopsis graph.
//!
//! Reimplementation of the comparator from Polyzotis & Garofalakis,
//! *Statistical Synopses for Graph-Structured XML Databases* (SIGMOD'02),
//! in the tree-structured form the ICDE'06 paper benchmarks against:
//!
//! * the synopsis is a graph whose nodes are *partitions* of elements
//!   sharing a label, annotated with element counts; edges carry
//!   parent-child pair counts;
//! * construction starts from the **label-split graph** (one node per
//!   label) and greedily refines: the node whose incident edges are least
//!   *stable* (per-parent child counts vary most) is split by its elements'
//!   parent partitions, until a byte budget is exhausted;
//! * estimation multiplies per-edge average child counts along synopsis
//!   paths, with independence factors for branch predicates.

use std::collections::HashMap;

use xpe_xml::{Document, TagId};

/// Index of a synopsis node (partition).
pub(crate) type SNodeId = u32;

/// One partition of same-label elements.
#[derive(Clone, Debug)]
pub struct SNode {
    /// Label shared by every element in the partition.
    pub label: TagId,
    /// Number of elements.
    pub count: u64,
}

/// The XSketch synopsis of one document.
#[derive(Clone, Debug)]
pub struct XSketchGraph {
    pub(crate) nodes: Vec<SNode>,
    /// Parent-child pair counts between partitions.
    pub(crate) edges: HashMap<(SNodeId, SNodeId), u64>,
    /// Outgoing adjacency: child partitions (with pair counts) per node.
    pub(crate) out: Vec<Vec<(SNodeId, u64)>>,
    /// Partitions containing document roots.
    pub(crate) roots: Vec<SNodeId>,
    /// Partitions per label.
    pub(crate) by_label: Vec<Vec<SNodeId>>,
}

impl XSketchGraph {
    /// Number of partitions.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of synopsis edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Byte size under the same style of accounting as the proposed
    /// method's summaries: 8 bytes per node (label + count) and 12 per
    /// edge (two references + pair count).
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * 8 + self.edges.len() * 12
    }

    /// Rebuilds the adjacency and label indexes from `nodes`/`edges`.
    pub(crate) fn reindex(&mut self, label_count: usize) {
        self.out = vec![Vec::new(); self.nodes.len()];
        for (&(u, v), &c) in &self.edges {
            self.out[u as usize].push((v, c));
        }
        for adj in &mut self.out {
            adj.sort_unstable();
        }
        self.by_label = vec![Vec::new(); label_count];
        for (i, n) in self.nodes.iter().enumerate() {
            self.by_label[n.label.index()].push(i as SNodeId);
        }
    }
}

/// Mutable construction state: the synopsis plus the element→partition
/// assignment needed to evaluate and apply splits.
pub(crate) struct BuilderState<'d> {
    pub doc: &'d Document,
    pub assign: Vec<SNodeId>,
    pub graph: XSketchGraph,
}

impl<'d> BuilderState<'d> {
    /// The label-split graph: one partition per tag.
    pub fn label_split(doc: &'d Document) -> Self {
        let label_count = doc.tags().len();
        let mut nodes: Vec<SNode> = (0..label_count)
            .map(|i| SNode {
                label: TagId::from_index(i),
                count: 0,
            })
            .collect();
        let mut assign = vec![0 as SNodeId; doc.len()];
        for id in doc.node_ids() {
            let t = doc.tag(id).index();
            nodes[t].count += 1;
            assign[id.index()] = t as SNodeId;
        }
        let mut edges: HashMap<(SNodeId, SNodeId), u64> = HashMap::new();
        for id in doc.node_ids() {
            if let Some(p) = doc.parent(id) {
                *edges
                    .entry((assign[p.index()], assign[id.index()]))
                    .or_insert(0) += 1;
            }
        }
        // Drop zero-count partitions (labels always occur, so none here,
        // but keep the invariant explicit for splits later).
        let roots = vec![assign[doc.root().index()]];
        let mut graph = XSketchGraph {
            nodes,
            edges,
            out: Vec::new(),
            roots,
            by_label: Vec::new(),
        };
        graph.reindex(label_count);
        BuilderState { doc, assign, graph }
    }

    /// Instability score of a partition: how much the number of children a
    /// parent element has in each child partition varies across the
    /// parents. Stable (uniform) edges estimate exactly; unstable ones are
    /// where XSketch's refinement spends its budget.
    pub fn instability(&self, v: SNodeId) -> f64 {
        // Gather per-element child counts into each child partition.
        let mut members: Vec<u32> = Vec::new();
        for id in self.doc.node_ids() {
            if self.assign[id.index()] == v {
                members.push(id.index() as u32);
            }
        }
        if members.len() < 2 {
            return 0.0;
        }
        let mut score = 0.0;
        let mut per_child: HashMap<SNodeId, Vec<u64>> = HashMap::new();
        for (mi, &m) in members.iter().enumerate() {
            let mut counts: HashMap<SNodeId, u64> = HashMap::new();
            for &c in self.doc.children(xpe_xml::NodeId::from_index(m as usize)) {
                *counts.entry(self.assign[c.index()]).or_insert(0) += 1;
            }
            for (cp, n) in counts {
                let vec = per_child
                    .entry(cp)
                    .or_insert_with(|| vec![0; members.len()]);
                vec[mi] = n;
            }
        }
        for counts in per_child.values() {
            let k = counts.len() as f64;
            let sum: u64 = counts.iter().sum();
            let mean = sum as f64 / k;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean) * (c as f64 - mean))
                .sum::<f64>()
                / k;
            score += var;
        }
        score
    }

    /// Splits partition `v` by the partition of each element's parent.
    /// Returns `false` when the split is trivial (single parent partition).
    pub fn split_by_parent(&mut self, v: SNodeId) -> bool {
        let mut groups: HashMap<Option<SNodeId>, Vec<u32>> = HashMap::new();
        for id in self.doc.node_ids() {
            if self.assign[id.index()] == v {
                let key = self.doc.parent(id).map(|p| self.assign[p.index()]);
                groups.entry(key).or_default().push(id.index() as u32);
            }
        }
        if groups.len() < 2 {
            return false;
        }
        let label = self.graph.nodes[v as usize].label;
        let mut keys: Vec<Option<SNodeId>> = groups.keys().copied().collect();
        keys.sort_unstable();
        // First group keeps id `v`; the rest become fresh partitions.
        for (gi, key) in keys.iter().enumerate() {
            let members = &groups[key];
            let target = if gi == 0 {
                v
            } else {
                self.graph.nodes.push(SNode { label, count: 0 });
                (self.graph.nodes.len() - 1) as SNodeId
            };
            self.graph.nodes[target as usize].count = members.len() as u64;
            for &m in members {
                self.assign[m as usize] = target;
            }
        }
        self.recount();
        true
    }

    /// Recomputes edges and root partitions from the assignment.
    fn recount(&mut self) {
        let mut edges: HashMap<(SNodeId, SNodeId), u64> = HashMap::new();
        for id in self.doc.node_ids() {
            if let Some(p) = self.doc.parent(id) {
                *edges
                    .entry((self.assign[p.index()], self.assign[id.index()]))
                    .or_insert(0) += 1;
            }
        }
        self.graph.edges = edges;
        self.graph.roots = vec![self.assign[self.doc.root().index()]];
        self.graph.reindex(self.doc.tags().len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_split_counts() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let st = BuilderState::label_split(&doc);
        let g = &st.graph;
        assert_eq!(g.node_count(), 7);
        // Counts match the tag frequencies: A=3, B=4, D=4, …
        let count_of = |name: &str| {
            let t = doc.tags().get(name).unwrap();
            g.by_label[t.index()]
                .iter()
                .map(|&v| g.nodes[v as usize].count)
                .sum::<u64>()
        };
        assert_eq!(count_of("A"), 3);
        assert_eq!(count_of("B"), 4);
        assert_eq!(count_of("D"), 4);
        assert_eq!(count_of("Root"), 1);
        // Edge Root→A carries 3 pairs.
        let root = doc.tags().get("Root").unwrap().index() as SNodeId;
        let a = doc.tags().get("A").unwrap().index() as SNodeId;
        assert_eq!(g.edges[&(root, a)], 3);
    }

    #[test]
    fn split_refines_partitions() {
        // Two kinds of B: under A vs under X — splitting B by parent
        // separates them.
        let doc = xpe_xml::parse_document("<r><A><B/><B/></A><X><B/></X></r>").unwrap();
        let mut st = BuilderState::label_split(&doc);
        let b = doc.tags().get("B").unwrap().index() as SNodeId;
        assert!(st.split_by_parent(b));
        let b_parts = &st.graph.by_label[doc.tags().get("B").unwrap().index()];
        assert_eq!(b_parts.len(), 2);
        let mut counts: Vec<u64> = b_parts
            .iter()
            .map(|&v| st.graph.nodes[v as usize].count)
            .collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
    }

    #[test]
    fn trivial_split_rejected() {
        let doc = xpe_xml::parse_document("<r><B/><B/></r>").unwrap();
        let mut st = BuilderState::label_split(&doc);
        let b = doc.tags().get("B").unwrap().index() as SNodeId;
        assert!(!st.split_by_parent(b), "single parent partition");
    }

    #[test]
    fn instability_detects_skew() {
        // One A has 3 Bs, the other has none → unstable A→B edge.
        let skewed = xpe_xml::parse_document("<r><A><B/><B/><B/></A><A/></r>").unwrap();
        let uniform = xpe_xml::parse_document("<r><A><B/></A><A><B/></A></r>").unwrap();
        let st_s = BuilderState::label_split(&skewed);
        let st_u = BuilderState::label_split(&uniform);
        let a_s = skewed.tags().get("A").unwrap().index() as SNodeId;
        let a_u = uniform.tags().get("A").unwrap().index() as SNodeId;
        assert!(st_s.instability(a_s) > st_u.instability(a_u));
        assert_eq!(st_u.instability(a_u), 0.0);
    }
}
