//! Property tests for the XSketch baseline: structural invariants of the
//! synopsis graph and sanity of estimates on random documents.

use proptest::prelude::*;
use xpe_xml::{Document, TreeBuilder};
use xpe_xpath::{parse_query, Evaluator};
use xpe_xsketch::XSketch;

#[derive(Debug, Clone)]
struct TreeSpec {
    tag: u8,
    children: Vec<TreeSpec>,
}

fn arb_doc() -> impl Strategy<Value = TreeSpec> {
    let leaf = (0u8..4).prop_map(|t| TreeSpec {
        tag: t,
        children: vec![],
    });
    leaf.prop_recursive(3, 40, 4, |inner| {
        (0u8..4, prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| TreeSpec { tag, children })
    })
}

fn build_doc(spec: &TreeSpec) -> Document {
    let mut b = TreeBuilder::new();
    fn rec(b: &mut TreeBuilder, s: &TreeSpec) {
        b.begin_element(&format!("t{}", s.tag));
        for c in &s.children {
            rec(b, c);
        }
        b.end_element().unwrap();
    }
    b.begin_element("R");
    rec(&mut b, spec);
    b.end_element().unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tag-count queries are exact on any synopsis (partition counts per
    /// label always sum to the tag frequency).
    #[test]
    fn single_tag_estimates_are_exact(spec in arb_doc(), budget in 1usize..4096) {
        let doc = build_doc(&spec);
        let sketch = XSketch::build(&doc, budget);
        let mut by_tag = std::collections::HashMap::new();
        for id in doc.node_ids() {
            *by_tag.entry(doc.tag_name(id).to_owned()).or_insert(0u64) += 1;
        }
        for (tag, count) in by_tag {
            let q = parse_query(&format!("//{tag}")).unwrap();
            prop_assert!((sketch.estimate(&q) - count as f64).abs() < 1e-9);
        }
    }

    /// Child-path estimates are finite, non-negative and never exceed the
    /// child tag's population.
    #[test]
    fn path_estimates_are_sane(spec in arb_doc(), a in 0u8..4, b in 0u8..4) {
        let doc = build_doc(&spec);
        let sketch = XSketch::build(&doc, usize::MAX);
        let q = parse_query(&format!("//t{a}/t{b}")).unwrap();
        let est = sketch.estimate(&q);
        prop_assert!(est.is_finite() && est >= 0.0);
        let cap = doc
            .node_ids()
            .filter(|&n| doc.tag_name(n) == format!("t{b}"))
            .count() as f64;
        prop_assert!(est <= cap + 1e-9, "est {} cap {}", est, cap);
    }

    /// The fully refined synopsis (unbounded budget) estimates child paths
    /// at least as well as the label-split graph on average.
    #[test]
    fn refinement_never_hurts_on_average(spec in arb_doc()) {
        let doc = build_doc(&spec);
        let order = xpe_xml::nav::DocOrder::new(&doc);
        let eval = Evaluator::new(&doc, &order);
        let coarse = XSketch::build(&doc, 1);
        let fine = XSketch::build(&doc, usize::MAX);
        let mut err_c = 0.0;
        let mut err_f = 0.0;
        let mut n = 0;
        for a in 0..4u8 {
            for b in 0..4u8 {
                let q = parse_query(&format!("//t{a}/t{b}")).unwrap();
                let truth = eval.selectivity(&q) as f64;
                if truth == 0.0 {
                    continue;
                }
                err_c += (coarse.estimate(&q) - truth).abs() / truth;
                err_f += (fine.estimate(&q) - truth).abs() / truth;
                n += 1;
            }
        }
        if n > 0 {
            // Allow slack: greedy refinement is a heuristic, but it should
            // not catastrophically regress the label-split baseline.
            prop_assert!(err_f <= err_c + 0.5 * n as f64, "fine {} coarse {}", err_f, err_c);
        }
    }
}
