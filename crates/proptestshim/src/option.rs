//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` of the inner strategy's value three times out of four
/// (upstream's default probability), `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) < 3 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
