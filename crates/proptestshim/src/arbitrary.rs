//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy of `T` (`any::<bool>()`, `any::<u8>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(8) == 0 {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}
