//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small random-input property-testing framework exposing the subset of
//! proptest v1's API its test suites use: the [`strategy::Strategy`] trait
//! with `prop_map` / `prop_recursive` / `boxed`, range and tuple strategies,
//! [`collection::vec()`], [`option::of`], `any::<T>()`, [`strategy::Just`],
//! `prop_oneof!`, a simplified regex-pattern string strategy, and the
//! [`proptest!`] / `prop_assert*!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated input verbatim
//!   (every bound value must be `Debug`, as upstream also requires).
//! * **Deterministic seeding.** Each test's RNG is seeded from the hash of
//!   its module path and name, so failures reproduce across runs; there is
//!   no persistence file.
//! * The string strategy understands the pattern shapes used in this
//!   workspace (`.{a,b}` and `[class&&[^excluded]]{a,b}`), not full regex.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

/// The most common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Short-path module aliases (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u8..4, v in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 4);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ( $($strat,)* );
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __values =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __shown = format!("{:?}", __values);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            let ( $($pat,)* ) = __values;
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(__reject)) => {
                        panic!(
                            "proptest: case {}/{} of `{}` returned an error for input {}: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __shown,
                            __reject,
                        );
                    }
                    Err(__panic) => {
                        eprintln!(
                            "proptest: case {}/{} of `{}` failed for input: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __shown,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts a property inside [`proptest!`] (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    struct Tree {
        children: Vec<Tree>,
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = Just(Tree { children: vec![] });
        leaf.prop_recursive(3, 12, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(|children| Tree { children })
        })
    }

    fn depth(t: &Tree) -> usize {
        1 + t.children.iter().map(depth).max().unwrap_or(0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 10usize..=12, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=12).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_respects_size((v, flag) in (prop::collection::vec(0u8..4, 2..5), any::<bool>())) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 4));
            let _ = flag;
        }

        #[test]
        fn oneof_and_option(s in prop_oneof![Just("a".to_owned()), Just("b".to_owned())],
                            o in crate::option::of(0u8..4)) {
            prop_assert!(s == "a" || s == "b");
            if let Some(x) = o { prop_assert!(x < 4); }
        }

        #[test]
        fn recursive_terminates(t in arb_tree()) {
            prop_assert!(depth(&t) <= 4);
        }

        #[test]
        fn pattern_strings(any_s in ".{0,16}", cls in "[ -~&&[^<&>]]{0,8}") {
            prop_assert!(any_s.chars().count() <= 16);
            prop_assert!(cls.chars().count() <= 8);
            prop_assert!(cls.chars().all(|c| (' '..='~').contains(&c)
                && !"<&>".contains(c)));
        }
    }
}
