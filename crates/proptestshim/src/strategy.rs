//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree: a strategy simply draws
/// a fresh value per case and failures are reported unshrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `self` generates leaves, and `recurse` lifts a
    /// strategy for depth-`d` values into one for depth-`d+1` values. Each
    /// case draws a depth in `0..=depth` and composes `recurse` that many
    /// times, so generated values are depth-bounded. The `_desired_size`
    /// and `_expected_branch_size` tuning knobs of upstream are accepted
    /// and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            depth: self.depth,
            recurse: Rc::clone(&self.recurse),
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.recurse)(s);
        }
        s.generate(rng)
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies.
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies.
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// String patterns as strategies.
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}
