//! Test configuration and the deterministic case RNG.

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the (unshrunk) suites quick
        // while still exploring the input space. Override per block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 64 }
    }
}

/// Explicit test-case rejection (the error type `proptest!` bodies may
/// `return` with `Ok`/`Err`). Unused by the shim's own assertions, which
/// panic; kept so upstream-style bodies typecheck.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// SplitMix64 case generator, seeded from the test's fully qualified name
/// so every run of a given test replays the same inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-spread seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (`n` > 0), by widening multiply.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
