//! Simplified regex-pattern string generation.
//!
//! Supports the shapes this workspace's suites use:
//!
//! * `.{a,b}` — between `a` and `b` arbitrary non-newline characters;
//! * `[class]{a,b}` — characters from a class of literals and ranges, with
//!   optional `&&[^…]` subtraction (e.g. `[ -~&&[^<&>]]`, printable ASCII
//!   minus `<`, `&`, `>`).
//!
//! Anything unrecognized falls back to a short printable-ASCII string, so a
//! new pattern degrades to fuzz input rather than failing the suite.

use crate::test_runner::TestRng;

/// Generates one string matching (our subset of) `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let (atom, lo, hi) = match split_counted(pattern) {
        Some(parts) => parts,
        None => (pattern, 0, 16),
    };
    let span = (hi - lo) as u64;
    let n = lo + rng.below(span + 1) as usize;
    match parse_atom(atom) {
        Some(Atom::AnyChar) => (0..n).map(|_| any_char(rng)).collect(),
        Some(Atom::Class(chars)) if !chars.is_empty() => (0..n)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect(),
        _ => (0..n)
            .map(|_| (b' ' + rng.below(95) as u8) as char)
            .collect(),
    }
}

enum Atom<'p> {
    AnyChar,
    Class(Vec<char>),
    #[allow(dead_code)]
    Unknown(&'p str),
}

/// Splits `X{a,b}` into `(X, a, b)`.
fn split_counted(pattern: &str) -> Option<(&str, usize, usize)> {
    let open = pattern.rfind('{')?;
    let body = pattern.strip_suffix('}')?.get(open + 1..)?;
    let (a, b) = body.split_once(',')?;
    let lo: usize = a.trim().parse().ok()?;
    let hi: usize = b.trim().parse().ok()?;
    (lo <= hi).then(|| (&pattern[..open], lo, hi))
}

fn parse_atom(atom: &str) -> Option<Atom<'_>> {
    if atom == "." {
        return Some(Atom::AnyChar);
    }
    let inner = atom.strip_prefix('[')?.strip_suffix(']')?;
    // `&&` separates the base class from subtracted sub-classes.
    let mut parts = inner.split("&&");
    let mut include = class_chars(parts.next()?);
    for sub in parts {
        let negated = sub.strip_prefix("[^").and_then(|s| s.strip_suffix(']'));
        if let Some(excluded) = negated {
            let gone = class_chars(excluded);
            include.retain(|c| !gone.contains(c));
        }
    }
    Some(Atom::Class(include))
}

/// Expands a class body of literals and `a-z` ranges.
fn class_chars(body: &str) -> Vec<char> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo <= hi {
                for c in lo..=hi {
                    out.push(c);
                }
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

/// Any non-newline character: mostly printable ASCII, with occasional
/// escapes into the wider scalar space to keep fuzz value.
fn any_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0 => char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}'),
        1 => ['\t', '\u{0}', '\u{7F}', 'é', 'λ', '中', '🦀'][rng.below(7) as usize],
        _ => (b' ' + rng.below(95) as u8) as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_any_char() {
        let mut rng = TestRng::for_test("counted_any_char");
        for _ in 0..200 {
            let s = generate(".{0,5}", &mut rng);
            assert!(s.chars().count() <= 5);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn class_with_subtraction() {
        let mut rng = TestRng::for_test("class_with_subtraction");
        for _ in 0..200 {
            let s = generate("[ -~&&[^<&>]]{1,8}", &mut rng);
            let n = s.chars().count();
            assert!((1..=8).contains(&n));
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) && !"<&>".contains(c)));
        }
    }

    #[test]
    fn unknown_pattern_degrades_gracefully() {
        let mut rng = TestRng::for_test("unknown");
        let s = generate("\\d+foo", &mut rng);
        assert!(s.chars().count() <= 16);
    }
}
