//! Workload-level join memoization.
//!
//! The join's output depends only on a query's *structural skeleton* —
//! the tags and the child/descendant axes connecting them. The target
//! node and order constraints play no role: the join prunes on structural
//! edges alone (§5's formulas layer order corrections on top afterwards),
//! and the target merely selects which surviving list downstream formulas
//! read. Workloads repeat skeletons constantly — template-generated
//! queries differ in their order predicates, and even a single estimate
//! joins several derived queries (plain spine, trimmed spine) sharing
//! structure — so memoizing `skeleton → JoinResult` across a batch
//! removes whole join fixpoints, not just per-edge work.
//!
//! [`SkeletonKey`] is the canonical byte encoding of that skeleton, with
//! its 64-bit hash computed **once** at construction: shard selection and
//! the in-shard map probe both reuse it (the shard maps run a
//! pass-through hasher), so a lookup hashes the key bytes exactly one
//! time instead of the two SipHash passes the derived `Hash` used to
//! cost. [`JoinCache`] is a sharded LRU keyed by it, shared by every
//! worker of an [`EstimationEngine`](crate::EstimationEngine) batch. Each
//! entry carries the skeleton's prepared [`QueryPlan`] next to the
//! (optional) memoized `Arc<JoinResult>`: budget-truncated joins are
//! never published as results, but their plans are — a later healthy
//! query on the same skeleton still skips the tag-resolution work.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::join::JoinResult;
use crate::planner::QueryPlan;
use xpe_xpath::{Axis, Query};

/// Canonical encoding of a query's structural skeleton: the root axis,
/// then per node (in id order) its length-prefixed tag and its structural
/// edges as `(axis, target-index)` pairs. Two queries get equal keys iff
/// the join treats them identically — order constraints and the target
/// node are deliberately excluded.
///
/// The key carries the hash of its bytes, computed once at construction;
/// `Hash` forwards that value (the hash is a pure function of the bytes,
/// so equal keys always agree) and equality compares the bytes.
#[derive(Clone, Debug)]
pub struct SkeletonKey {
    bytes: Vec<u8>,
    hash: u64,
}

impl PartialEq for SkeletonKey {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for SkeletonKey {}

impl std::hash::Hash for SkeletonKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl SkeletonKey {
    /// The precomputed 64-bit hash of the key bytes.
    #[inline]
    pub fn hash64(&self) -> u64 {
        self.hash
    }
}

/// Builds the [`SkeletonKey`] of `query`, hashing its bytes once.
pub fn skeleton_key(query: &Query) -> SkeletonKey {
    let mut buf = Vec::with_capacity(16 + 8 * query.len());
    buf.push(match query.root_axis() {
        Axis::Child => 0u8,
        Axis::Descendant => 1,
        _ => unreachable!("root axis is structural"),
    });
    for id in query.node_ids() {
        let node = query.node(id);
        buf.extend_from_slice(&(node.tag.len() as u32).to_le_bytes());
        buf.extend_from_slice(node.tag.as_bytes());
        buf.extend_from_slice(&(node.edges.len() as u32).to_le_bytes());
        for e in &node.edges {
            buf.push(match e.axis {
                Axis::Child => 0u8,
                Axis::Descendant => 1,
                _ => unreachable!("structural edges only"),
            });
            buf.extend_from_slice(&(e.to.index() as u32).to_le_bytes());
        }
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    h.write(&buf);
    SkeletonKey {
        hash: h.finish(),
        bytes: buf,
    }
}

/// Pass-through hasher for keys that carry a precomputed hash:
/// [`SkeletonKey::hash`] writes its stored `u64` and this hasher returns
/// it unchanged, so map probes pay zero re-hashing.
#[derive(Default)]
pub(crate) struct PrehashedHasher(u64);

impl Hasher for PrehashedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("prehashed keys hash via write_u64 only")
    }

    fn write_u64(&mut self, h: u64) {
        self.0 = h;
    }
}

/// One cache entry: recency tick, the skeleton's prepared plan, and the
/// memoized join result (absent when only a budget-truncated join — whose
/// lists are not the fixpoint — has run for this skeleton so far).
struct Entry {
    tick: u64,
    plan: Arc<QueryPlan>,
    result: Option<Arc<JoinResult>>,
}

/// What a [`JoinCache::lookup`] found for a skeleton: always the prepared
/// plan, plus the memoized result when a completed join has been
/// published.
pub struct CacheHit {
    /// The skeleton's prepared query plan.
    pub plan: Arc<QueryPlan>,
    /// The memoized join result, if a full (never budget-truncated) join
    /// has been published for this skeleton.
    pub result: Option<Arc<JoinResult>>,
}

/// One LRU shard: key → entry. Eviction scans for the minimum tick —
/// shards stay small (capacity / 8), so a scan beats the bookkeeping of
/// an intrusive list at these sizes.
#[derive(Default)]
struct Shard {
    map: HashMap<SkeletonKey, Entry, BuildHasherDefault<PrehashedHasher>>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

const SHARDS: usize = 8;

/// A sharded LRU cache of prepared plans and join results keyed by query
/// skeleton.
///
/// Thread-safe: shards are independently locked, so concurrent batch
/// workers rarely contend. Hit/miss counters feed the benchmark report's
/// `join_cache_hit_rate`; they count *join result* reuse only (a plan-only
/// entry still misses — the join must run), and a disabled cache
/// (capacity 0) counts neither, matching an engine built without one.
pub struct JoinCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard capacity; 0 disables the cache (every lookup returns
    /// nothing, nothing is stored, and no counter moves).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    locks: AtomicU64,
}

impl std::fmt::Debug for JoinCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinCache")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl JoinCache {
    /// A cache holding at most `capacity` skeletons (rounded up to a
    /// multiple of the shard count; 0 disables caching entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        let shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        JoinCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            locks: AtomicU64::new(0),
        }
    }

    /// The shard a key lives in, selected from the middle bits of its
    /// precomputed hash. Not the low bits: the in-shard hashbrown map
    /// derives its bucket index from those, and reusing them would make
    /// every key in a shard collide into the same bucket neighborhood.
    fn shard(&self, key: &SkeletonKey) -> &Mutex<Shard> {
        &self.shards[((key.hash64() >> 32) as usize) % SHARDS]
    }

    /// Locks a key's shard, counting the acquisition.
    fn lock_shard(&self, key: &SkeletonKey) -> std::sync::MutexGuard<'_, Shard> {
        self.locks.fetch_add(1, Ordering::Relaxed);
        self.shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a skeleton, refreshing its recency. Returns the entry's
    /// plan (and result, when one is published); counts a hit iff the
    /// result is present, a miss otherwise — except on a disabled cache,
    /// which counts nothing (there is no cache to hit or miss).
    pub fn lookup(&self, key: &SkeletonKey) -> Option<CacheHit> {
        if self.shard_capacity == 0 {
            return None;
        }
        let found = self.peek(key);
        match &found {
            Some(hit) if hit.result.is_some() => self.hits.fetch_add(1, Ordering::Relaxed),
            _ => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// [`lookup`](Self::lookup) without the hit/miss accounting: the
    /// probe [`WorkerJoinCache`] issues on a local miss. The worker cache
    /// tallies hits and misses itself and folds them in at merge time,
    /// so counting here would double-book them. Recency is still
    /// refreshed — a peek is a real use of the entry.
    fn peek(&self, key: &SkeletonKey) -> Option<CacheHit> {
        if self.shard_capacity == 0 {
            return None;
        }
        let mut shard = self.lock_shard(key);
        let tick = shard.touch();
        shard.map.get_mut(key).map(|entry| {
            entry.tick = tick;
            CacheHit {
                plan: Arc::clone(&entry.plan),
                result: entry.result.clone(),
            }
        })
    }

    /// Folds a worker's locally-tallied hit/miss counts into the shared
    /// totals (two atomic adds, no locks).
    fn add_counts(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Publishes a skeleton's plan and (optionally) its completed join
    /// result, evicting the least-recently-used entry of the key's shard
    /// when it is full. Publishing with `result: None` (a plan learned
    /// from a budget-truncated join) never erases a result an earlier
    /// publish stored.
    pub fn publish(&self, key: SkeletonKey, plan: Arc<QueryPlan>, result: Option<Arc<JoinResult>>) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut shard = self.lock_shard(&key);
        let tick = shard.touch();
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.tick = tick;
            entry.plan = plan;
            if let Some(r) = result {
                entry.result = Some(r);
            }
            return;
        }
        if shard.map.len() >= self.shard_capacity {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(key, Entry { tick, plan, result });
    }

    /// Total entries across shards (plan-only entries included).
    pub fn len(&self) -> usize {
        self.locks
            .fetch_add(self.shards.len() as u64, Ordering::Relaxed);
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries the cache will hold (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// Lookups that found a memoized join result.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the join (no entry, or a plan-only entry).
    /// A disabled cache counts nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Number of shard-mutex acquisitions so far (lookups, publishes,
    /// worker-cache probes, and merges all count; `len` counts one per
    /// shard). Warm per-worker lookups served from a
    /// [`WorkerJoinCache`]'s private map must not move this.
    pub fn lock_count(&self) -> u64 {
        self.locks.load(Ordering::Relaxed)
    }
}

/// One worker's private, lock-free front for a shared [`JoinCache`].
///
/// Batch workers used to take a shard mutex (plus two atomic RMWs for
/// the hit/miss tally) on every single query — the dominant shared-line
/// traffic once the adjacency path went lock-free. A `WorkerJoinCache`
/// moves that to the edges of the batch: lookups probe a private
/// unsynchronized map first and fall through to the shared cache only on
/// a local miss (seeding the private map from whatever the shared side
/// already holds); publishes go to the private map, with freshly
/// completed results written through to their shared shard right away
/// (see [`publish`](Self::publish)) and plan-only entries queued; and
/// [`merge`](Self::merge) — called at chunk boundaries and on drop —
/// batches the queued entries into the shared shards and folds the
/// locally-tallied hit/miss counts in with two atomic adds. In steady
/// state a worker computes nothing, publishes nothing, and touches no
/// shared line at all between merge points.
///
/// Semantics are identical to direct shared access because join results
/// are pure functions of `(summary, skeleton)`: publishing late never
/// changes what any entry holds, only when other workers can reuse it.
/// The never-erase-a-result rule holds locally and through the merge
/// (plan-only pending entries pass `None`, which [`JoinCache::publish`]
/// ignores when a result is already stored), and a disabled shared cache
/// (capacity 0) disables the worker cache the same way: lookups return
/// nothing and no counter moves.
pub struct WorkerJoinCache {
    shared: Arc<JoinCache>,
    local: HashMap<SkeletonKey, LocalEntry, BuildHasherDefault<PrehashedHasher>>,
    pending: Vec<(SkeletonKey, Arc<QueryPlan>, Option<Arc<JoinResult>>)>,
    hits: u64,
    misses: u64,
}

/// A private map entry: the skeleton's plan and (optionally) its result.
struct LocalEntry {
    plan: Arc<QueryPlan>,
    result: Option<Arc<JoinResult>>,
}

impl WorkerJoinCache {
    /// Wraps a shared cache; the private map starts empty and seeds
    /// itself from the shared side on local misses.
    pub fn new(shared: Arc<JoinCache>) -> Self {
        WorkerJoinCache {
            shared,
            local: HashMap::default(),
            pending: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The shared cache this worker front merges into.
    pub fn shared(&self) -> &Arc<JoinCache> {
        &self.shared
    }

    /// Looks up a skeleton: private map first (no locks), then one
    /// shared-shard probe on a local miss. Hit/miss accounting matches
    /// [`JoinCache::lookup`] — a hit iff a result is present — but is
    /// tallied locally and folded into the shared counters at merge.
    pub fn lookup(&mut self, key: &SkeletonKey) -> Option<CacheHit> {
        if self.shared.capacity() == 0 {
            return None;
        }
        if let Some(entry) = self.local.get(key) {
            let hit = CacheHit {
                plan: Arc::clone(&entry.plan),
                result: entry.result.clone(),
            };
            match &hit.result {
                Some(_) => self.hits += 1,
                None => self.misses += 1,
            }
            return Some(hit);
        }
        let found = self.shared.peek(key);
        match &found {
            Some(hit) => {
                if hit.result.is_some() {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                }
                self.local.insert(
                    key.clone(),
                    LocalEntry {
                        plan: Arc::clone(&hit.plan),
                        result: hit.result.clone(),
                    },
                );
            }
            None => self.misses += 1,
        }
        found
    }

    /// Publishes into the private map, and routes the entry to the shared
    /// cache by kind:
    ///
    /// * a **completed result** writes through immediately (one shard
    ///   lock) — another worker about to run the same join finds it on
    ///   its very next probe instead of after this worker's chunk ends,
    ///   which is what keeps a cold batch from computing every hot
    ///   skeleton once *per worker*. Results are only ever computed on a
    ///   miss, so a warm workload writes nothing through and stays
    ///   lock-free;
    /// * a **plan-only entry** (budget-truncated join) is queued for the
    ///   next lazy merge — sharing it early saves tag resolution, not a
    ///   fixpoint, which is not worth a lock in the middle of a chunk.
    ///
    /// A `result: None` never erases a locally-stored result, mirroring
    /// the shared rule. When the private map outgrows the shared capacity
    /// it is merged and cleared, so a long-lived estimator cannot hoard
    /// unbounded entries.
    pub fn publish(
        &mut self,
        key: SkeletonKey,
        plan: Arc<QueryPlan>,
        result: Option<Arc<JoinResult>>,
    ) {
        if self.shared.capacity() == 0 {
            return;
        }
        match &result {
            Some(r) => self
                .shared
                .publish(key.clone(), Arc::clone(&plan), Some(Arc::clone(r))),
            None => self.pending.push((key.clone(), Arc::clone(&plan), None)),
        }
        match self.local.get_mut(&key) {
            Some(entry) => {
                entry.plan = plan;
                if let Some(r) = result {
                    entry.result = Some(r);
                }
            }
            None => {
                self.local.insert(key, LocalEntry { plan, result });
            }
        }
        if self.local.len() > self.shared.capacity() {
            self.merge();
            self.local.clear();
        }
    }

    /// Flushes pending publications into the shared shards and folds the
    /// local hit/miss tallies into the shared counters. Cheap when there
    /// is nothing to do: no pending entries means no locks are taken
    /// (the tallies flush with plain atomic adds).
    pub fn merge(&mut self) {
        for (key, plan, result) in self.pending.drain(..) {
            self.shared.publish(key, plan, result);
        }
        if self.hits > 0 || self.misses > 0 {
            self.shared.add_counts(self.hits, self.misses);
            self.hits = 0;
            self.misses = 0;
        }
    }
}

impl Drop for WorkerJoinCache {
    fn drop(&mut self) {
        self.merge();
    }
}

impl std::fmt::Debug for WorkerJoinCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerJoinCache")
            .field("local_len", &self.local.len())
            .field("pending", &self.pending.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};
    use xpe_synopsis::{Summary, SummaryConfig};
    use xpe_xpath::parse_query;

    fn result_with_marker(marker: f64) -> Arc<JoinResult> {
        Arc::new(JoinResult {
            lists: vec![vec![(xpe_pathid::Pid::from_index(0), marker)]],
        })
    }

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        )
    }

    fn plan_for(summary: &Summary, q: &str) -> Arc<QueryPlan> {
        Arc::new(QueryPlan::build(summary, &parse_query(q).unwrap()))
    }

    #[test]
    fn order_constraints_and_target_do_not_change_the_key() {
        let plain = parse_query("//A[/C]/B").unwrap();
        let ordered = parse_query("//A[/C/folls::$B]").unwrap();
        assert_eq!(skeleton_key(&plain), skeleton_key(&ordered));
        assert_eq!(
            skeleton_key(&plain).hash64(),
            skeleton_key(&ordered).hash64()
        );
    }

    #[test]
    fn structure_changes_the_key() {
        let base = parse_query("//A[/C]/B").unwrap();
        for other in ["//A[/D]/B", "//A[//C]/B", "/A[/C]/B", "//A/C/B"] {
            let q = parse_query(other).unwrap();
            assert_ne!(skeleton_key(&base), skeleton_key(&q), "{other}");
        }
    }

    #[test]
    fn key_hashes_through_its_precomputed_value() {
        let key = skeleton_key(&parse_query("//A[/C]/B").unwrap());
        let mut h = PrehashedHasher::default();
        key.hash(&mut h);
        assert_eq!(h.finish(), key.hash64());
    }

    #[test]
    fn hit_only_for_structurally_identical_skeletons() {
        let s = summary();
        let cache = JoinCache::with_capacity(64);
        let plain = parse_query("//A[/C]/B").unwrap();
        let ordered = parse_query("//A[/C/folls::$B]").unwrap();
        let different = parse_query("//A[/D]/B").unwrap();

        assert!(cache.lookup(&skeleton_key(&plain)).is_none());
        cache.publish(
            skeleton_key(&plain),
            plan_for(&s, "//A[/C]/B"),
            Some(result_with_marker(7.0)),
        );
        // Same structure, different order constraint: hit, and the plan
        // rides along.
        let hit = cache.lookup(&skeleton_key(&ordered)).expect("skeleton hit");
        assert_eq!(hit.result.expect("published result").lists[0][0].1, 7.0);
        assert_eq!(hit.plan.len(), 3);
        // Different structure: miss.
        assert!(cache.lookup(&skeleton_key(&different)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn plan_only_entries_count_as_misses_and_keep_results_on_republish() {
        let s = summary();
        let cache = JoinCache::with_capacity(64);
        let key = skeleton_key(&parse_query("//A//C").unwrap());
        let plan = plan_for(&s, "//A//C");

        // A truncated join publishes its plan without a result.
        cache.publish(key.clone(), Arc::clone(&plan), None);
        let hit = cache.lookup(&key).expect("plan-only entry");
        assert!(hit.result.is_none());
        assert_eq!(hit.plan.len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (0, 1), "plan-only = miss");

        // A completed join fills the result in.
        cache.publish(
            key.clone(),
            Arc::clone(&plan),
            Some(result_with_marker(2.0)),
        );
        assert!(cache.lookup(&key).unwrap().result.is_some());
        // A later plan-only publish (another truncated join racing) must
        // not erase it.
        cache.publish(key.clone(), plan, None);
        assert!(cache.lookup(&key).unwrap().result.is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let s = summary();
        // Single-entry shards make eviction order observable regardless of
        // which shard each key hashes to.
        let cache = JoinCache::with_capacity(SHARDS);
        let a = skeleton_key(&parse_query("//A").unwrap());
        let b = skeleton_key(&parse_query("//B").unwrap());
        cache.publish(
            a.clone(),
            plan_for(&s, "//A"),
            Some(result_with_marker(1.0)),
        );
        cache.publish(
            b.clone(),
            plan_for(&s, "//B"),
            Some(result_with_marker(2.0)),
        );
        if std::ptr::eq(cache.shard(&a), cache.shard(&b)) {
            // Same shard: `b` evicted `a`.
            assert!(cache.lookup(&a).is_none());
            assert!(cache.lookup(&b).is_some());
        } else {
            assert!(cache.lookup(&a).is_some());
            assert!(cache.lookup(&b).is_some());
        }
    }

    #[test]
    fn zero_capacity_disables_caching_and_counts_nothing() {
        let s = summary();
        let cache = JoinCache::with_capacity(0);
        let key = skeleton_key(&parse_query("//A/B").unwrap());
        cache.publish(
            key.clone(),
            plan_for(&s, "//A/B"),
            Some(result_with_marker(1.0)),
        );
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.capacity(), 0);
        // A disabled cache skews no rate: neither hits nor misses move —
        // the same accounting as an engine holding no cache at all.
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.hit_rate(), 0.0);
    }

    #[test]
    fn republishing_an_existing_key_does_not_evict_others() {
        let s = summary();
        let cache = JoinCache::with_capacity(SHARDS);
        let a = skeleton_key(&parse_query("//A").unwrap());
        cache.publish(
            a.clone(),
            plan_for(&s, "//A"),
            Some(result_with_marker(1.0)),
        );
        cache.publish(
            a.clone(),
            plan_for(&s, "//A"),
            Some(result_with_marker(3.0)),
        );
        assert_eq!(cache.lookup(&a).unwrap().result.unwrap().lists[0][0].1, 3.0);
        assert_eq!(cache.len(), 1);
    }
}
