//! Workload-level join memoization.
//!
//! The join's output depends only on a query's *structural skeleton* —
//! the tags and the child/descendant axes connecting them. The target
//! node and order constraints play no role: the join prunes on structural
//! edges alone (§5's formulas layer order corrections on top afterwards),
//! and the target merely selects which surviving list downstream formulas
//! read. Workloads repeat skeletons constantly — template-generated
//! queries differ in their order predicates, and even a single estimate
//! joins several derived queries (plain spine, trimmed spine) sharing
//! structure — so memoizing `skeleton → JoinResult` across a batch
//! removes whole join fixpoints, not just per-edge work.
//!
//! [`SkeletonKey`] is the canonical byte encoding of that skeleton;
//! [`JoinCache`] is a sharded LRU keyed by it, shared by every worker of
//! an [`EstimationEngine`](crate::EstimationEngine) batch. Values are
//! `Arc<JoinResult>`: hits alias the cached lists instead of cloning them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::join::JoinResult;
use xpe_xpath::{Axis, Query};

/// Canonical encoding of a query's structural skeleton: the root axis,
/// then per node (in id order) its length-prefixed tag and its structural
/// edges as `(axis, target-index)` pairs. Two queries get equal keys iff
/// the join treats them identically — order constraints and the target
/// node are deliberately excluded.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SkeletonKey(Vec<u8>);

/// Builds the [`SkeletonKey`] of `query`.
pub fn skeleton_key(query: &Query) -> SkeletonKey {
    let mut buf = Vec::with_capacity(16 + 8 * query.len());
    buf.push(match query.root_axis() {
        Axis::Child => 0u8,
        Axis::Descendant => 1,
        _ => unreachable!("root axis is structural"),
    });
    for id in query.node_ids() {
        let node = query.node(id);
        buf.extend_from_slice(&(node.tag.len() as u32).to_le_bytes());
        buf.extend_from_slice(node.tag.as_bytes());
        buf.extend_from_slice(&(node.edges.len() as u32).to_le_bytes());
        for e in &node.edges {
            buf.push(match e.axis {
                Axis::Child => 0u8,
                Axis::Descendant => 1,
                _ => unreachable!("structural edges only"),
            });
            buf.extend_from_slice(&(e.to.index() as u32).to_le_bytes());
        }
    }
    SkeletonKey(buf)
}

/// One LRU shard: key → (tick of last use, value). Eviction scans for the
/// minimum tick — shards stay small (capacity / 8), so a scan beats the
/// bookkeeping of an intrusive list at these sizes.
#[derive(Default)]
struct Shard {
    map: HashMap<SkeletonKey, (u64, Arc<JoinResult>)>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

const SHARDS: usize = 8;

/// A sharded LRU cache of join results keyed by query skeleton.
///
/// Thread-safe: shards are independently locked, so concurrent batch
/// workers rarely contend. Hit/miss counters feed the benchmark report's
/// `join_cache_hit_rate`.
pub struct JoinCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard capacity; 0 disables the cache (every lookup misses and
    /// nothing is stored).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for JoinCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinCache")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl JoinCache {
    /// A cache holding at most `capacity` join results (rounded up to a
    /// multiple of the shard count; 0 disables caching entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        let shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        JoinCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &SkeletonKey) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up a skeleton, refreshing its recency on a hit.
    pub fn get(&self, key: &SkeletonKey) -> Option<Arc<JoinResult>> {
        if self.shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let tick = shard.touch();
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.0 = tick;
                let value = entry.1.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a join result, evicting the least-recently-used entry of the
    /// key's shard when it is full.
    pub fn insert(&self, key: SkeletonKey, value: Arc<JoinResult>) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut shard = self
            .shard(&key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let tick = shard.touch();
        if shard.map.len() >= self.shard_capacity && !shard.map.contains_key(&key) {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(key, (tick, value));
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries the cache will hold (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (including all lookups when disabled).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xpath::parse_query;

    fn result_with_marker(marker: f64) -> Arc<JoinResult> {
        Arc::new(JoinResult {
            lists: vec![vec![(xpe_pathid::Pid::from_index(0), marker)]],
        })
    }

    #[test]
    fn order_constraints_and_target_do_not_change_the_key() {
        let plain = parse_query("//A[/C]/B").unwrap();
        let ordered = parse_query("//A[/C/folls::$B]").unwrap();
        assert_eq!(skeleton_key(&plain), skeleton_key(&ordered));
    }

    #[test]
    fn structure_changes_the_key() {
        let base = parse_query("//A[/C]/B").unwrap();
        for other in ["//A[/D]/B", "//A[//C]/B", "/A[/C]/B", "//A/C/B"] {
            let q = parse_query(other).unwrap();
            assert_ne!(skeleton_key(&base), skeleton_key(&q), "{other}");
        }
    }

    #[test]
    fn hit_only_for_structurally_identical_skeletons() {
        let cache = JoinCache::with_capacity(64);
        let plain = parse_query("//A[/C]/B").unwrap();
        let ordered = parse_query("//A[/C/folls::$B]").unwrap();
        let different = parse_query("//A[/D]/B").unwrap();

        assert!(cache.get(&skeleton_key(&plain)).is_none());
        cache.insert(skeleton_key(&plain), result_with_marker(7.0));
        // Same structure, different order constraint: hit.
        let hit = cache.get(&skeleton_key(&ordered)).expect("skeleton hit");
        assert_eq!(hit.lists[0][0].1, 7.0);
        // Different structure: miss.
        assert!(cache.get(&skeleton_key(&different)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        // Single-entry shards make eviction order observable regardless of
        // which shard each key hashes to.
        let cache = JoinCache::with_capacity(SHARDS);
        let a = skeleton_key(&parse_query("//A").unwrap());
        let b = skeleton_key(&parse_query("//B").unwrap());
        cache.insert(a.clone(), result_with_marker(1.0));
        cache.insert(b.clone(), result_with_marker(2.0));
        if std::ptr::eq(cache.shard(&a), cache.shard(&b)) {
            // Same shard: `b` evicted `a`.
            assert!(cache.get(&a).is_none());
            assert!(cache.get(&b).is_some());
        } else {
            assert!(cache.get(&a).is_some());
            assert!(cache.get(&b).is_some());
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = JoinCache::with_capacity(0);
        let key = skeleton_key(&parse_query("//A/B").unwrap());
        cache.insert(key.clone(), result_with_marker(1.0));
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.capacity(), 0);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict_others() {
        let cache = JoinCache::with_capacity(SHARDS);
        let a = skeleton_key(&parse_query("//A").unwrap());
        cache.insert(a.clone(), result_with_marker(1.0));
        cache.insert(a.clone(), result_with_marker(3.0));
        assert_eq!(cache.get(&a).unwrap().lists[0][0].1, 3.0);
        assert_eq!(cache.len(), 1);
    }
}
