//! Optimizer-facing helpers and the prepared query plan.
//!
//! The paper's motivation is query optimization, so the estimator exposes
//! the two decisions a structural-join planner actually makes — which
//! predicate to apply first, and per-step cardinalities along the main
//! path. [`QueryPlan`] is the other side of that coin: the one-time
//! resolution of a query's *own* bookkeeping (tag-name → `TagId`,
//! structural edges, root pinning) so the join kernels never repeat a
//! string hash that cannot change between calls.

use xpe_synopsis::Summary;
use xpe_xml::TagId;
use xpe_xpath::{Axis, Query, QueryNodeId};

use crate::editor;
use crate::estimator::Estimator;

/// One structural query edge with its endpoint tags resolved against a
/// summary's tag interner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanEdge {
    /// Ancestor-side query node.
    pub u: QueryNodeId,
    /// Descendant-side query node.
    pub v: QueryNodeId,
    /// `true` for a child-axis edge, `false` for descendant.
    pub child: bool,
    /// `(tag_u, tag_v)` when both endpoint tags occur in the summary;
    /// `None` when either is absent — such an edge empties both endpoint
    /// candidate sets outright (nothing in a shrinking fixpoint can
    /// resurrect them).
    pub tags: Option<(TagId, TagId)>,
}

/// A query's join-relevant structure resolved against one summary, once.
///
/// The join kernels repeat three lookups every call that are pure
/// functions of `(summary, query skeleton)`: each node's tag-name →
/// [`TagId`] resolution (a string hash per node per join, and again per
/// edge endpoint), the flattening of the query's structural edges, and
/// the root-pinning decision. A `QueryPlan` performs them once; the
/// estimator memoizes plans alongside [`JoinCache`](crate::JoinCache)
/// entries by skeleton key, so a repeated skeleton never re-resolves.
///
/// Plans are only valid against the summary they were built from — the
/// estimator guarantees that pairing by construction (it lives as long as
/// its summary borrow and keys plans by skeleton in a per-summary cache).
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Per query node (by index): its tag resolved in the summary, or
    /// `None` for a tag the document never contained.
    tags: Vec<Option<TagId>>,
    /// Every structural edge, flattened in `(node id, edge order)` order —
    /// exactly the iteration order the kernels used when walking
    /// `query.node(u).edges` per node.
    edges: Vec<PlanEdge>,
    /// The node pinned to the document root (`Some` iff the root axis is
    /// `Child`).
    rooted: Option<QueryNodeId>,
}

impl QueryPlan {
    /// Resolves `query` against `summary`: one tag-interner probe per
    /// node, one pass over the structural edges.
    pub fn build(summary: &Summary, query: &Query) -> Self {
        let tags: Vec<Option<TagId>> = query
            .node_ids()
            .map(|q| summary.tags.get(&query.node(q).tag))
            .collect();
        let mut edges = Vec::new();
        for u in query.node_ids() {
            for e in &query.node(u).edges {
                let child = match e.axis {
                    Axis::Child => true,
                    Axis::Descendant => false,
                    _ => unreachable!("structural edges only"),
                };
                let pair = match (tags[u.index()], tags[e.to.index()]) {
                    (Some(tu), Some(tv)) => Some((tu, tv)),
                    _ => None,
                };
                edges.push(PlanEdge {
                    u,
                    v: e.to,
                    child,
                    tags: pair,
                });
            }
        }
        QueryPlan {
            tags,
            edges,
            rooted: (query.root_axis() == Axis::Child).then(|| query.root()),
        }
    }

    /// The resolved tag of query node `n` (`None` for an absent tag).
    #[inline]
    pub fn tag(&self, n: QueryNodeId) -> Option<TagId> {
        self.tags[n.index()]
    }

    /// Every structural edge with resolved endpoint tags.
    #[inline]
    pub fn edges(&self) -> &[PlanEdge] {
        &self.edges
    }

    /// The query node pinned to the document root, if any.
    #[inline]
    pub fn rooted(&self) -> Option<QueryNodeId> {
        self.rooted
    }

    /// Number of query nodes the plan covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the plan covers no nodes (never true for a valid query).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

/// The estimated selectivity of one predicate branch of a node.
#[derive(Clone, Debug)]
pub struct PredicateRank {
    /// Edge index at the branching node.
    pub edge: usize,
    /// The branch head.
    pub head: QueryNodeId,
    /// Estimated matches of the branching node if only this predicate is
    /// kept (smaller = more selective = apply first).
    pub estimated_card: f64,
}

/// Per-step cardinality estimates along the path from the query root to
/// the target — what a pipelined plan would materialize at each step.
#[derive(Clone, Debug)]
pub struct PathCardinalities {
    /// `(node, estimated matches)` from root to target, inclusive.
    pub steps: Vec<(QueryNodeId, f64)>,
}

impl<'s> Estimator<'s> {
    /// Ranks the predicate branches of `node` from most to least selective
    /// under the order-free interpretation: for each branch, the query is
    /// reduced to the root→`node` path plus that single branch, and
    /// `node`'s cardinality is estimated.
    ///
    /// Branches on the path to the target are not predicates and are
    /// excluded.
    pub fn rank_predicates(&self, query: &Query, node: QueryNodeId) -> Vec<PredicateRank> {
        let plain = editor::without_constraints(query);
        let q = &plain.query;
        let node = plain.remap(node);
        let target_path = q.path_to(q.target());
        let on_target_path = |to: QueryNodeId| target_path.contains(&to);

        let mut ranks = Vec::new();
        for (i, e) in q.node(node).edges.iter().enumerate() {
            // The continuation toward the target is not a predicate.
            if on_target_path(e.to) {
                continue;
            }
            // Reduced query: path to `node`, `node`, and this branch only.
            let mut keep = vec![false; q.len()];
            for &a in &q.path_to(node) {
                keep[a.index()] = true;
            }
            for (idx, flag) in editor::subtree_of(q, e.to).into_iter().enumerate() {
                if flag {
                    keep[idx] = true;
                }
            }
            let reduced = editor::rebuild(q, &keep, node);
            let estimated_card = self.estimate_plain(&reduced.query, reduced.remap(node));
            ranks.push(PredicateRank {
                edge: i,
                head: e.to,
                estimated_card,
            });
        }
        ranks.sort_by(|a, b| a.estimated_card.total_cmp(&b.estimated_card));
        ranks
    }

    /// Estimated cardinality of every step on the root→target path of
    /// `query` (order constraints ignored): the sizes a pipelined
    /// structural-join plan would see.
    pub fn path_cardinalities(&self, query: &Query) -> PathCardinalities {
        let plain = editor::without_constraints(query);
        let q = &plain.query;
        let steps = q
            .path_to(q.target())
            .into_iter()
            .map(|n| (n, self.estimate_plain(q, n)))
            .collect();
        PathCardinalities { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_synopsis::{Summary, SummaryConfig};
    use xpe_xpath::parse_query;

    fn summary(xml: &str) -> Summary {
        Summary::build(
            &xpe_xml::parse_document(xml).unwrap(),
            SummaryConfig::default(),
        )
    }

    #[test]
    fn ranks_by_selectivity() {
        // `rare` appears under one p, `common` under three.
        let xml = "<r>\
            <p><rare/><common/></p>\
            <p><common/></p>\
            <p><common/></p>\
            <p/>\
         </r>";
        let s = summary(xml);
        let est = Estimator::new(&s);
        let q = parse_query("//$p[/rare][/common]").unwrap();
        let ranks = est.rank_predicates(&q, q.target());
        assert_eq!(ranks.len(), 2);
        assert!(ranks[0].estimated_card <= ranks[1].estimated_card);
        assert_eq!(q.node(ranks[0].head).tag, "rare");
        assert_eq!(ranks[0].estimated_card, 1.0);
        assert_eq!(ranks[1].estimated_card, 3.0);
    }

    #[test]
    fn continuation_branch_excluded() {
        let xml = "<r><p><a/><b><c/></b></p></r>";
        let s = summary(xml);
        let est = Estimator::new(&s);
        // Target is c, below b: the b-branch is the continuation, only
        // the a-branch is a predicate of p.
        let q = parse_query("//p[/a]/b/c").unwrap();
        let p = q.root();
        let ranks = est.rank_predicates(&q, p);
        assert_eq!(ranks.len(), 1);
        assert_eq!(q.node(ranks[0].head).tag, "a");
    }

    #[test]
    fn path_cardinalities_walk_the_spine() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let s = Summary::build(&doc, SummaryConfig::default());
        let est = Estimator::new(&s);
        let q = parse_query("//A/B/D").unwrap();
        let cards = est.path_cardinalities(&q);
        assert_eq!(cards.steps.len(), 3);
        let values: Vec<f64> = cards.steps.iter().map(|&(_, c)| c).collect();
        assert_eq!(values, vec![3.0, 4.0, 4.0]);
    }

    #[test]
    fn query_plan_resolves_tags_edges_and_root_pinning() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let s = Summary::build(&doc, SummaryConfig::default());

        // Rooted query, all tags known.
        let q = parse_query("/Root/A//C").unwrap();
        let plan = crate::QueryPlan::build(&s, &q);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.rooted(), Some(q.root()));
        for n in q.node_ids() {
            assert_eq!(plan.tag(n), s.tags.get(&q.node(n).tag));
            assert!(plan.tag(n).is_some(), "all tags occur in the document");
        }
        assert_eq!(plan.edges().len(), 2);
        assert!(plan.edges()[0].child);
        assert!(!plan.edges()[1].child);
        for e in plan.edges() {
            assert_eq!(
                e.tags,
                Some((plan.tag(e.u).unwrap(), plan.tag(e.v).unwrap()))
            );
        }

        // Unrooted query with an unknown tag: no pinning, dead edge.
        let q = parse_query("//A/Zebra").unwrap();
        let plan = crate::QueryPlan::build(&s, &q);
        assert_eq!(plan.rooted(), None);
        assert_eq!(plan.tag(q.target()), None);
        assert_eq!(plan.edges().len(), 1);
        assert_eq!(plan.edges()[0].tags, None);
    }

    #[test]
    fn order_constraints_are_ignored_for_planning() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let s = Summary::build(&doc, SummaryConfig::default());
        let est = Estimator::new(&s);
        let q = parse_query("//$A[/C/folls::B]").unwrap();
        let ranks = est.rank_predicates(&q, q.target());
        assert_eq!(ranks.len(), 2, "both chain branches rank as predicates");
        for r in &ranks {
            assert!(r.estimated_card.is_finite());
        }
    }
}
