//! Optimizer-facing helpers: the paper's motivation is query optimization,
//! so the estimator exposes the two decisions a structural-join planner
//! actually makes — which predicate to apply first, and per-step
//! cardinalities along the main path.

use xpe_xpath::{Query, QueryNodeId};

use crate::editor;
use crate::estimator::Estimator;

/// The estimated selectivity of one predicate branch of a node.
#[derive(Clone, Debug)]
pub struct PredicateRank {
    /// Edge index at the branching node.
    pub edge: usize,
    /// The branch head.
    pub head: QueryNodeId,
    /// Estimated matches of the branching node if only this predicate is
    /// kept (smaller = more selective = apply first).
    pub estimated_card: f64,
}

/// Per-step cardinality estimates along the path from the query root to
/// the target — what a pipelined plan would materialize at each step.
#[derive(Clone, Debug)]
pub struct PathCardinalities {
    /// `(node, estimated matches)` from root to target, inclusive.
    pub steps: Vec<(QueryNodeId, f64)>,
}

impl<'s> Estimator<'s> {
    /// Ranks the predicate branches of `node` from most to least selective
    /// under the order-free interpretation: for each branch, the query is
    /// reduced to the root→`node` path plus that single branch, and
    /// `node`'s cardinality is estimated.
    ///
    /// Branches on the path to the target are not predicates and are
    /// excluded.
    pub fn rank_predicates(&self, query: &Query, node: QueryNodeId) -> Vec<PredicateRank> {
        let plain = editor::without_constraints(query);
        let q = &plain.query;
        let node = plain.remap(node);
        let target_path = q.path_to(q.target());
        let on_target_path = |to: QueryNodeId| target_path.contains(&to);

        let mut ranks = Vec::new();
        for (i, e) in q.node(node).edges.iter().enumerate() {
            // The continuation toward the target is not a predicate.
            if on_target_path(e.to) {
                continue;
            }
            // Reduced query: path to `node`, `node`, and this branch only.
            let mut keep = vec![false; q.len()];
            for &a in &q.path_to(node) {
                keep[a.index()] = true;
            }
            for (idx, flag) in editor::subtree_of(q, e.to).into_iter().enumerate() {
                if flag {
                    keep[idx] = true;
                }
            }
            let reduced = editor::rebuild(q, &keep, node);
            let estimated_card = self.estimate_plain(&reduced.query, reduced.remap(node));
            ranks.push(PredicateRank {
                edge: i,
                head: e.to,
                estimated_card,
            });
        }
        ranks.sort_by(|a, b| a.estimated_card.total_cmp(&b.estimated_card));
        ranks
    }

    /// Estimated cardinality of every step on the root→target path of
    /// `query` (order constraints ignored): the sizes a pipelined
    /// structural-join plan would see.
    pub fn path_cardinalities(&self, query: &Query) -> PathCardinalities {
        let plain = editor::without_constraints(query);
        let q = &plain.query;
        let steps = q
            .path_to(q.target())
            .into_iter()
            .map(|n| (n, self.estimate_plain(q, n)))
            .collect();
        PathCardinalities { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_synopsis::{Summary, SummaryConfig};
    use xpe_xpath::parse_query;

    fn summary(xml: &str) -> Summary {
        Summary::build(
            &xpe_xml::parse_document(xml).unwrap(),
            SummaryConfig::default(),
        )
    }

    #[test]
    fn ranks_by_selectivity() {
        // `rare` appears under one p, `common` under three.
        let xml = "<r>\
            <p><rare/><common/></p>\
            <p><common/></p>\
            <p><common/></p>\
            <p/>\
         </r>";
        let s = summary(xml);
        let est = Estimator::new(&s);
        let q = parse_query("//$p[/rare][/common]").unwrap();
        let ranks = est.rank_predicates(&q, q.target());
        assert_eq!(ranks.len(), 2);
        assert!(ranks[0].estimated_card <= ranks[1].estimated_card);
        assert_eq!(q.node(ranks[0].head).tag, "rare");
        assert_eq!(ranks[0].estimated_card, 1.0);
        assert_eq!(ranks[1].estimated_card, 3.0);
    }

    #[test]
    fn continuation_branch_excluded() {
        let xml = "<r><p><a/><b><c/></b></p></r>";
        let s = summary(xml);
        let est = Estimator::new(&s);
        // Target is c, below b: the b-branch is the continuation, only
        // the a-branch is a predicate of p.
        let q = parse_query("//p[/a]/b/c").unwrap();
        let p = q.root();
        let ranks = est.rank_predicates(&q, p);
        assert_eq!(ranks.len(), 1);
        assert_eq!(q.node(ranks[0].head).tag, "a");
    }

    #[test]
    fn path_cardinalities_walk_the_spine() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let s = Summary::build(&doc, SummaryConfig::default());
        let est = Estimator::new(&s);
        let q = parse_query("//A/B/D").unwrap();
        let cards = est.path_cardinalities(&q);
        assert_eq!(cards.steps.len(), 3);
        let values: Vec<f64> = cards.steps.iter().map(|&(_, c)| c).collect();
        assert_eq!(values, vec![3.0, 4.0, 4.0]);
    }

    #[test]
    fn order_constraints_are_ignored_for_planning() {
        let doc = xpe_xml::fixtures::paper_figure1();
        let s = Summary::build(&doc, SummaryConfig::default());
        let est = Estimator::new(&s);
        let q = parse_query("//$A[/C/folls::B]").unwrap();
        let ranks = est.rank_predicates(&q, q.target());
        assert_eq!(ranks.len(), 2, "both chain branches rank as predicates");
        for r in &ranks {
            assert!(r.estimated_card.is_finite());
        }
    }
}
