//! The selectivity estimator (paper §4–§5).
//!
//! * Simple queries: `S_Q(n) = f_Q(n)` after the path join (Theorem 4.1).
//! * Branch queries with the target on a branch: Eq. 2 under the Node
//!   Independence Assumption,
//!   `S_Q(n) ≈ f_Q'(n) · f_Q(ni) / f_Q'(ni)` with `Q'` the spine query and
//!   `ni` the branching trunk node.
//! * Order queries (`folls`/`pres`): Eqs. 3–5 under the Node Order
//!   Uniformity and Node Containment Uniformity Assumptions, with the
//!   order-restricted selectivity of a sibling head read from the
//!   o-histogram.
//! * `foll`/`prec` queries: converted into sibling-axis queries by path-id
//!   decomposition (§5 "Preceding/Following Axis") and summed.
//!
//! Generalizations beyond the paper's canonical `q1[/q2]/q3` shape (multiple
//! predicates, chains longer than two, multiple constrained nodes) are
//! documented inline and in DESIGN.md; on the paper's query shapes the
//! implementation reproduces the worked examples digit for digit.

use std::cell::RefCell;
use std::ops::Deref;
use std::sync::Arc;

use xpe_pathid::{JoinIndexCache, RelationMaskCache};
use xpe_synopsis::{Region, Summary};
use xpe_xpath::{
    constraint_chains, parse_query, Axis, OrderConstraint, OrderKind, Query, QueryNodeId,
    QueryParseError,
};

use crate::editor::{self, subtree_of};
use crate::estcache::{estimate_key, EstimateCache, EstimateCacheReader};
use crate::invariant::{finalize_estimate, safe_div};
use crate::join::{
    path_join, path_join_bitmap_planned, path_join_planned, JoinKernel, JoinMemo, JoinPhaseStats,
    JoinResult, JoinScratch,
};
use crate::joincache::{skeleton_key, JoinCache, WorkerJoinCache};
use crate::planner::QueryPlan;
use crate::serve::{
    Budget, BudgetExhausted, BudgetState, DegradedReason, EstimateOutcome, EstimateStatus,
    QueryLimits,
};

/// Selectivity estimator over a prebuilt [`Summary`].
///
/// Every estimator memoizes the relation masks and containment
/// adjacencies its joins compute (keyed by `(tag_u, tag_v, axis)` — pure
/// functions of the summary's encoding table) and recycles the joins'
/// per-node list allocations. On top of the shared caches each estimator
/// keeps a private lock-free [`JoinMemo`] — flat `Vec`-indexed adjacency
/// and seed-bitmap tables filled on first miss — so a warm join never
/// takes a lock or hashes a key. Estimators built by
/// [`EstimationEngine`](crate::EstimationEngine) share one mask cache, one
/// adjacency index, and one workload-level [`JoinCache`], so a batch warms
/// all three for every worker.
pub struct Estimator<'s> {
    summary: &'s Summary,
    masks: Arc<RelationMaskCache>,
    adjacency: Arc<JoinIndexCache>,
    /// Worker-private front for the shared workload-level [`JoinCache`]:
    /// lookups and publishes stay in this estimator's unsynchronized map
    /// and merge into the shared shards lazily — at
    /// [`flush_join_cache`](Self::flush_join_cache) (the batch engine
    /// calls it at chunk boundaries) and on drop.
    join_cache: Option<RefCell<WorkerJoinCache>>,
    /// Worker-private front for the shared full-query
    /// [`EstimateCache`]: warm hits probe this reader's held snapshot
    /// lock-free, above all join machinery (see `estcache`).
    est_cache: Option<RefCell<EstimateCacheReader>>,
    scratch: RefCell<JoinScratch>,
    /// Flat per-estimator mirror of the shared adjacency/seed caches —
    /// valid for this estimator's `(summary, adjacency)` pairing, which
    /// both live as long as the estimator by construction.
    memo: RefCell<JoinMemo>,
    /// Which join kernel [`run_join`](Self::run_join) dispatches to. All
    /// kernels are bit-identical; this only selects speed (and, for
    /// `Naive`, opts out of budget cooperation).
    kernel: JoinKernel,
    /// Live budget of the in-flight [`try_estimate`](Self::try_estimate)
    /// call, threaded into every join it runs; `None` outside one.
    budget: RefCell<Option<BudgetState>>,
}

/// A join result that is either owned by this estimator or aliased out of
/// the shared [`JoinCache`]. Derefs to [`JoinResult`] either way; only
/// owned results give their allocations back to the scratch pool.
enum Joined {
    Owned(JoinResult),
    Shared(Arc<JoinResult>),
}

impl Deref for Joined {
    type Target = JoinResult;

    fn deref(&self) -> &JoinResult {
        match self {
            Joined::Owned(j) => j,
            Joined::Shared(j) => j,
        }
    }
}

/// One order-constraint chain with its owner, resolved to head nodes.
#[derive(Clone, Debug)]
struct Chain {
    owner: QueryNodeId,
    kind: OrderKind,
    /// Edge indices at the owner, in before→after order.
    edges: Vec<usize>,
    /// The chain heads (branch first nodes), in before→after order.
    heads: Vec<QueryNodeId>,
}

impl<'s> Estimator<'s> {
    /// Creates an estimator reading from `summary`.
    pub fn new(summary: &'s Summary) -> Self {
        Self::with_mask_cache(summary, Arc::new(RelationMaskCache::new()))
    }

    /// Creates an estimator sharing an externally owned mask cache — how
    /// the batch engine gives every worker the same warm memo table.
    pub fn with_mask_cache(summary: &'s Summary, masks: Arc<RelationMaskCache>) -> Self {
        Self::with_caches(summary, masks, Arc::new(JoinIndexCache::new()), None)
    }

    /// Creates an estimator sharing all three kernel caches: relation
    /// masks, containment adjacency, and (optionally) the workload-level
    /// join cache. None of them change any estimate — joins are pure
    /// functions of `(summary, query skeleton)` — only how fast the
    /// estimate is produced.
    pub fn with_caches(
        summary: &'s Summary,
        masks: Arc<RelationMaskCache>,
        adjacency: Arc<JoinIndexCache>,
        join_cache: Option<Arc<JoinCache>>,
    ) -> Self {
        Estimator {
            summary,
            masks,
            adjacency,
            join_cache: join_cache.map(|c| RefCell::new(WorkerJoinCache::new(c))),
            est_cache: None,
            scratch: RefCell::new(JoinScratch::new()),
            memo: RefCell::new(JoinMemo::new()),
            kernel: JoinKernel::default(),
            budget: RefCell::new(None),
        }
    }

    /// Attaches (or detaches, with `None`) a shared full-query
    /// [`EstimateCache`]. A finished `Ok` estimate is published under
    /// the query's canonical text; a later arrival of the same canonical
    /// query — through this estimator or any other sharing the cache —
    /// is served from the snapshot without touching the join machinery.
    /// Estimates are pure functions of `(summary, canonical query)`, so
    /// the cache changes nothing observable except speed; a cache built
    /// with capacity 0 is dropped here and disables the fast path
    /// entirely.
    pub fn with_estimate_cache(mut self, cache: Option<Arc<EstimateCache>>) -> Self {
        self.est_cache = cache
            .filter(|c| c.capacity() > 0)
            .map(|c| RefCell::new(EstimateCacheReader::new(c)));
        self
    }

    /// Selects the join kernel (default: [`JoinKernel::Bitmap`]). Every
    /// kernel produces bit-identical estimates; the naive kernel also
    /// ignores caches and join budgets, by design.
    pub fn with_kernel(mut self, kernel: JoinKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The configured join kernel.
    pub fn kernel(&self) -> JoinKernel {
        self.kernel
    }

    /// Enables or disables the per-phase join timing breakdown (off by
    /// default; costs two `Instant::now` pairs per join when on).
    pub fn set_join_timing(&self, on: bool) {
        self.scratch.borrow_mut().set_timing(on);
    }

    /// The accumulated per-phase join breakdown (zeros unless
    /// [`set_join_timing`](Self::set_join_timing) enabled collection).
    pub fn join_phase_stats(&self) -> JoinPhaseStats {
        self.scratch.borrow().phase_stats()
    }

    /// Resets the per-phase join breakdown.
    pub fn reset_join_phase_stats(&self) {
        self.scratch.borrow_mut().reset_phase_stats();
    }

    /// The shared relation-mask memo table.
    pub fn mask_cache(&self) -> &Arc<RelationMaskCache> {
        &self.masks
    }

    /// The shared containment-adjacency index.
    pub fn adjacency_cache(&self) -> &Arc<JoinIndexCache> {
        &self.adjacency
    }

    /// Runs the path join through this estimator's caches: the
    /// worker-private join-cache front first (keyed by the query's
    /// structural skeleton; it probes the shared shard once on a local
    /// miss), then the selected kernel — driven by the skeleton's
    /// prepared [`QueryPlan`], cache-served when a previous call
    /// published one — finally publishing plan and result locally, to be
    /// merged into the shared cache at the next flush.
    fn join(&self, query: &Query) -> Joined {
        let Some(cache) = &self.join_cache else {
            let plan = self.build_plan(query);
            return Joined::Owned(self.run_join(query, &plan));
        };
        let key = skeleton_key(query);
        let hit = cache.borrow_mut().lookup(&key);
        if let Some(h) = &hit {
            if let Some(result) = &h.result {
                return Joined::Shared(Arc::clone(result));
            }
        }
        let plan = match hit {
            Some(h) => h.plan,
            None => Arc::new(self.build_plan(query)),
        };
        let result = self.run_join(query, &plan);
        // A budget-truncated join is not the fixpoint — never publish it
        // to the cache, where an unbudgeted estimator (or a later
        // healthy query) would mistake it for the real result. The plan
        // is budget-independent, so it is published either way.
        if self.budget_exhausted() {
            cache.borrow_mut().publish(key, plan, None);
            return Joined::Owned(result);
        }
        let result = Arc::new(result);
        cache
            .borrow_mut()
            .publish(key, plan, Some(Arc::clone(&result)));
        Joined::Shared(result)
    }

    /// Merges this estimator's private join-cache entries and hit/miss
    /// tallies into the shared [`JoinCache`], making them visible to
    /// every other estimator sharing it. A no-op without a join cache,
    /// and lock-free when there is nothing pending. Also runs on drop;
    /// the batch engine calls it at chunk boundaries so warm results
    /// propagate across workers mid-batch.
    pub fn flush_join_cache(&self) {
        if let Some(cache) = &self.join_cache {
            cache.borrow_mut().merge();
        }
    }

    /// Flushes every shared-cache front this estimator holds: the
    /// join-cache merge of [`flush_join_cache`](Self::flush_join_cache)
    /// plus the estimate-cache hit/miss tallies (entries themselves are
    /// epoch-published immediately; only the counters are batched). Also
    /// runs on drop.
    pub fn flush_caches(&self) {
        self.flush_join_cache();
        if let Some(front) = &self.est_cache {
            front.borrow_mut().flush();
        }
    }

    /// Builds the prepared plan for `query`, lapping the build into the
    /// phase breakdown when join timing is on.
    fn build_plan(&self, query: &Query) -> QueryPlan {
        if !self.scratch.borrow().timing_enabled() {
            return QueryPlan::build(self.summary, query);
        }
        let t0 = std::time::Instant::now();
        let plan = QueryPlan::build(self.summary, query);
        self.scratch
            .borrow_mut()
            .add_plan_ns(t0.elapsed().as_nanos() as u64);
        plan
    }

    fn run_join(&self, query: &Query, plan: &QueryPlan) -> JoinResult {
        let budget = self.budget.borrow();
        match self.kernel {
            JoinKernel::Naive => path_join(self.summary, query),
            JoinKernel::Indexed => path_join_planned(
                self.summary,
                query,
                plan,
                Some(&self.masks),
                Some(&self.adjacency),
                Some(&mut self.memo.borrow_mut()),
                Some(&mut self.scratch.borrow_mut()),
                budget.as_ref(),
            ),
            JoinKernel::Bitmap => path_join_bitmap_planned(
                self.summary,
                query,
                plan,
                &self.adjacency,
                Some(&mut self.memo.borrow_mut()),
                Some(&mut self.scratch.borrow_mut()),
                budget.as_ref(),
            ),
        }
    }

    fn budget_exhausted(&self) -> bool {
        self.budget
            .borrow()
            .as_ref()
            .is_some_and(|b| b.exhausted().is_some())
    }

    /// Returns an owned join's allocations to the scratch pool; shared
    /// (cache-resident) joins just drop their reference.
    fn recycle(&self, join: Joined) {
        if let Joined::Owned(j) = join {
            self.scratch.borrow_mut().recycle(j);
        }
    }

    /// Estimates the selectivity of the target node of `query`.
    ///
    /// The raw formula output passes through
    /// [`finalize_estimate`](crate::finalize_estimate): the result is
    /// always finite, non-negative, and at most the target tag's total
    /// frequency in the summary.
    pub fn estimate(&self, query: &Query) -> f64 {
        let Some(front) = &self.est_cache else {
            return self.estimate_uncached(query);
        };
        let key = estimate_key(query);
        if let Some(v) = front.borrow_mut().lookup(&key) {
            return v;
        }
        // Compute outside the borrow: the formulas below never re-enter
        // `estimate` (recursion goes through `estimate_depth`), but the
        // discipline costs nothing and keeps the RefCell panic-safe.
        let v = self.estimate_uncached(query);
        front.borrow_mut().publish(key, v);
        v
    }

    /// [`estimate`](Self::estimate) without the full-query cache wrap —
    /// always runs the join machinery.
    fn estimate_uncached(&self, query: &Query) -> f64 {
        let raw = self.estimate_depth(query, 0);
        let cap = self.summary.tag_total(&query.node(query.target()).tag);
        finalize_estimate(raw, cap)
    }

    /// Parses and estimates a query string.
    pub fn estimate_str(&self, query: &str) -> Result<f64, QueryParseError> {
        Ok(self.estimate(&parse_query(query)?))
    }

    /// The `[0, f(tag)]` clamp ceiling for `query` — the target tag's
    /// total frequency, which is both the upper bound every estimate is
    /// clamped to and the value degraded/rejected outcomes report.
    pub fn tag_cap(&self, query: &Query) -> f64 {
        self.summary.tag_total(&query.node(query.target()).tag)
    }

    /// Fallible estimation under an admission policy and a resource
    /// budget. Always returns a usable value inside `[0, f(tag)]`:
    ///
    /// * `Rejected` — `limits` refused the query before any kernel work;
    ///   the value is the `f(tag)` upper bound.
    /// * `Degraded` — the budget ran out mid-estimation (the join
    ///   fixpoint stopped cooperatively); the value is the `f(tag)` upper
    ///   bound, since a truncated join's frequencies are not trustworthy.
    /// * `Ok` — the value is bit-identical to [`estimate`](Self::estimate).
    pub fn try_estimate(
        &self,
        query: &Query,
        limits: &QueryLimits,
        budget: &Budget,
    ) -> EstimateOutcome {
        let cap = self.tag_cap(query);
        let bound = finalize_estimate(cap, cap);
        if let Err(reason) = limits.admit(self.summary, query) {
            return EstimateOutcome {
                value: bound,
                status: EstimateStatus::Rejected { reason },
            };
        }
        if !budget.is_bounded() {
            // `estimate` carries the full-query cache wrap itself.
            return EstimateOutcome {
                value: self.estimate(query),
                status: EstimateStatus::Ok,
            };
        }
        // Admission ran above, so a cached hit cannot resurrect a query
        // the limits would reject. A hit costs no budget at all — the
        // stored value is a finished, untruncated `Ok` by construction
        // (degraded answers are never published).
        let key = self.est_cache.as_ref().map(|front| {
            let key = estimate_key(query);
            (front, key)
        });
        if let Some((front, key)) = &key {
            if let Some(v) = front.borrow_mut().lookup(key) {
                return EstimateOutcome {
                    value: v,
                    status: EstimateStatus::Ok,
                };
            }
        }
        *self.budget.borrow_mut() = Some(BudgetState::start(budget));
        let raw = self.estimate_depth(query, 0);
        let state = self
            .budget
            .borrow_mut()
            .take()
            .expect("budget installed above");
        match state.exhausted() {
            None => {
                let value = finalize_estimate(raw, cap);
                // Only a finished, untruncated estimate is published —
                // it is bit-identical to `estimate` by the `Ok`
                // contract, so cached and uncached paths agree exactly.
                if let Some((front, key)) = key {
                    front.borrow_mut().publish(key, value);
                }
                EstimateOutcome {
                    value,
                    status: EstimateStatus::Ok,
                }
            }
            Some(BudgetExhausted::Deadline) => EstimateOutcome {
                value: bound,
                status: EstimateStatus::Degraded {
                    reason: DegradedReason::Deadline,
                },
            },
            Some(BudgetExhausted::JoinEdges) => EstimateOutcome {
                value: bound,
                status: EstimateStatus::Degraded {
                    reason: DegradedReason::JoinBudget,
                },
            },
        }
    }

    fn estimate_depth(&self, query: &Query, depth: usize) -> f64 {
        // Conversions strictly reduce the number of Document chains, but
        // cap the recursion as a defensive bound.
        if depth > 8 {
            return 0.0;
        }
        let chains = collect_chains(query);
        if let Some(doc_chain) = chains.iter().find(|c| c.kind == OrderKind::Document) {
            return self.estimate_via_conversion(query, doc_chain, depth);
        }
        if chains.is_empty() {
            return self.estimate_plain(query, query.target());
        }
        self.estimate_sibling(query, &chains)
    }

    // ------------------------------------------------------------------
    // §4: queries without order axes.
    // ------------------------------------------------------------------

    /// Estimates node `n` of the (structurally interpreted) `query`,
    /// ignoring any order constraints.
    pub fn estimate_plain(&self, query: &Query, n: QueryNodeId) -> f64 {
        let join = self.join(query);
        let s = self.plain_with_join(query, &join, n);
        self.recycle(join);
        s
    }

    fn plain_with_join(&self, query: &Query, join: &JoinResult, n: QueryNodeId) -> f64 {
        let f_n = join.frequency(n);
        if f_n == 0.0 {
            return 0.0;
        }
        // The lowest proper ancestor of `n` with branches off the path —
        // the paper's `ni` (trunk end). No such node ⇒ `n` is in the trunk
        // and Theorem 4.1 applies.
        let Some(b) = lowest_branching_ancestor(query, n) else {
            return f_n;
        };
        // Eq. 2 with Q' the spine query.
        let spine = editor::spine_query(query, n);
        let join_spine = self.join(&spine.query);
        let f_spine_n = join_spine.frequency(spine.remap(n));
        let f_spine_b = join_spine.frequency(spine.remap(b));
        self.recycle(join_spine);
        let f_b = join.frequency(b);
        safe_div(f_spine_n * f_b, f_spine_b)
    }

    // ------------------------------------------------------------------
    // §5: preceding-sibling / following-sibling.
    // ------------------------------------------------------------------

    fn estimate_sibling(&self, query: &Query, chains: &[Chain]) -> f64 {
        let plain = editor::without_constraints(query);
        let target = query.target();

        // Case 1: the target is a chain head or below one (Eqs. 3 and 4).
        for chain in chains {
            for (pos, &head) in chain.heads.iter().enumerate() {
                if !subtree_of(query, head)[target.index()] {
                    continue;
                }
                let parts = self.head_parts(query, chain, pos);
                if head == target {
                    // Eq. 3: S_Q̃(h) ≈ S_Q̃'(h) · S_Q(h) / S_Q'(h).
                    let s_plain = self.estimate_plain(&plain.query, plain.remap(head));
                    return safe_div(parts.s_tilde_prime * s_plain, parts.s_prime);
                }
                // Eq. 4: S_Q̃(n) ≈ S_Q(n) · S_Q̃'(h) / S_Q'(h).
                let s_plain_n = self.estimate_plain(&plain.query, plain.remap(target));
                return safe_div(s_plain_n * parts.s_tilde_prime, parts.s_prime);
            }
        }

        // Case 2 (Eq. 5): target in the trunk — minimum of the order-free
        // estimate and the order-restricted selectivity of every head.
        let mut s = self.estimate_plain(&plain.query, plain.remap(target));
        for chain in chains {
            for pos in 0..chain.heads.len() {
                let parts = self.head_parts(query, chain, pos);
                let s_plain_h = self.estimate_plain(&plain.query, plain.remap(chain.heads[pos]));
                let s_head = safe_div(parts.s_tilde_prime * s_plain_h, parts.s_prime);
                s = s.min(s_head);
            }
        }
        s
    }

    /// The two §5 ingredients for chain head at `pos`:
    /// `S_Q̃'(h)` (order-restricted, from the o-histogram after the join on
    /// `Q'`) and `S_Q'(h)` (the order-free estimate on `Q'`), where `Q'`
    /// trims the *neighbor* branch to its head.
    fn head_parts(&self, query: &Query, chain: &Chain, pos: usize) -> HeadParts {
        let head = chain.heads[pos];
        // Neighbor: predecessor if any (head occurs After it), else the
        // successor (head occurs Before it). Chains longer than two use the
        // immediate predecessor — a documented generalization.
        let (nb, region) = if pos > 0 {
            (chain.heads[pos - 1], Region::After)
        } else if let Some(&next) = chain.heads.get(pos + 1) {
            (next, Region::Before)
        } else {
            // Unreachable by construction: a chain is assembled from
            // before/after constraint pairs whose edges `Query::new`
            // validation requires to be distinct (`before == after` is
            // rejected), so every chain carries at least two heads. If
            // that invariant ever breaks, degrade to a neutral ratio —
            // `S_Q̃'/S_Q'` of 1 collapses Eq. 3 to the order-free bound
            // and Eq. 5 to `min(s, s_plain_h)` — instead of panicking.
            debug_assert!(false, "order chain with a single head");
            return HeadParts {
                s_tilde_prime: 1.0,
                s_prime: 1.0,
            };
        };

        let plain = editor::without_constraints(query);
        let q_prime = editor::trim_below(&plain.query, plain.remap(nb), plain.remap(head));
        let head_in_prime = q_prime.remap(plain.remap(head));
        let s_prime = self.estimate_plain(&q_prime.query, head_in_prime);

        // S_Q̃'(h): sum g(pid, nb_tag) over the head's surviving pids.
        let join_prime = self.join(&q_prime.query);
        let (Some(tag_h), Some(tag_nb)) = (
            self.summary.tags.get(&query.node(head).tag),
            self.summary.tags.get(&query.node(nb).tag),
        ) else {
            self.recycle(join_prime);
            return HeadParts {
                s_tilde_prime: 0.0,
                s_prime,
            };
        };
        let s_tilde_prime: f64 = join_prime
            .pids(head_in_prime)
            .map(|pid| self.summary.order_count(tag_h, pid, tag_nb, region))
            .sum();
        self.recycle(join_prime);
        HeadParts {
            s_tilde_prime,
            s_prime,
        }
    }

    // ------------------------------------------------------------------
    // §5: preceding / following conversion.
    // ------------------------------------------------------------------

    fn estimate_via_conversion(&self, query: &Query, chain: &Chain, depth: usize) -> f64 {
        if chain.heads.len() != 2 {
            // The paper defines the conversion for one before/after pair;
            // longer document chains fall back to the order-free upper
            // bound (documented in DESIGN.md).
            let plain = editor::without_constraints(query);
            return self.estimate_plain(&plain.query, plain.remap(query.target()));
        }
        let owner = chain.owner;
        let axes: Vec<Axis> = chain
            .edges
            .iter()
            .map(|&e| query.node(owner).edges[e].axis)
            .collect();

        // Both heads are children of the owner: document order between
        // siblings *is* sibling order, so rewrite the kind in place.
        if axes[0] == Axis::Child && axes[1] == Axis::Child {
            let converted = replace_chain_kind(query, owner, chain, OrderKind::Sibling);
            return self.estimate_depth(&converted, depth + 1);
        }

        // Identify the mover (descendant-axis head) and the anchor.
        let (mover_pos, anchor_pos) = if axes[1] == Axis::Descendant {
            (1, 0)
        } else {
            (0, 1)
        };
        if axes[anchor_pos] != Axis::Child {
            // Exotic shape (both heads descendant-axis): order-free bound.
            let plain = editor::without_constraints(query);
            return self.estimate_plain(&plain.query, plain.remap(query.target()));
        }
        let mover = chain.heads[mover_pos];

        // Decompose the mover's surviving pids into owner→child→…→mover
        // label chains (paper Example 5.3).
        let join = self.join(query);
        let (Some(tag_owner), Some(tag_mover)) = (
            self.summary.tags.get(&query.node(owner).tag),
            self.summary.tags.get(&query.node(mover).tag),
        ) else {
            // An unknown tag means no conversion can match — but the join
            // above still borrowed scratch vectors that must go back to
            // the pool, not be dropped with this early return.
            self.recycle(join);
            return 0.0;
        };
        let mut conversions: Vec<Vec<String>> = Vec::new();
        for pid in join.pids(mover) {
            for enc in self.summary.pids.bits(pid).ones() {
                let path = self.summary.encoding.path(enc);
                for i in 0..path.len() {
                    if path[i] != tag_owner {
                        continue;
                    }
                    for j in i + 1..path.len() {
                        if path[j] != tag_mover {
                            continue;
                        }
                        let labels: Vec<String> = path[i + 1..=j]
                            .iter()
                            .map(|&t| self.summary.tags.name(t).to_owned())
                            .collect();
                        if !conversions.contains(&labels) {
                            conversions.push(labels);
                        }
                    }
                }
            }
        }

        self.recycle(join);
        conversions
            .into_iter()
            .map(|labels| {
                let converted = materialize_conversion(query, owner, chain, mover_pos, &labels);
                self.estimate_depth(&converted, depth + 1)
            })
            .sum()
    }
}

struct HeadParts {
    /// `S_Q̃'(h)`: o-histogram selectivity of the head under the order
    /// restriction.
    s_tilde_prime: f64,
    /// `S_Q'(h)`: order-free estimate of the head on the trimmed query.
    s_prime: f64,
}

fn collect_chains(query: &Query) -> Vec<Chain> {
    let mut out = Vec::new();
    for owner in query.node_ids() {
        let node = query.node(owner);
        for (kind, edges) in constraint_chains(node) {
            let heads = edges.iter().map(|&e| node.edges[e].to).collect();
            out.push(Chain {
                owner,
                kind,
                edges,
                heads,
            });
        }
    }
    out
}

/// The deepest proper ancestor of `n` that has edges leaving the
/// root-to-`n` path (the paper's `ni`).
fn lowest_branching_ancestor(query: &Query, n: QueryNodeId) -> Option<QueryNodeId> {
    let path = query.path_to(n);
    for w in path.windows(2).rev() {
        let (anc, on_path) = (w[0], w[1]);
        if query.node(anc).edges.iter().any(|e| e.to != on_path) {
            return Some(anc);
        }
    }
    None
}

/// Copy of `query` with one chain's constraints re-kinded.
fn replace_chain_kind(query: &Query, owner: QueryNodeId, chain: &Chain, kind: OrderKind) -> Query {
    let mut nodes: Vec<_> = query.nodes().to_vec();
    for c in &mut nodes[owner.index()].constraints {
        if chain.edges.contains(&c.before) && chain.edges.contains(&c.after) {
            c.kind = kind;
        }
    }
    Query::new(nodes, query.root_axis(), query.target()).expect("re-kinded query stays valid")
}

/// Builds the sibling-axis conversion of a `foll`/`prec` query: the mover's
/// descendant edge is replaced by a child-axis chain of intermediate labels
/// `labels[0..k-1]` ending at the mover (whose own subtree is preserved),
/// and the Document constraint becomes a Sibling constraint between the
/// anchor edge and the new child edge.
fn materialize_conversion(
    query: &Query,
    owner: QueryNodeId,
    chain: &Chain,
    mover_pos: usize,
    labels: &[String],
) -> Query {
    debug_assert_eq!(
        labels.last().map(String::as_str),
        Some(query.node(chain.heads[mover_pos]).tag.as_str())
    );
    let mut nodes: Vec<_> = query.nodes().to_vec();
    let mover = chain.heads[mover_pos];
    let mover_edge = chain.edges[mover_pos];

    // Insert intermediates (all labels but the last, which is the mover).
    let mut attach_to = mover;
    for label in labels[..labels.len() - 1].iter().rev() {
        let new_id = QueryNodeId::from_index(nodes.len());
        nodes.push(xpe_xpath::QueryNode {
            tag: label.clone(),
            edges: vec![xpe_xpath::QueryEdge {
                axis: Axis::Child,
                to: attach_to,
            }],
            constraints: Vec::new(),
        });
        attach_to = new_id;
    }
    // Rewire the owner's mover edge to the top of the chain, child axis.
    nodes[owner.index()].edges[mover_edge] = xpe_xpath::QueryEdge {
        axis: Axis::Child,
        to: attach_to,
    };
    // Re-kind the constraint.
    for c in &mut nodes[owner.index()].constraints {
        if c.before == mover_edge || c.after == mover_edge {
            debug_assert_eq!(c.kind, OrderKind::Document);
            *c = OrderConstraint {
                before: c.before,
                after: c.after,
                kind: OrderKind::Sibling,
            };
        }
    }
    Query::new(nodes, query.root_axis(), query.target()).expect("conversion stays valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_synopsis::SummaryConfig;

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        )
    }

    /// The unknown-tag early return in `estimate_via_conversion` runs a
    /// join first; its scratch vectors must come back to the pool, not be
    /// dropped with the `0.0`.
    #[test]
    fn conversion_unknown_tag_returns_join_scratch_to_the_pool() {
        let s = summary();
        for kernel in [JoinKernel::Indexed, JoinKernel::Bitmap] {
            let est = Estimator::new(&s).with_kernel(kernel);
            // Document chain (C before B), both heads known, owner tag
            // absent from the document: the conversion join runs, then
            // bails on the unknown owner tag.
            let q = parse_query("//Zebra[/C/foll::$B]").unwrap();
            assert_eq!(est.estimate(&q), 0.0);
            assert_eq!(
                est.scratch.borrow().pooled(),
                q.len(),
                "{}: every join list recycled",
                kernel.name()
            );
        }
    }

    /// Warm private memos and plans change nothing observable: a reused
    /// estimator reproduces a fresh estimator's results bit for bit.
    #[test]
    fn warm_memos_are_bit_identical_to_cold() {
        let s = summary();
        let queries = [
            "//A[/C/F]/B/D",
            "//A//C",
            "//C[/$E]/F",
            "/Root/A/C/F",
            "//A[/C/folls::$B]",
        ];
        for kernel in JoinKernel::ALL {
            let warm = Estimator::new(&s).with_kernel(kernel);
            for q in queries {
                let query = parse_query(q).unwrap();
                let cold = Estimator::new(&s).with_kernel(kernel);
                let a = cold.estimate(&query);
                // Twice through the same estimator: cold memo, then warm.
                let b = warm.estimate(&query);
                let c = warm.estimate(&query);
                assert_eq!(a.to_bits(), b.to_bits(), "{q} {}", kernel.name());
                assert_eq!(b.to_bits(), c.to_bits(), "{q} {}", kernel.name());
            }
        }
    }
}
